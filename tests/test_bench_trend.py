"""The benchmark-trajectory aggregator keeps reading what CI commits.

``scripts/bench_trend.py`` folds every committed ``BENCH_*.json`` into
one table; loading it here (the ``test_docs.py`` pattern) means a
schema drift in ``benchmarks/_results.ResultsWriter`` output breaks the
tier-1 suite, not a reviewer's terminal."""

import importlib.util
import json
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_trend():
    path = os.path.join(REPO_ROOT, "scripts", "bench_trend.py")
    spec = importlib.util.spec_from_file_location("bench_trend", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_results_aggregate():
    trend = load_trend()
    rows = trend.trend_rows(REPO_ROOT)
    areas = {row["area"] for row in rows}
    assert {"join", "query", "columnar", "relation"} <= areas
    for row in rows:
        assert row["headline"]
        assert row["git_sha"]


def test_traces_are_excluded():
    trend = load_trend()
    for path in trend.bench_files(REPO_ROOT):
        assert not path.endswith(".trace.json")


def test_headline_prefers_speedup(tmp_path):
    trend = load_trend()
    results = [
        {"op": "slow", "n": 100, "seconds": 9.0},
        {"op": "fast", "n": 100, "seconds": 0.5, "speedup": 18.0},
        {"op": "small", "n": 10, "seconds": 99.0},
    ]
    top = trend.headline(results)
    assert top["op"] == "fast" and top["speedup"] == 18.0
    assert trend.headline([]) is None


def test_render_on_synthetic_file(tmp_path):
    trend = load_trend()
    payload = {
        "area": "demo",
        "git_sha": "abcdef0123456789",
        "timestamp": "2026-08-08T12:00:00",
        "quick": True,
        "results": [{"op": "scan", "n": 1000, "seconds": 0.25}],
    }
    (tmp_path / "BENCH_demo.json").write_text(
        json.dumps(payload), encoding="utf-8"
    )
    (tmp_path / "BENCH_demo.trace.json").write_text("{}", encoding="utf-8")
    rows = trend.trend_rows(str(tmp_path))
    assert len(rows) == 1
    table = trend.render(rows)
    assert "demo" in table and "abcdef012" in table and "scan" in table
