"""Unit tests for the ER-model-as-types module (the paper's open problem)."""

import pytest

from repro.types.er import ERSchema, ERSchemaError
from repro.types.kinds import FLOAT, INT, STRING, RecordType, SetType, record_type
from repro.types.subtyping import is_subtype


def company_schema():
    schema = ERSchema()
    schema.entity("Person", {"Name": STRING, "City": STRING}, key=["Name"])
    schema.entity(
        "Employee", {"Empno": INT, "Salary": FLOAT}, key=[], isa=["Person"]
    )
    schema.entity("Dept", {"DeptName": STRING, "Budget": FLOAT}, key=["DeptName"])
    schema.relationship(
        "WorksIn",
        roles={"worker": "Employee", "dept": "Dept"},
        attributes={"Since": INT},
        one_roles=["worker"],  # an employee works in at most one dept
    )
    return schema


class TestGraphIntegrity:
    def test_valid_schema_passes(self):
        company_schema().validate()

    def test_duplicate_declaration(self):
        schema = ERSchema()
        schema.entity("X", {"A": INT}, key=["A"])
        with pytest.raises(ERSchemaError):
            schema.entity("X", {"A": INT}, key=["A"])
        with pytest.raises(ERSchemaError):
            schema.relationship("X", roles={"r": "X"})

    def test_unknown_isa_parent(self):
        schema = ERSchema()
        schema.entity("Child", {"A": INT}, key=["A"], isa=["Ghost"])
        with pytest.raises(ERSchemaError):
            schema.validate()

    def test_isa_cycle_detected(self):
        """The paper's 'checking of integrity constraints such as
        acyclic conditions'."""
        schema = ERSchema()
        schema.entity("A", {"x": INT}, key=["x"], isa=["B"])
        schema.entity("B", {"y": INT}, key=["y"], isa=["A"])
        with pytest.raises(ERSchemaError) as excinfo:
            schema.validate()
        assert "cycle" in str(excinfo.value)

    def test_missing_key_attribute(self):
        schema = ERSchema()
        schema.entity("X", {"A": INT}, key=["Nope"])
        with pytest.raises(ERSchemaError):
            schema.validate()

    def test_entity_needs_key(self):
        schema = ERSchema()
        schema.entity("X", {"A": INT}, key=[])
        with pytest.raises(ERSchemaError):
            schema.validate()

    def test_inherited_key_satisfies(self):
        schema = company_schema()
        schema.validate()  # Employee's key is inherited from Person
        assert schema.key_of("Employee") == ("Name",)

    def test_role_targets_unknown_entity(self):
        schema = ERSchema()
        schema.entity("X", {"A": INT}, key=["A"])
        schema.relationship("R", roles={"to": "Ghost"})
        with pytest.raises(ERSchemaError):
            schema.validate()

    def test_one_roles_must_be_roles(self):
        schema = ERSchema()
        schema.entity("X", {"A": INT}, key=["A"])
        with pytest.raises(ERSchemaError):
            schema.relationship("R", roles={"to": "X"}, one_roles=["nope"])

    def test_relationship_needs_roles(self):
        schema = ERSchema()
        schema.relationship("R", roles={})
        with pytest.raises(ERSchemaError):
            schema.validate()


class TestCompilationToTypes:
    def test_entity_type_inherits(self):
        schema = company_schema()
        employee = schema.entity_type("Employee")
        assert employee == record_type(
            Name=STRING, City=STRING, Empno=INT, Salary=FLOAT
        )

    def test_isa_becomes_subtyping(self):
        schema = company_schema()
        assert is_subtype(
            schema.entity_type("Employee"), schema.entity_type("Person")
        )
        assert schema.isa_respects_subtyping()

    def test_relationship_type_uses_role_keys(self):
        schema = company_schema()
        works_in = schema.relationship_type("WorksIn")
        assert works_in.field("worker") == record_type(Name=STRING)
        assert works_in.field("dept") == record_type(DeptName=STRING)
        assert works_in.field("Since") == INT

    def test_schema_type_is_a_record_of_sets(self):
        schema = company_schema()
        whole = schema.schema_type()
        assert isinstance(whole, RecordType)
        assert isinstance(whole.field("Person"), SetType)
        assert isinstance(whole.field("WorksIn"), SetType)
        assert whole.field("Employee") == SetType(schema.entity_type("Employee"))

    def test_unknown_names_raise(self):
        schema = company_schema()
        with pytest.raises(ERSchemaError):
            schema.entity_type("Ghost")
        with pytest.raises(ERSchemaError):
            schema.relationship_type("Ghost")


class TestInstanceChecking:
    def _good_instance(self):
        return {
            "Person": [{"Name": "P", "City": "Austin"}],
            "Employee": [
                {"Name": "E", "City": "Moose", "Empno": 1, "Salary": 10.0}
            ],
            "Dept": [{"DeptName": "Sales", "Budget": 100.0}],
            "WorksIn": [
                {
                    "worker": {"Name": "E"},
                    "dept": {"DeptName": "Sales"},
                    "Since": 1986,
                }
            ],
        }

    def test_good_instance(self):
        assert company_schema().check_instance(self._good_instance()) == []

    def test_type_violation(self):
        instance = self._good_instance()
        instance["Person"] = [{"Name": "P"}]  # missing City
        problems = company_schema().check_instance(instance)
        assert any("does not have type" in p for p in problems)

    def test_duplicate_key(self):
        instance = self._good_instance()
        instance["Dept"] = [
            {"DeptName": "Sales", "Budget": 1.0},
            {"DeptName": "Sales", "Budget": 2.0},
        ]
        problems = company_schema().check_instance(instance)
        assert any("duplicated" in p for p in problems)

    def test_dangling_reference(self):
        instance = self._good_instance()
        instance["WorksIn"][0]["dept"] = {"DeptName": "Ghost"}
        problems = company_schema().check_instance(instance)
        assert any("missing Dept" in p for p in problems)

    def test_one_cardinality_enforced(self):
        instance = self._good_instance()
        instance["Dept"].append({"DeptName": "Manuf", "Budget": 5.0})
        instance["WorksIn"].append(
            {
                "worker": {"Name": "E"},
                "dept": {"DeptName": "Manuf"},
                "Since": 1987,
            }
        )
        problems = company_schema().check_instance(instance)
        assert any("'one' cardinality" in p for p in problems)

    def test_many_side_unrestricted(self):
        instance = self._good_instance()
        instance["Employee"].append(
            {"Name": "F", "City": "Moose", "Empno": 2, "Salary": 11.0}
        )
        instance["WorksIn"].append(
            {
                "worker": {"Name": "F"},
                "dept": {"DeptName": "Sales"},
                "Since": 1987,
            }
        )
        assert company_schema().check_instance(instance) == []

    def test_missing_sections_are_empty(self):
        schema = company_schema()
        problems = schema.check_instance({})
        assert problems == []  # an empty instance satisfies everything
