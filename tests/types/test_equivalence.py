"""Unit tests for α-equivalence, substitution, and free variables."""

from repro.types.equivalence import (
    equivalent_types,
    free_type_vars,
    fresh_var,
    substitute,
)
from repro.types.kinds import (
    INT,
    STRING,
    Exists,
    ForAll,
    FunctionType,
    ListType,
    RecordType,
    SetType,
    TypeVar,
    VariantType,
    record_type,
)

T = TypeVar("t")
U = TypeVar("u")


class TestFreeVars:
    def test_var_is_free(self):
        assert free_type_vars(T) == {"t"}

    def test_base_has_none(self):
        assert free_type_vars(INT) == frozenset()

    def test_quantifier_binds(self):
        assert free_type_vars(ForAll("t", T)) == frozenset()

    def test_bound_of_quantifier_is_free(self):
        assert free_type_vars(ForAll("t", T, bound=U)) == {"u"}

    def test_shadowing(self):
        inner = ForAll("t", FunctionType([T], U))
        assert free_type_vars(inner) == {"u"}

    def test_through_constructors(self):
        t = record_type(a=ListType(T), b=SetType(U))
        assert free_type_vars(t) == {"t", "u"}

    def test_through_variant_and_function(self):
        t = VariantType({"case": FunctionType([T], U)})
        assert free_type_vars(t) == {"t", "u"}


class TestSubstitute:
    def test_simple(self):
        assert substitute(T, {"t": INT}) == INT

    def test_no_bindings_identity(self):
        t = ForAll("t", T)
        assert substitute(t, {}) is t

    def test_into_record(self):
        t = record_type(a=T)
        assert substitute(t, {"t": INT}) == record_type(a=INT)

    def test_bound_variable_shadows(self):
        t = ForAll("t", T)
        assert substitute(t, {"t": INT}) == t

    def test_substitutes_into_bound(self):
        t = ForAll("x", TypeVar("x"), bound=T)
        result = substitute(t, {"t": INT})
        assert isinstance(result, ForAll)
        assert result.bound == INT

    def test_capture_avoidance(self):
        # (∀u. t)[t := u] must NOT capture: result ≠ ∀u. u
        t = ForAll("u", T)
        result = substitute(t, {"t": U})
        assert isinstance(result, ForAll)
        assert result.var != "u"
        assert result.body == U
        assert equivalent_types(result, ForAll("w", U))

    def test_into_function(self):
        t = FunctionType([T], T)
        assert substitute(t, {"t": INT}) == FunctionType([INT], INT)

    def test_fresh_var_distinct(self):
        assert fresh_var("t") != fresh_var("t")


class TestAlphaEquivalence:
    def test_identical(self):
        assert equivalent_types(record_type(a=INT), record_type(a=INT))

    def test_renamed_binder(self):
        a = ForAll("t", FunctionType([T], T))
        b = ForAll("u", FunctionType([U], U))
        assert equivalent_types(a, b)

    def test_renamed_exists(self):
        assert equivalent_types(Exists("t", T), Exists("u", U))

    def test_forall_not_exists(self):
        assert not equivalent_types(ForAll("t", T), Exists("t", T))

    def test_free_vars_must_match(self):
        assert not equivalent_types(T, U)

    def test_free_var_equal(self):
        assert equivalent_types(T, TypeVar("t"))

    def test_nested_binders(self):
        a = ForAll("t", ForAll("u", FunctionType([T], U)))
        b = ForAll("x", ForAll("y", FunctionType([TypeVar("x")], TypeVar("y"))))
        assert equivalent_types(a, b)

    def test_swapped_nested_binders_differ(self):
        a = ForAll("t", ForAll("u", FunctionType([T], U)))
        b = ForAll("t", ForAll("u", FunctionType([U], T)))
        assert not equivalent_types(a, b)

    def test_bounds_compared(self):
        a = ForAll("t", T, bound=INT)
        b = ForAll("u", U, bound=STRING)
        assert not equivalent_types(a, b)

    def test_record_field_names_matter(self):
        assert not equivalent_types(record_type(a=INT), record_type(b=INT))

    def test_bound_against_free_variable(self):
        # ∀t. t vs ∀u. t — the second body's t is free, not the binder.
        a = ForAll("t", T)
        b = ForAll("u", T)
        assert not equivalent_types(a, b)

    def test_mismatched_arity(self):
        assert not equivalent_types(
            FunctionType([INT], INT), FunctionType([INT, INT], INT)
        )

    def test_rejects_different_constructors(self):
        assert not equivalent_types(ListType(INT), SetType(INT))
