"""Property-based tests for the type system.

Checks that subtyping is a preorder with antisymmetry up to α-equivalence,
that joins/meets really bound their arguments, and the paper's
order-reversal between value information and type specificity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.types.equivalence import equivalent_types
from repro.types.infer import infer_type
from repro.types.kinds import (
    BOOL,
    BOTTOM,
    FLOAT,
    INT,
    STRING,
    TOP,
    FunctionType,
    ListType,
    RecordType,
    SetType,
)
from repro.types.subtyping import (
    consistent_types,
    is_subtype,
    join_types,
    meet_types,
)

from tests.strategies import records

base_types = st.sampled_from([INT, FLOAT, STRING, BOOL, TOP, BOTTOM])

LABELS = tuple("abcd")


def _record_types(children):
    return st.dictionaries(st.sampled_from(LABELS), children, max_size=3).map(
        RecordType
    )


types = st.recursive(
    base_types,
    lambda children: st.one_of(
        _record_types(children),
        children.map(ListType),
        children.map(SetType),
        st.tuples(children, children).map(
            lambda pair: FunctionType([pair[0]], pair[1])
        ),
    ),
    max_leaves=6,
)


class TestSubtypePreorder:
    @given(types)
    def test_reflexive(self, t):
        assert is_subtype(t, t)

    @given(types, types, types)
    @settings(max_examples=300)
    def test_transitive(self, a, b, c):
        if is_subtype(a, b) and is_subtype(b, c):
            assert is_subtype(a, c)

    @given(types, types)
    def test_antisymmetric_up_to_alpha(self, a, b):
        if is_subtype(a, b) and is_subtype(b, a):
            assert equivalent_types(a, b)

    @given(types)
    def test_bottom_and_top(self, t):
        assert is_subtype(BOTTOM, t)
        assert is_subtype(t, TOP)


class TestJoinMeetProperties:
    @given(types, types)
    def test_join_is_upper_bound(self, a, b):
        joined = join_types(a, b)
        assert is_subtype(a, joined)
        assert is_subtype(b, joined)

    @given(types, types)
    def test_join_commutative_up_to_alpha(self, a, b):
        assert equivalent_types(join_types(a, b), join_types(b, a))

    @given(types)
    def test_join_idempotent(self, t):
        assert equivalent_types(join_types(t, t), t)

    @given(types, types)
    def test_meet_is_lower_bound(self, a, b):
        met = meet_types(a, b)
        if met is not None:
            assert is_subtype(met, a)
            assert is_subtype(met, b)

    @given(types, types)
    def test_meet_commutative(self, a, b):
        left = meet_types(a, b)
        right = meet_types(b, a)
        if left is None or right is None:
            assert left is None and right is None
        else:
            assert equivalent_types(left, right)

    @given(types, types, types)
    @settings(max_examples=300)
    def test_meet_is_greatest(self, a, b, witness):
        met = meet_types(a, b)
        if is_subtype(witness, a) and is_subtype(witness, b):
            if witness != BOTTOM and not _degenerate(witness):
                assert met is not None
                assert is_subtype(witness, met)

    @given(types, types)
    def test_consistency_matches_meet(self, a, b):
        assert consistent_types(a, b) == (meet_types(a, b) is not None)

    @given(types, types)
    def test_subtype_implies_join_is_supertype(self, a, b):
        if is_subtype(a, b):
            assert equivalent_types(join_types(a, b), b)

    @given(types, types)
    def test_subtype_implies_meet_is_subtype(self, a, b):
        if is_subtype(a, b):
            met = meet_types(a, b)
            assert met is not None
            assert equivalent_types(met, a)


def _degenerate(t) -> bool:
    """Types with no values other than via Bottom (e.g. List[Bottom] is
    fine — the empty list — but Bottom itself has none)."""
    return t == BOTTOM


class TestQuantifierProperties:
    """The pack/unpack rules for ∃t ≤ B. t interact with everything
    else; these properties guard the special cases."""

    @given(types)
    def test_pack_reflexivity(self, bound):
        from repro.types.kinds import Exists, TypeVar

        wrapped = Exists("t", TypeVar("t"), bound=bound)
        assert is_subtype(bound, wrapped)      # pack
        assert is_subtype(wrapped, bound)      # unpack
        assert is_subtype(wrapped, wrapped)    # reflexivity

    @given(types, types)
    @settings(max_examples=200)
    def test_pack_monotone_in_bound(self, small, large):
        from repro.types.kinds import Exists, TypeVar

        if is_subtype(small, large):
            wrapped_small = Exists("t", TypeVar("t"), bound=small)
            wrapped_large = Exists("u", TypeVar("u"), bound=large)
            assert is_subtype(wrapped_small, wrapped_large)

    @given(types, types, types)
    @settings(max_examples=200)
    def test_unpack_transitivity(self, a, bound, c):
        from repro.types.kinds import Exists, TypeVar

        wrapped = Exists("t", TypeVar("t"), bound=bound)
        if is_subtype(a, wrapped) and is_subtype(wrapped, c):
            assert is_subtype(a, c)

    @given(types)
    def test_forall_identity_at_any_bound(self, bound):
        from repro.types.kinds import ForAll, FunctionType, TypeVar

        identity = ForAll(
            "t", FunctionType([TypeVar("t")], TypeVar("t")), bound=bound
        )
        assert is_subtype(identity, identity)

    @given(types, types)
    @settings(max_examples=200)
    def test_kernel_bound_rigidity(self, first, second):
        from repro.types.equivalence import equivalent_types
        from repro.types.kinds import ForAll, TypeVar

        left = ForAll("t", TypeVar("t"), bound=first)
        right = ForAll("t", TypeVar("t"), bound=second)
        # kernel rule: related only when the bounds are equivalent
        if is_subtype(left, right):
            assert equivalent_types(first, second)


class TestValueTypeOrderReversal:
    @given(records, records)
    @settings(max_examples=200)
    def test_value_leq_reverses_type_subtyping(self, a, b):
        """o ⊑ o' at the value level implies type(o') ≤ type(o)."""
        if a.leq(b):
            assert is_subtype(infer_type(b), infer_type(a))

    @given(records, records)
    @settings(max_examples=200)
    def test_joinable_values_have_consistent_types(self, a, b):
        if a.try_join(b) is not None:
            assert consistent_types(infer_type(a), infer_type(b))

    @given(records, records)
    @settings(max_examples=200)
    def test_value_join_types_below_meet_shape(self, a, b):
        combined = a.try_join(b)
        if combined is not None:
            met = meet_types(infer_type(a), infer_type(b))
            assert met is not None
            assert is_subtype(infer_type(combined), met)
