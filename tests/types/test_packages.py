"""Unit tests for existential packages (modules as values)."""

import pytest

from repro.errors import TypeSystemError
from repro.types.kinds import (
    FLOAT,
    INT,
    STRING,
    Exists,
    FunctionType,
    RecordType,
    TypeVar,
)
from repro.types.packages import (
    Package,
    SealedTypeError,
    counter_interface,
    int_counter_package,
    pack,
)


class TestPackAndUse:
    def test_counter_lifecycle(self):
        counter = int_counter_package()
        zero = counter.call("new")
        one = counter.call("incr", zero)
        two = counter.call("incr", one)
        assert counter.call("read", two) == 2

    def test_abstract_values_are_opaque(self):
        counter = int_counter_package()
        zero = counter.call("new")
        # The value prints abstractly and exposes no integer.
        assert "abstract" in repr(zero)
        assert not isinstance(zero, int)

    def test_witness_is_hidden(self):
        """'one cannot get at its implementation.'"""
        counter = int_counter_package()
        with pytest.raises(SealedTypeError):
            counter.witness()

    def test_foreign_abstract_values_rejected(self):
        """Two packages of the same interface do not mix their t's."""
        first = int_counter_package()
        second = int_counter_package()
        value = first.call("new")
        with pytest.raises(SealedTypeError):
            second.call("incr", value)

    def test_raw_values_rejected_at_abstract_positions(self):
        counter = int_counter_package()
        with pytest.raises(SealedTypeError):
            counter.call("incr", 0)  # a bare Int is NOT a t

    def test_concrete_arguments_checked(self):
        t = TypeVar("t")
        interface = Exists(
            "t",
            RecordType(
                {"make": FunctionType([INT], t), "get": FunctionType([t], INT)}
            ),
        )
        box = pack(
            interface,
            witness=INT,
            operations={
                "make": lambda state, n: n,
                "get": lambda state, n: n,
            },
            operation_types={
                "make": FunctionType([INT], INT),
                "get": FunctionType([INT], INT),
            },
        )
        assert box.call("get", box.call("make", 7)) == 7
        with pytest.raises(SealedTypeError):
            box.call("make", "not an int")

    def test_arity_checked(self):
        counter = int_counter_package()
        with pytest.raises(SealedTypeError):
            counter.call("new", 1)

    def test_unknown_operation(self):
        counter = int_counter_package()
        with pytest.raises(SealedTypeError):
            counter.call("reset")

    def test_signature_exposes_interface_not_witness(self):
        counter = int_counter_package()
        signature = counter.signature("incr")
        assert signature == FunctionType([TypeVar("t")], TypeVar("t"))
        # no Int anywhere in what the client can see
        assert "Int" not in str(counter.interface.body.field("incr").params[0])


class TestPackChecks:
    def test_missing_operation(self):
        with pytest.raises(TypeSystemError):
            pack(
                counter_interface(),
                witness=INT,
                operations={"new": lambda s: 0},
                operation_types={"new": FunctionType([], INT)},
            )

    def test_wrong_operation_type(self):
        with pytest.raises(TypeSystemError):
            pack(
                counter_interface(),
                witness=INT,
                operations={
                    "new": lambda s: 0,
                    "incr": lambda s, n: n,
                    "read": lambda s, n: "oops",
                },
                operation_types={
                    "new": FunctionType([], INT),
                    "incr": FunctionType([INT], INT),
                    "read": FunctionType([INT], STRING),  # Int expected
                },
            )

    def test_extra_members_rejected(self):
        with pytest.raises(TypeSystemError):
            pack(
                counter_interface(),
                witness=INT,
                operations={
                    "new": lambda s: 0,
                    "incr": lambda s, n: n + 1,
                    "read": lambda s, n: n,
                    "peek_impl": lambda s: "leak",
                },
                operation_types={
                    "new": FunctionType([], INT),
                    "incr": FunctionType([INT], INT),
                    "read": FunctionType([INT], INT),
                    "peek_impl": FunctionType([], STRING),
                },
            )

    def test_witness_must_satisfy_bound(self):
        t = TypeVar("t")
        bounded = Exists(
            "t", RecordType({"id": FunctionType([t], t)}), bound=INT
        )
        with pytest.raises(TypeSystemError):
            pack(
                bounded,
                witness=STRING,  # String ≰ Int
                operations={"id": lambda s, x: x},
                operation_types={"id": FunctionType([STRING], STRING)},
            )

    def test_interface_must_be_existential_record(self):
        with pytest.raises(TypeSystemError):
            pack(INT, INT, {}, {})  # type: ignore[arg-type]
        with pytest.raises(TypeSystemError):
            pack(Exists("t", INT), INT, {}, {})

    def test_two_witnesses_same_interface(self):
        """Different representations behind one interface coexist —
        data abstraction at work."""
        t = TypeVar("t")
        interface = Exists(
            "t",
            RecordType(
                {"make": FunctionType([INT], t), "get": FunctionType([t], INT)}
            ),
        )
        as_int = pack(
            interface, INT,
            {"make": lambda s, n: n, "get": lambda s, n: n},
            {"make": FunctionType([INT], INT), "get": FunctionType([INT], INT)},
        )
        as_float = pack(
            interface, FLOAT,
            {"make": lambda s, n: float(n), "get": lambda s, x: int(x)},
            {"make": FunctionType([INT], FLOAT),
             "get": FunctionType([FLOAT], INT)},
        )
        for package in (as_int, as_float):
            assert package.call("get", package.call("make", 9)) == 9
        assert as_int.interface == as_float.interface


class TestConstants:
    def test_constant_member(self):
        t = TypeVar("t")
        interface = Exists(
            "t",
            RecordType({"zero": t, "read": FunctionType([t], INT)}),
        )
        package = pack(
            interface, INT,
            {"zero": lambda s: 0, "read": lambda s, n: n},
            {"zero": INT, "read": FunctionType([INT], INT)},
        )
        zero = package.constant("zero")
        assert package.call("read", zero) == 0

    def test_constant_vs_call_confusion(self):
        counter = int_counter_package()
        with pytest.raises(SealedTypeError):
            counter.constant("incr")

    def test_call_on_constant(self):
        t = TypeVar("t")
        interface = Exists("t", RecordType({"zero": t}))
        package = pack(interface, INT, {"zero": lambda s: 0}, {"zero": INT})
        with pytest.raises(SealedTypeError):
            package.call("zero")
