"""Unit tests for Dynamic values and type inference (the Amber examples)."""

import pytest

from repro.core.orders import record
from repro.errors import CoercionError, TypeSystemError
from repro.types.dynamic import Dynamic, coerce, dynamic, try_coerce, type_of
from repro.types.infer import infer_type
from repro.types.kinds import (
    BOOL,
    BOTTOM,
    DYNAMIC,
    FLOAT,
    INT,
    STRING,
    TYPE,
    UNIT,
    ListType,
    RecordType,
    SetType,
    record_type,
)


class TestPaperAmberExample:
    """let d = dynamic 3; let i = coerce d to Int; let s = coerce d to String."""

    def test_dynamic_3(self):
        d = dynamic(3)
        assert type_of(d) == INT

    def test_coerce_to_int_succeeds(self):
        d = dynamic(3)
        assert coerce(d, INT) == 3

    def test_coerce_to_string_raises(self):
        d = dynamic(3)
        with pytest.raises(CoercionError):
            coerce(d, STRING)

    def test_coercion_error_carries_types(self):
        try:
            coerce(dynamic(3), STRING)
        except CoercionError as err:
            assert err.carried == INT
            assert err.requested == STRING


class TestDynamic:
    def test_explicit_supertype_seal(self):
        employee = record(Name="J Doe", Emp_no=1)
        person_type = record_type(Name=STRING)
        d = dynamic(employee, person_type)
        assert type_of(d) == person_type

    def test_seal_at_non_supertype_rejected(self):
        with pytest.raises(TypeSystemError):
            dynamic(3, STRING)

    def test_coerce_allows_supertype_view(self):
        d = dynamic(record(Name="J Doe", Emp_no=1))
        person = coerce(d, record_type(Name=STRING))
        assert person == record(Name="J Doe", Emp_no=1)

    def test_coerce_to_subtype_rejected(self):
        d = dynamic(record(Name="J Doe"))
        with pytest.raises(CoercionError):
            coerce(d, record_type(Name=STRING, Emp_no=INT))

    def test_coerce_int_to_float(self):
        assert coerce(dynamic(3), FLOAT) == 3

    def test_try_coerce(self):
        d = dynamic(3)
        assert try_coerce(d, INT) == 3
        assert try_coerce(d, STRING) is None

    def test_coerce_requires_dynamic(self):
        with pytest.raises(TypeSystemError):
            coerce(3, INT)  # type: ignore[arg-type]

    def test_coerce_requires_type(self):
        with pytest.raises(TypeSystemError):
            coerce(dynamic(3), int)  # type: ignore[arg-type]

    def test_type_of_requires_dynamic(self):
        with pytest.raises(TypeSystemError):
            type_of(3)  # type: ignore[arg-type]

    def test_dynamic_equality(self):
        assert dynamic(3) == dynamic(3)
        assert dynamic(3) != dynamic(3.5)
        assert dynamic(3) != dynamic(3, FLOAT)

    def test_dynamic_of_dynamic(self):
        dd = dynamic(dynamic(3))
        assert type_of(dd) == DYNAMIC

    def test_type_as_value(self):
        """Amber's Type: a dynamic can carry a type *description*."""
        d = dynamic(INT)
        assert type_of(d) == TYPE
        assert coerce(d, TYPE) == INT

    def test_dynamic_constructor_validates(self):
        with pytest.raises(TypeSystemError):
            Dynamic(3, "Int")  # type: ignore[arg-type]

    def test_repr_mentions_type(self):
        assert "Int" in repr(dynamic(3))


class TestInference:
    def test_scalars(self):
        assert infer_type(3) == INT
        assert infer_type(3.5) == FLOAT
        assert infer_type("hi") == STRING
        assert infer_type(True) == BOOL
        assert infer_type(None) == UNIT

    def test_bool_not_int(self):
        assert infer_type(True) == BOOL  # despite bool ⊂ int in Python

    def test_atom(self):
        from repro.core.orders import atom

        assert infer_type(atom(3)) == INT

    def test_record(self):
        value = record(Name="J Doe", Emp_no=1)
        assert infer_type(value) == record_type(Name=STRING, Emp_no=INT)

    def test_nested_record(self):
        value = record(Addr={"City": "Austin"})
        assert infer_type(value) == record_type(Addr=record_type(City=STRING))

    def test_more_informative_value_has_smaller_type(self):
        """The paper: 'a more informative object appears to have a type
        that is lower in the type hierarchy.'"""
        from repro.types.subtyping import is_subtype

        o1 = record(Name="J Doe")
        o2 = record(Name="J Doe", Emp_no=1234)
        assert o1.leq(o2)
        assert is_subtype(infer_type(o2), infer_type(o1))

    def test_homogeneous_list(self):
        assert infer_type([1, 2, 3]) == ListType(INT)

    def test_heterogeneous_list_joins(self):
        assert infer_type([1, 2.5]) == ListType(FLOAT)

    def test_empty_list_is_list_bottom(self):
        assert infer_type([]) == ListType(BOTTOM)

    def test_list_of_records_joins_to_common_shape(self):
        values = [record(Name="a", Emp_no=1), record(Name="b", School="x")]
        assert infer_type(values) == ListType(record_type(Name=STRING))

    def test_set(self):
        assert infer_type({1, 2}) == SetType(INT)

    def test_dynamic_value(self):
        assert infer_type(dynamic(3)) == DYNAMIC

    def test_type_value(self):
        assert infer_type(INT) == TYPE
        assert infer_type(record_type(a=INT)) == TYPE

    def test_unknown_object_rejected(self):
        with pytest.raises(TypeSystemError):
            infer_type(object())

    def test_inferred_record_type_is_record_type(self):
        assert isinstance(infer_type(record(a=1)), RecordType)
