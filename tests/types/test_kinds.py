"""Unit tests for type expressions (construction, equality, display)."""

import pytest

from repro.errors import TypeSystemError
from repro.types.kinds import (
    BOOL,
    BOTTOM,
    DYNAMIC,
    FLOAT,
    INT,
    STRING,
    TOP,
    TYPE,
    UNIT,
    Exists,
    ForAll,
    FunctionType,
    ListType,
    RecordType,
    SetType,
    TypeVar,
    VariantType,
    record_type,
)

PERSON = record_type(Name=STRING, Address=record_type(City=STRING))
EMPLOYEE = PERSON.extend(Emp_no=INT, Dept=STRING)


class TestConstruction:
    def test_base_singletons_distinct(self):
        assert len({INT, FLOAT, STRING, BOOL, UNIT}) == 5

    def test_special_singletons_distinct(self):
        assert len({TOP, BOTTOM, DYNAMIC, TYPE}) == 4

    def test_record_fields_sorted(self):
        r = RecordType({"b": INT, "a": STRING})
        assert r.labels == ("a", "b")

    def test_record_field_access(self):
        assert PERSON.field("Name") == STRING
        assert PERSON.field("Nope") is None

    def test_record_extend_is_paper_with_clause(self):
        # "type Employee is Person with Emp_no: Int, Dept: String"
        assert EMPLOYEE.field("Name") == STRING
        assert EMPLOYEE.field("Emp_no") == INT

    def test_record_rejects_bad_field(self):
        with pytest.raises(TypeSystemError):
            RecordType({"a": 3})  # type: ignore[dict-item]

    def test_record_rejects_bad_label(self):
        with pytest.raises(TypeSystemError):
            RecordType({3: INT})  # type: ignore[dict-item]

    def test_variant_needs_cases(self):
        with pytest.raises(TypeSystemError):
            VariantType({})

    def test_variant_case_access(self):
        v = VariantType({"some": INT, "none": UNIT})
        assert v.case("some") == INT
        assert v.case("other") is None

    def test_list_set_element(self):
        assert ListType(INT).element == INT
        assert SetType(STRING).element == STRING

    def test_list_rejects_non_type(self):
        with pytest.raises(TypeSystemError):
            ListType("Int")  # type: ignore[arg-type]

    def test_function_params_result(self):
        f = FunctionType([INT, STRING], BOOL)
        assert f.params == (INT, STRING)
        assert f.result == BOOL

    def test_typevar_needs_name(self):
        with pytest.raises(TypeSystemError):
            TypeVar("")

    def test_quantifier_default_bound_is_top(self):
        assert ForAll("t", TypeVar("t")).bound == TOP
        assert Exists("t", TypeVar("t")).bound == TOP

    def test_quantifier_rejects_bad_body(self):
        with pytest.raises(TypeSystemError):
            ForAll("t", "t")  # type: ignore[arg-type]


class TestEqualityHash:
    def test_record_structural_equality(self):
        assert record_type(a=INT, b=STRING) == RecordType({"b": STRING, "a": INT})

    def test_record_hash(self):
        assert len({record_type(a=INT), record_type(a=INT)}) == 1

    def test_function_equality(self):
        assert FunctionType([INT], BOOL) == FunctionType([INT], BOOL)
        assert FunctionType([INT], BOOL) != FunctionType([INT], INT)

    def test_quantifier_structural_equality(self):
        assert ForAll("t", TypeVar("t")) == ForAll("t", TypeVar("t"))
        # structural, not α: different variable names differ here
        assert ForAll("t", TypeVar("t")) != ForAll("u", TypeVar("u"))

    def test_forall_exists_distinct(self):
        assert ForAll("t", TypeVar("t")) != Exists("t", TypeVar("t"))


class TestDisplay:
    def test_base(self):
        assert str(INT) == "Int"

    def test_record(self):
        assert str(record_type(Name=STRING, Age=INT)) == "{Age: Int; Name: String}"

    def test_function(self):
        assert str(FunctionType([INT], BOOL)) == "Int -> Bool"
        assert str(FunctionType([INT, STRING], BOOL)) == "(Int x String) -> Bool"
        assert str(FunctionType([], BOOL)) == "() -> Bool"

    def test_quantifiers(self):
        assert str(ForAll("t", TypeVar("t"))) == "∀t. t"
        assert (
            str(Exists("t", TypeVar("t"), record_type(Name=STRING)))
            == "∃t <= {Name: String}. t"
        )

    def test_get_function_type_is_writable(self):
        """The paper's headline: Get : ∀t. Database → List[∃t' ≤ t. t']."""
        database = ListType(DYNAMIC)
        get_type = ForAll(
            "t",
            FunctionType([database], ListType(Exists("u", TypeVar("u"), TypeVar("t")))),
        )
        assert str(get_type) == "∀t. List[Dynamic] -> List[∃u <= t. u]"

    def test_variant(self):
        assert str(VariantType({"some": INT, "none": UNIT})) == "[none: Unit | some: Int]"
