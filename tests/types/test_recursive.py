"""Unit tests for recursive (μ) types."""

import json

import pytest

from repro.errors import TypeSystemError
from repro.persistence.serialize import decode_type, encode_type
from repro.types.equivalence import equivalent_types, substitute
from repro.types.kinds import (
    BOOL,
    BOTTOM,
    FLOAT,
    INT,
    STRING,
    TOP,
    ListType,
    Mu,
    RecordType,
    RecVar,
    TypeVar,
    record_type,
    unfold,
)
from repro.types.subtyping import is_subtype


def part_type(extra=None):
    fields = {
        "IsBase": BOOL,
        "Components": ListType(
            record_type(SubPart=RecVar("Part"), Qty=INT)
        ),
    }
    fields.update(extra or {})
    return Mu("Part", RecordType(fields))


INT_LIST = Mu("L", record_type(Head=INT, Tail=RecVar("L")))


class TestConstruction:
    def test_unfold_one_layer(self):
        unfolded = unfold(INT_LIST)
        assert isinstance(unfolded, RecordType)
        assert unfolded.field("Tail") == INT_LIST

    def test_unfold_requires_mu(self):
        with pytest.raises(TypeSystemError):
            unfold(INT)

    def test_shadowing_inner_binder(self):
        nested = Mu("x", Mu("x", RecVar("x")))
        inner = unfold(nested)
        # the inner binder shadowed: the outer substitution didn't touch it
        assert inner == Mu("x", RecVar("x"))

    def test_display(self):
        assert str(INT_LIST) == "μL. {Head: Int; Tail: L}"

    def test_validation(self):
        with pytest.raises(TypeSystemError):
            Mu("", INT)
        with pytest.raises(TypeSystemError):
            Mu("x", "not a type")
        with pytest.raises(TypeSystemError):
            RecVar("")


class TestRecursiveSubtyping:
    def test_reflexive(self):
        assert is_subtype(part_type(), part_type())

    def test_unfolding_equivalent(self):
        """μ and its unfolding are mutual subtypes (iso ≈ equi here)."""
        assert is_subtype(INT_LIST, unfold(INT_LIST))
        assert is_subtype(unfold(INT_LIST), INT_LIST)

    def test_richer_recursive_record_is_subtype(self):
        richer = part_type({"Name": STRING})
        assert is_subtype(richer, part_type())
        assert not is_subtype(part_type(), richer)

    def test_alpha_renamed_mu_subtypes(self):
        renamed = Mu("Q", record_type(Head=INT, Tail=RecVar("Q")))
        assert is_subtype(INT_LIST, renamed)
        assert is_subtype(renamed, INT_LIST)

    def test_unrelated_recursive_types(self):
        other = Mu("L", record_type(Head=STRING, Tail=RecVar("L")))
        assert not is_subtype(INT_LIST, other)
        assert not is_subtype(other, INT_LIST)

    def test_depth_covariance_through_mu(self):
        precise = Mu("L", record_type(Head=INT, Tail=RecVar("L")))
        loose = Mu("L", record_type(Head=FLOAT, Tail=RecVar("L")))
        assert is_subtype(precise, loose)
        assert not is_subtype(loose, precise)

    def test_finite_value_types_below_mu(self):
        """A finite explosion (bottoming out at List[Bottom]) inhabits
        the recursive Part type."""
        leaf = record_type(IsBase=BOOL, Components=ListType(BOTTOM))
        one_level = record_type(
            IsBase=BOOL,
            Components=ListType(record_type(SubPart=leaf, Qty=INT)),
        )
        assert is_subtype(leaf, part_type())
        assert is_subtype(one_level, part_type())

    def test_mu_against_top_bottom(self):
        assert is_subtype(part_type(), TOP)
        assert is_subtype(BOTTOM, part_type())
        assert not is_subtype(part_type(), BOTTOM)

    def test_free_recvars_unrelated(self):
        assert not is_subtype(RecVar("x"), INT)
        assert not is_subtype(INT, RecVar("x"))
        assert is_subtype(RecVar("x"), RecVar("x"))  # reflexivity

    def test_coinduction_terminates_on_mutual_nesting(self):
        a = Mu("A", record_type(Next=RecVar("A"), Tag=INT))
        b = Mu("B", record_type(Next=RecVar("B")))
        assert is_subtype(a, b)  # width subtyping through the recursion
        assert not is_subtype(b, a)


class TestEquivalenceAndSubstitution:
    def test_alpha_equivalence(self):
        renamed = Mu("Q", record_type(Head=INT, Tail=RecVar("Q")))
        assert equivalent_types(INT_LIST, renamed)

    def test_not_equivalent_to_unfolding(self):
        # syntactic α-equivalence only; the unfolding differs textually
        assert not equivalent_types(INT_LIST, unfold(INT_LIST))

    def test_distinct_bodies_not_equivalent(self):
        other = Mu("L", record_type(Head=STRING, Tail=RecVar("L")))
        assert not equivalent_types(INT_LIST, other)

    def test_typevar_substitution_passes_through_mu(self):
        generic = Mu("L", record_type(Head=TypeVar("a"), Tail=RecVar("L")))
        concrete = substitute(generic, {"a": INT})
        assert equivalent_types(concrete, INT_LIST)

    def test_serialization_round_trip(self):
        for t in (INT_LIST, part_type(), part_type({"Name": STRING})):
            node = json.loads(json.dumps(encode_type(t)))
            assert decode_type(node) == t
