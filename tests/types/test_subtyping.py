"""Unit tests for the subtype relation, joins, meets, and consistency."""

from repro.types.kinds import (
    BOOL,
    BOTTOM,
    DYNAMIC,
    FLOAT,
    INT,
    STRING,
    TOP,
    TYPE,
    UNIT,
    Exists,
    ForAll,
    FunctionType,
    ListType,
    RecordType,
    SetType,
    TypeVar,
    VariantType,
    record_type,
)
from repro.types.subtyping import (
    consistent_types,
    is_subtype,
    is_supertype,
    join_types,
    meet_types,
)

PERSON = record_type(Name=STRING)
EMPLOYEE = record_type(Name=STRING, Emp_no=INT)
STUDENT = record_type(Name=STRING, School=STRING)
WORKING_STUDENT = record_type(Name=STRING, Emp_no=INT, School=STRING)


class TestBaseRules:
    def test_reflexive(self):
        for t in (INT, STRING, PERSON, ListType(INT), DYNAMIC, TYPE):
            assert is_subtype(t, t)

    def test_bottom_below_everything(self):
        for t in (INT, PERSON, ListType(INT), TOP, DYNAMIC):
            assert is_subtype(BOTTOM, t)

    def test_everything_below_top(self):
        for t in (INT, PERSON, ListType(INT), BOTTOM, DYNAMIC, TYPE):
            assert is_subtype(t, TOP)

    def test_top_only_below_top(self):
        assert not is_subtype(TOP, INT)

    def test_int_below_float(self):
        assert is_subtype(INT, FLOAT)
        assert not is_subtype(FLOAT, INT)

    def test_distinct_bases_unrelated(self):
        assert not is_subtype(INT, STRING)
        assert not is_subtype(BOOL, INT)
        assert not is_subtype(UNIT, BOOL)

    def test_dynamic_unrelated_to_bases(self):
        assert not is_subtype(DYNAMIC, INT)
        assert not is_subtype(INT, DYNAMIC)

    def test_is_supertype(self):
        assert is_supertype(FLOAT, INT)


class TestRecordRules:
    def test_width_employee_below_person(self):
        assert is_subtype(EMPLOYEE, PERSON)
        assert not is_subtype(PERSON, EMPLOYEE)

    def test_depth(self):
        precise = record_type(Addr=record_type(City=STRING, Zip=INT))
        loose = record_type(Addr=record_type(City=STRING))
        assert is_subtype(precise, loose)
        assert not is_subtype(loose, precise)

    def test_width_and_depth_combined(self):
        precise = record_type(Name=STRING, Salary=INT)
        loose = record_type(Salary=FLOAT)
        assert is_subtype(precise, loose)

    def test_empty_record_is_record_top(self):
        assert is_subtype(PERSON, record_type())
        assert not is_subtype(record_type(), PERSON)

    def test_diamond(self):
        assert is_subtype(WORKING_STUDENT, EMPLOYEE)
        assert is_subtype(WORKING_STUDENT, STUDENT)
        assert is_subtype(WORKING_STUDENT, PERSON)
        assert not is_subtype(EMPLOYEE, STUDENT)

    def test_record_not_below_base(self):
        assert not is_subtype(PERSON, INT)
        assert not is_subtype(INT, PERSON)


class TestVariantRules:
    def test_fewer_cases_is_subtype(self):
        small = VariantType({"ok": INT})
        big = VariantType({"ok": INT, "err": STRING})
        assert is_subtype(small, big)
        assert not is_subtype(big, small)

    def test_casewise_covariant(self):
        small = VariantType({"ok": INT})
        big = VariantType({"ok": FLOAT})
        assert is_subtype(small, big)
        assert not is_subtype(big, small)


class TestConstructorRules:
    def test_list_covariant(self):
        assert is_subtype(ListType(EMPLOYEE), ListType(PERSON))
        assert not is_subtype(ListType(PERSON), ListType(EMPLOYEE))

    def test_set_covariant(self):
        assert is_subtype(SetType(INT), SetType(FLOAT))

    def test_list_not_set(self):
        assert not is_subtype(ListType(INT), SetType(INT))

    def test_empty_list_type_below_all_lists(self):
        assert is_subtype(ListType(BOTTOM), ListType(PERSON))

    def test_function_contravariant_domain(self):
        f = FunctionType([PERSON], INT)
        g = FunctionType([EMPLOYEE], INT)
        # A Person-consumer can stand in where an Employee-consumer is wanted.
        assert is_subtype(f, g)
        assert not is_subtype(g, f)

    def test_function_covariant_result(self):
        f = FunctionType([INT], EMPLOYEE)
        g = FunctionType([INT], PERSON)
        assert is_subtype(f, g)
        assert not is_subtype(g, f)

    def test_function_arity_must_match(self):
        assert not is_subtype(FunctionType([INT], INT), FunctionType([INT, INT], INT))


class TestQuantifierRules:
    def test_alpha_equivalent_foralls(self):
        a = ForAll("t", FunctionType([TypeVar("t")], TypeVar("t")))
        b = ForAll("u", FunctionType([TypeVar("u")], TypeVar("u")))
        assert is_subtype(a, b)
        assert is_subtype(b, a)

    def test_forall_body_covariant(self):
        a = ForAll("t", FunctionType([TypeVar("t")], EMPLOYEE))
        b = ForAll("t", FunctionType([TypeVar("t")], PERSON))
        assert is_subtype(a, b)
        assert not is_subtype(b, a)

    def test_kernel_rule_bounds_must_match(self):
        a = ForAll("t", TypeVar("t"), bound=EMPLOYEE)
        b = ForAll("t", TypeVar("t"), bound=PERSON)
        # Full F-sub would accept a ≤ b; the kernel rule refuses.
        assert not is_subtype(a, b)
        assert not is_subtype(b, a)

    def test_bound_variable_below_its_bound(self):
        a = ForAll("t", TypeVar("t"), bound=EMPLOYEE)
        b = ForAll("t", PERSON, bound=EMPLOYEE)
        # Inside the quantifier, t ≤ Employee ≤ Person.
        assert is_subtype(a, b)

    def test_packing_into_existential(self):
        """Employee ≤ ∃t ≤ Person. t — the Get result-element rule."""
        some_person = Exists("t", TypeVar("t"), bound=PERSON)
        assert is_subtype(EMPLOYEE, some_person)
        assert is_subtype(PERSON, some_person)
        assert not is_subtype(INT, some_person)

    def test_exists_body_covariant(self):
        a = Exists("t", record_type(Name=STRING, Extra=TypeVar("t")))
        b = Exists("t", record_type(Name=STRING))
        assert is_subtype(a, b)

    def test_get_type_subtyping(self):
        """List[∃t ≤ Employee. t] ≤ List[∃t ≤ Employee. t] (reflexivity via α)."""
        database = ListType(DYNAMIC)
        get_emp = ForAll(
            "t",
            FunctionType(
                [database], ListType(Exists("u", TypeVar("u"), bound=TypeVar("t")))
            ),
        )
        assert is_subtype(get_emp, get_emp)


class TestJoin:
    def test_join_of_employee_student_is_person_shape(self):
        assert join_types(EMPLOYEE, STUDENT) == PERSON

    def test_join_reflexive(self):
        assert join_types(PERSON, PERSON) == PERSON

    def test_join_with_bottom(self):
        assert join_types(BOTTOM, PERSON) == PERSON
        assert join_types(PERSON, BOTTOM) == PERSON

    def test_join_int_float(self):
        assert join_types(INT, FLOAT) == FLOAT

    def test_join_unrelated_bases_is_top(self):
        assert join_types(INT, STRING) == TOP

    def test_join_mixed_kinds_is_top(self):
        assert join_types(PERSON, INT) == TOP

    def test_join_is_upper_bound(self):
        joined = join_types(EMPLOYEE, STUDENT)
        assert is_subtype(EMPLOYEE, joined)
        assert is_subtype(STUDENT, joined)

    def test_join_depth(self):
        a = record_type(Addr=record_type(City=STRING, Zip=INT))
        b = record_type(Addr=record_type(City=STRING, State=STRING))
        assert join_types(a, b) == record_type(Addr=record_type(City=STRING))

    def test_join_lists(self):
        assert join_types(ListType(EMPLOYEE), ListType(STUDENT)) == ListType(PERSON)

    def test_join_variants_unions_cases(self):
        a = VariantType({"ok": INT})
        b = VariantType({"err": STRING})
        assert join_types(a, b) == VariantType({"ok": INT, "err": STRING})

    def test_join_functions(self):
        f = FunctionType([PERSON], EMPLOYEE)
        g = FunctionType([EMPLOYEE], STUDENT)
        joined = join_types(f, g)
        assert is_subtype(f, joined)
        assert is_subtype(g, joined)


class TestMeetAndConsistency:
    def test_meet_of_employee_student(self):
        assert meet_types(EMPLOYEE, STUDENT) == WORKING_STUDENT

    def test_meet_is_lower_bound(self):
        met = meet_types(EMPLOYEE, STUDENT)
        assert met is not None
        assert is_subtype(met, EMPLOYEE)
        assert is_subtype(met, STUDENT)

    def test_meet_int_float(self):
        assert meet_types(INT, FLOAT) == INT

    def test_meet_unrelated_bases_is_none(self):
        assert meet_types(INT, STRING) is None

    def test_meet_with_top(self):
        assert meet_types(TOP, PERSON) == PERSON

    def test_meet_with_bottom(self):
        assert meet_types(BOTTOM, PERSON) == BOTTOM

    def test_meet_conflicting_fields_is_none(self):
        a = record_type(x=INT)
        b = record_type(x=STRING)
        assert meet_types(a, b) is None

    def test_meet_lists_of_inconsistent_elements(self):
        met = meet_types(ListType(INT), ListType(STRING))
        assert met == ListType(BOTTOM)  # the empty list inhabits both

    def test_meet_variants_intersects(self):
        a = VariantType({"ok": INT, "err": STRING})
        b = VariantType({"ok": INT, "warn": STRING})
        assert meet_types(a, b) == VariantType({"ok": INT})

    def test_meet_disjoint_variants_is_none(self):
        assert meet_types(VariantType({"a": INT}), VariantType({"b": INT})) is None

    def test_consistency_symmetric_examples(self):
        assert consistent_types(EMPLOYEE, STUDENT)
        assert consistent_types(STUDENT, EMPLOYEE)
        assert not consistent_types(record_type(x=INT), record_type(x=STRING))

    def test_subtypes_always_consistent(self):
        assert consistent_types(EMPLOYEE, PERSON)

    def test_schema_evolution_triple(self):
        """The paper's three recompilation outcomes as one scenario."""
        db_type = record_type(Employees=ListType(EMPLOYEE))
        view = record_type(Employees=ListType(PERSON))        # supertype: OK
        enriched = record_type(
            Employees=ListType(EMPLOYEE), Depts=ListType(record_type(Dept=STRING))
        )                                                      # consistent: OK
        hostile = record_type(Employees=INT)                   # inconsistent
        assert is_subtype(db_type, view)
        assert not is_subtype(db_type, enriched)
        assert consistent_types(db_type, enriched)
        assert not consistent_types(db_type, hostile)
