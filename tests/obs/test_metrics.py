"""Counter/histogram behavior and the registry's JSON-able snapshot."""

import json
import threading

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
)


class TestCounter:
    def test_inc_default_and_delta(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_reset(self):
        counter = Counter("c")
        counter.inc(3)
        counter.reset()
        assert counter.value == 0


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.total == 10.0
        assert histogram.min == 1.0
        assert histogram.max == 4.0
        assert histogram.mean == 2.5

    def test_empty_histogram_is_well_defined(self):
        histogram = Histogram("h")
        assert histogram.mean == 0.0
        assert histogram.percentile(95) == 0.0
        snap = histogram.snapshot()
        assert snap["count"] == 0
        assert snap["min"] is None and snap["max"] is None

    def test_percentiles_on_known_data(self):
        histogram = Histogram("h")
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.percentile(0) == 0.0
        assert histogram.percentile(50) == 50.0
        assert histogram.percentile(95) == 95.0

    def test_sample_ring_is_bounded_but_stats_are_exact(self):
        histogram = Histogram("h", sample_cap=8)
        for value in range(100):
            histogram.observe(float(value))
        assert len(histogram._samples) == 8
        # Count/sum/extrema cover *all* observations, not just the ring.
        assert histogram.count == 100
        assert histogram.max == 99.0
        assert histogram.min == 0.0

    def test_snapshot_shape(self):
        histogram = Histogram("h")
        histogram.observe(2.5)
        snap = histogram.snapshot()
        assert set(snap) == {"count", "sum", "min", "max", "mean", "p50", "p95"}
        assert snap["count"] == 1
        assert snap["sum"] == 2.5


class TestHistogramQuantile:
    """``quantile(q)`` on the 0..1 scale (the monitor digests' accessor)."""

    def test_empty_histogram_answers_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_single_sample_answers_that_sample(self):
        histogram = Histogram("h")
        histogram.observe(7.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 7.25

    def test_q0_and_q1_are_the_retained_extremes(self):
        histogram = Histogram("h")
        for value in (5.0, 1.0, 3.0, 9.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) == 1.0
        assert histogram.quantile(1.0) == 9.0

    def test_interpolates_between_ranks(self):
        histogram = Histogram("h")
        for value in (0.0, 10.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 5.0
        assert histogram.quantile(0.25) == 2.5

    def test_known_quantiles_on_uniform_data(self):
        histogram = Histogram("h")
        for value in range(101):
            histogram.observe(float(value))
        assert histogram.quantile(0.5) == 50.0
        assert histogram.quantile(0.95) == 95.0
        assert histogram.quantile(0.99) == 99.0

    def test_out_of_range_q_raises(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        for q in (-0.1, 1.1, 100.0):
            try:
                histogram.quantile(q)
            except ValueError:
                continue
            raise AssertionError("quantile(%r) should raise" % q)

    def test_quantile_reads_the_bounded_ring(self):
        histogram = Histogram("h", sample_cap=8)
        for value in range(100):
            histogram.observe(float(value))
        # Only the most recent 8 samples (92..99) are retained.
        assert histogram.quantile(0.0) == 92.0
        assert histogram.quantile(1.0) == 99.0


class TestMetricsRegistry:
    def test_counter_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        first = registry.counter("x")
        first.inc()
        assert registry.counter("x") is first
        assert registry.counter("x").value == 1

    def test_histogram_get_or_create_returns_same_handle(self):
        registry = MetricsRegistry()
        assert registry.histogram("h") is registry.histogram("h")

    def test_snapshot_is_json_compatible(self):
        registry = MetricsRegistry()
        registry.counter("ops").inc(7)
        registry.histogram("lat").observe(0.25)
        snap = registry.snapshot()
        assert snap["counters"] == {"ops": 7}
        assert snap["histograms"]["lat"]["count"] == 1
        # Round-trips through JSON without custom encoders.
        assert json.loads(json.dumps(snap)) == snap

    def test_to_json_parses_back(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        parsed = json.loads(registry.to_json(indent=2))
        assert parsed["counters"]["a"] == 1

    def test_reset_zeroes_in_place_keeping_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        histogram = registry.histogram("h")
        counter.inc(9)
        histogram.observe(1.0)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0
        # Cached handles keep recording into the registry after reset.
        counter.inc()
        histogram.observe(2.0)
        assert registry.snapshot()["counters"]["c"] == 1
        assert registry.snapshot()["histograms"]["h"]["count"] == 1

    def test_format_lists_counters_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("store.appends").inc(3)
        registry.histogram("store.sync.seconds").observe(0.001)
        text = registry.format()
        assert "counters:" in text
        assert "store.appends" in text
        assert "histograms:" in text
        assert "store.sync.seconds" in text

    def test_format_when_empty(self):
        assert MetricsRegistry().format() == "(no metrics recorded)"

    def test_global_registry_is_shared(self):
        assert get_metrics() is REGISTRY
        before = REGISTRY.counter("test.metrics.shared").value
        REGISTRY.counter("test.metrics.shared").inc()
        assert REGISTRY.counter("test.metrics.shared").value == before + 1


class TestThreadSafety:
    def test_concurrent_increments_lose_no_counts(self):
        """`value += delta` is several bytecodes; the lock must make
        racing increments exact, not approximate."""
        registry = MetricsRegistry()
        per_thread = 10_000

        def hammer():
            for _ in range(per_thread):
                registry.counter("racy").inc()
                registry.histogram("racy.lat").observe(0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("racy").value == 8 * per_thread
        assert registry.histogram("racy.lat").count == 8 * per_thread

    def test_concurrent_get_or_create_mints_one_handle(self):
        registry = MetricsRegistry()
        handles = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            handles.append(registry.counter("minted.once"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(h is handles[0] for h in handles)

    def test_gauge_set_and_reset(self):
        gauge = Gauge("level")
        gauge.set(3.5)
        assert gauge.value == 3.5
        gauge.reset()
        assert gauge.value == 0.0
