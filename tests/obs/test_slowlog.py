"""The slow-query log: capture, hooks, and journal round-trips."""

import pytest

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import eq, explain_analyze, optimize, scan
from repro.lang.eval import Interpreter
from repro.obs import events, slowlog, trace
from repro.obs.export import read_journal, write_journal
from repro.obs.slowlog import SlowLog, SlowQueryEntry


@pytest.fixture(autouse=True)
def restore_globals():
    previous_log = slowlog.CURRENT
    previous_journal = events.CURRENT
    previous_tracer = trace.CURRENT
    yield
    slowlog.set_slowlog(previous_log)
    events.set_journal(previous_journal)
    trace.set_tracer(previous_tracer)


def make_catalog():
    emp = FlatRelation(
        ("Emp", "Dept", "Salary"),
        [
            ("Smith", "Sales", 40),
            ("Jones", "Sales", 50),
            ("Brown", "Manuf", 40),
            ("Green", "Manuf", 60),
        ],
    )
    dept = FlatRelation(
        ("Dept", "City"),
        [("Sales", "Glasgow"), ("Manuf", "Lochgilphead")],
    )
    return Catalog({"emp": emp, "dept": dept})


class TestSlowLogRing:
    def test_threshold_gates_recording(self):
        log = SlowLog(threshold_ms=10.0)
        assert log.would_record(0.020)
        assert not log.would_record(0.005)

    def test_ring_is_bounded_and_total_counts_everything(self):
        log = SlowLog(threshold_ms=0.0, capacity=3)
        for i in range(10):
            log.record("plan", "q%d" % i, 0.001)
        assert len(log) == 3
        assert log.total == 10
        assert [e.query for e in log.entries()] == ["q7", "q8", "q9"]

    def test_entries_limit_returns_newest(self):
        log = SlowLog(threshold_ms=0.0)
        for i in range(5):
            log.record("plan", "q%d" % i, 0.001)
        assert [e.query for e in log.entries(2)] == ["q3", "q4"]

    def test_measure_records_only_over_threshold(self):
        ticks = iter([0.0, 0.001, 1.0, 2.0])
        log = SlowLog(threshold_ms=50.0, clock=lambda: next(ticks))
        with log.measure("plan", "fast"):
            pass  # 1ms — under
        with log.measure("plan", "slow"):
            pass  # 1000ms — over
        assert [e.query for e in log.entries()] == ["slow"]
        assert log.entries()[0].elapsed_ms == pytest.approx(1000.0)

    def test_measure_resolves_lazy_text_only_when_slow(self):
        rendered = []

        def plan_text():
            rendered.append(True)
            return "the plan"

        ticks = iter([0.0, 0.001, 0.0, 1.0])
        log = SlowLog(threshold_ms=50.0, clock=lambda: next(ticks))
        with log.measure("plan", "fast", plan=plan_text):
            pass
        assert rendered == []  # fast path never rendered the plan
        with log.measure("plan", "slow", plan=plan_text):
            pass
        assert rendered == [True]
        assert log.entries()[0].plan == "the plan"

    def test_long_query_text_is_truncated(self):
        log = SlowLog(threshold_ms=0.0)
        entry = log.record("lang", "x" * 1000, 0.001)
        assert len(entry.query) <= 200

    def test_report_table_and_empty_message(self):
        log = SlowLog(threshold_ms=5.0)
        assert "no slow queries" in log.report()
        log.record("plan", "scan(emp)", 0.010, drift=2.0)
        text = log.report()
        assert "scan(emp)" in text
        assert "2.00" in text

    def test_to_dict_is_json_compatible(self):
        import json

        entry = SlowQueryEntry(
            seq=1, kind="plan", query="q", elapsed_ms=5.0,
            threshold_ms=1.0, pairs_tried=3, pairs_pruned=7,
        )
        payload = json.loads(json.dumps(entry.to_dict()))
        assert payload["kind"] == "plan"
        assert payload["pairs_tried"] == 3

    def test_noop_is_inert(self):
        slowlog.disable()
        log = slowlog.CURRENT
        assert not log.enabled
        with log.measure("plan", "q"):
            pass
        assert log.entries() == []
        assert "off" in log.report()

    def test_enable_keeps_entries_and_updates_threshold(self):
        log = slowlog.enable(threshold_ms=0.0)
        log.record("plan", "q", 0.001)
        again = slowlog.enable(threshold_ms=75.0)
        assert again is log
        assert again.threshold_ms == 75.0
        assert len(again) == 1
        slowlog.disable()


class TestExecuteHook:
    def test_outermost_plan_records_one_entry_with_plan_summary(self):
        catalog = make_catalog()
        log = slowlog.enable(threshold_ms=0.0)
        log.clear()
        plan = optimize(
            scan("emp").join(scan("dept")).where(eq("Dept", "Sales")),
            catalog,
        )
        plan.execute(catalog)
        entries = log.entries()
        # One entry for the whole tree, not one per node.
        assert len(entries) == 1
        assert entries[0].kind == "plan"
        assert "Join" in entries[0].plan
        assert "Scan(dept)" in entries[0].plan

    def test_disabled_log_records_nothing(self):
        catalog = make_catalog()
        slowlog.disable()
        optimize(scan("emp"), catalog).execute(catalog)
        assert slowlog.CURRENT.entries() == []

    def test_explain_analyze_records_drift(self):
        catalog = make_catalog()
        log = slowlog.enable(threshold_ms=0.0)
        log.clear()
        plan = scan("emp").where(eq("Dept", "Sales"))
        explain_analyze(plan, catalog)
        explains = [e for e in log.entries() if e.kind == "explain"]
        assert len(explains) == 1
        assert explains[0].drift is not None
        assert explains[0].drift >= 1.0

    def test_under_threshold_plan_is_not_recorded(self):
        catalog = make_catalog()
        log = slowlog.enable(threshold_ms=10_000.0)
        log.clear()
        optimize(scan("emp"), catalog).execute(catalog)
        assert log.entries() == []

    def test_lang_run_records_source_snippet(self):
        log = slowlog.enable(threshold_ms=0.0)
        log.clear()
        Interpreter().run("6 * 7")
        langs = [e for e in log.entries() if e.kind == "lang"]
        assert len(langs) == 1
        assert langs[0].query == "6 * 7"

    def test_span_correlation_when_tracing(self):
        catalog = make_catalog()
        log = slowlog.enable(threshold_ms=0.0)
        log.clear()
        tracer = trace.enable()
        optimize(scan("emp"), catalog).execute(catalog)
        trace.disable()
        entry = log.entries()[-1]
        assert entry.span is not None
        assert entry.span in {s.seq for s in tracer.spans()}

    def test_pairs_deltas_attributed_to_the_entry(self):
        catalog = make_catalog()
        log = slowlog.enable(threshold_ms=0.0)
        log.clear()
        plan = optimize(scan("emp").join(scan("dept")), catalog)
        plan.execute(catalog)
        entry = log.entries()[-1]
        assert entry.pairs_tried > 0


class TestRequestCorrelation:
    def test_entry_adopts_the_thread_request_context(self):
        catalog = make_catalog()
        log = slowlog.enable(threshold_ms=0.0)
        log.clear()
        previous = trace.set_request_id("s03-c7")
        try:
            optimize(scan("emp"), catalog).execute(catalog)
        finally:
            trace.set_request_id(previous)
        entry = log.entries()[-1]
        assert entry.request == "s03-c7"
        assert entry.to_dict()["request"] == "s03-c7"

    def test_no_context_leaves_request_none(self):
        catalog = make_catalog()
        log = slowlog.enable(threshold_ms=0.0)
        log.clear()
        optimize(scan("emp"), catalog).execute(catalog)
        assert log.entries()[-1].request is None

    def test_for_request_filters_retained_entries(self):
        log = SlowLog(threshold_ms=0.0)
        previous = trace.set_request_id("r1")
        log.record("plan", "q1", 0.001)
        trace.set_request_id("r2")
        log.record("plan", "q2", 0.001)
        trace.set_request_id(previous)
        assert [e.query for e in log.for_request("r1")] == ["q1"]
        assert [e.query for e in log.for_request("r2")] == ["q2"]
        assert log.for_request("r3") == []

    def test_report_renders_the_request_column(self):
        log = SlowLog(threshold_ms=0.0)
        previous = trace.set_request_id("s01-c4")
        log.record("plan", "scan emp", 5.0)
        trace.set_request_id(previous)
        report = log.report()
        assert "request" in report.splitlines()[1]  # header row
        assert "s01-c4" in report


class TestJournalRoundTrip:
    def test_slow_entries_publish_warn_events(self):
        journal = events.enable(capacity=64)
        log = slowlog.enable(threshold_ms=0.0)
        log.record("plan", "scan(emp)", 0.002, drift=1.5)
        warns = journal.events(subsystem="slowlog")
        assert len(warns) == 1
        assert warns[0].severity == "WARN"
        assert warns[0].name == "slow_query"
        assert warns[0].payload["query"] == "scan(emp)"
        assert warns[0].payload["drift"] == 1.5

    def test_slow_entries_survive_write_read_journal(self, tmp_path):
        events.enable(capacity=64)
        log = slowlog.enable(threshold_ms=0.0)
        log.record(
            "explain", "IndexScan(orders)", 0.050,
            drift=4.76, pairs_tried=12, pairs_pruned=88,
        )
        path = str(tmp_path / "session.jsonl")
        write_journal(path)
        restored = [
            e for e in read_journal(path)
            if e["subsystem"] == "slowlog" and e["name"] == "slow_query"
        ]
        assert len(restored) == 1
        payload = restored[0]["payload"]
        assert payload["query"] == "IndexScan(orders)"
        assert payload["drift"] == 4.76
        assert payload["pairs_pruned"] == 88
        assert payload["elapsed_ms"] == pytest.approx(50.0)
