"""Span nesting, timing, formatting, and the disabled no-op tracer."""

import pytest

from repro.obs import trace
from repro.obs.trace import NOOP, NoOpTracer, Span, Tracer


class FakeClock:
    """A deterministic clock: each reading is one second after the last."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


@pytest.fixture(autouse=True)
def restore_global_tracer():
    """Leave the process-global tracer exactly as this test found it."""
    previous = trace.CURRENT
    yield
    trace.set_tracer(previous)


class TestSpanRecording:
    def test_single_span_times_with_injected_clock(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work") as span_obj:
            pass
        # Enter reads the clock once (t=1), exit once more (t=2).
        assert span_obj.elapsed == 1.0
        assert tracer.roots == [span_obj]

    def test_spans_nest_into_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                with tracer.span("leaf"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        # The outer span's wall time covers all inner readings.
        assert outer.elapsed > outer.children[0].elapsed

    def test_sibling_roots_stay_separate(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]
        assert all(not r.children for r in tracer.roots)

    def test_span_closes_on_exception(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert tracer.roots[0].elapsed is not None
        assert tracer._stack == []

    def test_tags_and_annotate(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("join", left=3) as span_obj:
            span_obj.annotate(rows_out=9)
        assert tracer.roots[0].tags == {"left": 3, "rows_out": 9}

    def test_walk_find_and_spans(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.spans()] == ["a", "b", "b"]
        assert len(tracer.find("b")) == 2
        assert tracer.find("missing") == []

    def test_format_renders_indented_tree_with_tags(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", n=2):
            with tracer.span("inner"):
                pass
        text = tracer.roots[0].format()
        lines = text.splitlines()
        assert lines[0].startswith("outer [")
        assert lines[0].endswith("n=2")
        assert lines[1].startswith("  inner [")
        assert "ms]" in lines[0]

    def test_open_span_formats_as_open(self):
        span_obj = Span("pending")
        assert "[open]" in span_obj.format()

    def test_clear_drops_recorded_roots(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots == []
        assert tracer.spans() == []


class TestNoOpTracer:
    def test_disabled_flag_and_no_recording(self):
        assert NOOP.enabled is False
        with NOOP.span("anything", k=1) as span_obj:
            span_obj.annotate(more=2)
        assert NOOP.spans() == []
        assert NOOP.find("anything") == []
        assert list(NOOP.roots) == []

    def test_span_is_the_shared_singleton(self):
        # The disabled path allocates nothing per call.
        assert NOOP.span("a") is NOOP.span("b")

    def test_clear_is_harmless(self):
        NOOP.clear()


class TestGlobalSwitch:
    def test_default_is_disabled(self):
        trace.set_tracer(None)
        assert trace.CURRENT is NOOP
        assert not trace.get_tracer().enabled

    def test_enable_installs_recording_tracer(self):
        trace.disable()
        tracer = trace.enable()
        assert isinstance(tracer, Tracer)
        assert trace.CURRENT is tracer
        assert trace.get_tracer().enabled

    def test_enable_twice_keeps_recorded_spans(self):
        trace.disable()
        tracer = trace.enable()
        with trace.span("kept"):
            pass
        assert trace.enable() is tracer
        assert len(tracer.find("kept")) == 1

    def test_disable_restores_noop(self):
        trace.enable()
        trace.disable()
        assert trace.CURRENT is NOOP
        assert isinstance(trace.CURRENT, NoOpTracer)

    def test_module_level_span_follows_current(self):
        tracer = trace.enable()
        with trace.span("global.op", n=1):
            pass
        assert len(tracer.find("global.op")) == 1
        trace.disable()
        with trace.span("global.op"):
            pass
        assert len(tracer.find("global.op")) == 1  # unchanged


class TestSpanToDict:
    def test_serializes_the_subtree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer", rows=3) as outer:
            with tracer.span("inner"):
                pass
        document = outer.to_dict()
        assert document["name"] == "outer"
        assert document["seq"] == outer.seq
        assert document["started"] == 1.0
        assert document["elapsed"] == outer.elapsed
        assert document["tags"] == {"rows": 3}
        assert [c["name"] for c in document["children"]] == ["inner"]

    def test_non_scalar_tags_become_strings(self):
        span_obj = Span("s", {"shape": (3, 4)})
        assert span_obj.to_dict()["tags"]["shape"] == "(3, 4)"

    def test_open_span_has_null_elapsed(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            assert outer.to_dict()["elapsed"] is None


class TestPerThreadStacks:
    def test_threads_build_separate_roots(self):
        # A client thread's span and a worker thread's span must not
        # nest into each other even though they share one tracer (the
        # in-process ServerThread embedding).
        import threading

        tracer = Tracer()
        ready = threading.Event()
        release = threading.Event()

        def worker():
            with tracer.span("worker.op"):
                ready.set()
                release.wait(timeout=5.0)

        thread = threading.Thread(target=worker)
        with tracer.span("main.op"):
            thread.start()
            ready.wait(timeout=5.0)
            release.set()
            thread.join(timeout=5.0)
        names = {root.name for root in tracer.roots}
        assert names == {"main.op", "worker.op"}
        for root in tracer.roots:
            assert root.children == []


class TestRequestContext:
    def test_default_is_none(self):
        assert trace.current_request_id() is None

    def test_set_returns_previous_for_restore(self):
        assert trace.set_request_id("r1") is None
        assert trace.current_request_id() == "r1"
        assert trace.set_request_id("r2") == "r1"
        trace.set_request_id(None)
        assert trace.current_request_id() is None

    def test_context_is_per_thread(self):
        import threading

        trace.set_request_id("outer")
        seen = {}

        def probe():
            seen["inner"] = trace.current_request_id()

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join(timeout=5.0)
        trace.set_request_id(None)
        assert seen["inner"] is None
