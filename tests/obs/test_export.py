"""Exporters: trace files, JSONL journals, and span-tree reconstruction."""

import json

import pytest

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import eq, explain, optimize, scan
from repro.obs import events, trace
from repro.obs.events import EventJournal
from repro.obs.export import (
    BACKEND_PID,
    CLIENT_PID,
    merged_trace_events,
    read_journal,
    read_trace,
    span_tree,
    trace_events,
    write_journal,
    write_merged_trace,
    write_trace,
)
from repro.obs.trace import Tracer


@pytest.fixture(autouse=True)
def restore_globals():
    previous_tracer = trace.CURRENT
    previous_journal = events.CURRENT
    yield
    trace.set_tracer(previous_tracer)
    events.set_journal(previous_journal)


def make_session():
    """A tracer + journal with known, interleaved content."""
    tracer = Tracer()
    journal = EventJournal()
    with tracer.span("outer", n=2):
        journal.publish("INFO", "test", "inside")
        with tracer.span("inner"):
            pass
    return tracer, journal


class TestTraceEvents:
    def test_spans_become_complete_events(self):
        tracer, journal = make_session()
        span_events = [
            e for e in trace_events(tracer, journal) if e["ph"] == "X"
        ]
        assert [e["name"] for e in span_events] == ["outer", "inner"]
        outer = span_events[0]
        assert outer["cat"] == "span"
        assert outer["args"] == {"n": 2}
        assert outer["dur"] >= span_events[1]["dur"]

    def test_journal_entries_become_instants_on_the_same_timeline(self):
        tracer, journal = make_session()
        merged = trace_events(tracer, journal)
        instants = [e for e in merged if e["ph"] == "i"]
        assert [e["name"] for e in instants] == ["test.inside"]
        assert instants[0]["args"]["severity"] == "INFO"
        # The instant falls inside the outer span on the shared clock.
        outer = next(e for e in merged if e["name"] == "outer")
        assert outer["ts"] <= instants[0]["ts"] <= outer["ts"] + outer["dur"]

    def test_events_are_sorted_by_timestamp(self):
        tracer, journal = make_session()
        stamps = [e["ts"] for e in trace_events(tracer, journal)]
        assert stamps == sorted(stamps)


class TestWriteTrace:
    def test_file_is_chrome_object_format(self, tmp_path):
        tracer, journal = make_session()
        path = str(tmp_path / "session.trace.json")
        assert write_trace(path, tracer, journal) == path
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert set(document) == {
            "traceEvents",
            "displayTimeUnit",
            "otherData",
        }
        for event in document["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert "ts" in event and "pid" in event and "tid" in event

    def test_other_data_carries_metrics_and_journal_totals(self, tmp_path):
        tracer, journal = make_session()
        path = str(tmp_path / "t.trace.json")
        write_trace(path, tracer, journal)
        other = read_trace(path)["otherData"]
        assert "counters" in other["metrics"]
        assert other["journal"] == {"retained": 1, "published": 1}

    def test_span_tree_round_trips_nesting(self, tmp_path):
        tracer, journal = make_session()
        path = str(tmp_path / "t.trace.json")
        write_trace(path, tracer, journal)
        forest = span_tree(read_trace(path))
        assert len(forest) == 1
        assert forest[0]["name"] == "outer"
        assert [c["name"] for c in forest[0]["children"]] == ["inner"]
        assert forest[0]["args"] == {"n": 2}


def make_remote_document(started=100.0):
    """An ``obs("spans")`` reply shaped like Session._obs_spans."""
    return {
        "session": "s01",
        "mono": started + 1.0,
        "requests": [
            {
                "request_id": "s01-c1",
                "spans": [
                    {
                        "name": "lang.run",
                        "seq": 9,
                        "started": started,
                        "elapsed": 0.004,
                        "tags": {"request_id": "s01-c1", "session": "s01"},
                        "children": [
                            {
                                "name": "lang.parse",
                                "seq": 10,
                                "started": started + 0.001,
                                "elapsed": 0.001,
                                "tags": {},
                                "children": [],
                            }
                        ],
                    }
                ],
            }
        ],
    }


class TestMergedTraceEvents:
    def test_lanes_are_labelled_processes(self):
        tracer, journal = make_session()
        merged = merged_trace_events(
            tracer, journal, remote=make_remote_document()
        )
        names = {
            e["args"]["name"]: (e["pid"], e["tid"])
            for e in merged
            if e["ph"] == "M"
        }
        assert names["client"][0] == CLIENT_PID
        assert names["server"][0] == BACKEND_PID
        assert names["session s01"] == (BACKEND_PID, 1)

    def test_remote_span_trees_flatten_onto_the_backend_lane(self):
        tracer, journal = make_session()
        merged = merged_trace_events(
            tracer, journal, remote=make_remote_document()
        )
        backend = [
            e for e in merged if e["ph"] == "X" and e["pid"] == BACKEND_PID
        ]
        assert [e["name"] for e in backend] == ["lang.run", "lang.parse"]
        assert backend[0]["args"]["request_id"] == "s01-c1"
        local = [
            e for e in merged if e["ph"] == "X" and e["pid"] == CLIENT_PID
        ]
        assert [e["name"] for e in local] == ["outer", "inner"]

    def test_clock_offset_shifts_remote_timestamps(self):
        tracer, journal = make_session()
        shifted = merged_trace_events(
            tracer, journal,
            remote=make_remote_document(started=100.0),
            clock_offset=40.0,
        )
        root = next(
            e for e in shifted
            if e.get("pid") == BACKEND_PID and e.get("name") == "lang.run"
        )
        assert root["ts"] == pytest.approx((100.0 - 40.0) * 1e6)

    def test_open_remote_span_exports_zero_duration(self):
        document = make_remote_document()
        document["requests"][0]["spans"][0]["elapsed"] = None
        merged = merged_trace_events(
            Tracer(), EventJournal(), remote=document
        )
        root = next(e for e in merged if e.get("name") == "lang.run")
        assert root["dur"] == 0.0

    def test_no_remote_document_means_client_lane_only(self):
        tracer, journal = make_session()
        merged = merged_trace_events(tracer, journal, remote=None)
        assert all(
            e["pid"] == CLIENT_PID for e in merged if e["ph"] != "M"
        )
        metadata = [e for e in merged if e["ph"] == "M"]
        assert [e["args"]["name"] for e in metadata] == ["client"]


class TestWriteMergedTrace:
    def test_returns_the_document_it_wrote(self, tmp_path):
        tracer, journal = make_session()
        path = str(tmp_path / "merged.trace.json")
        document = write_merged_trace(
            path, tracer, journal,
            remote=make_remote_document(), clock_offset=2.5,
        )
        assert document["otherData"]["clock_offset_seconds"] == 2.5
        assert read_trace(path)["traceEvents"] == document["traceEvents"]


class TestJournalRoundTrip:
    def test_write_and_read_jsonl(self, tmp_path):
        journal = EventJournal()
        journal.publish("INFO", "test", "first", n=1)
        journal.publish("WARN", "store", "second")
        path = str(tmp_path / "journal.jsonl")
        write_journal(path, journal)
        rows = read_journal(path)
        assert [r["name"] for r in rows] == ["first", "second"]
        assert rows[0]["payload"] == {"n": 1}
        assert rows[1]["severity"] == "WARN"

    def test_defaults_use_the_global_journal(self, tmp_path):
        journal = events.enable()
        journal.clear()
        journal.publish("INFO", "test", "global")
        path = str(tmp_path / "g.jsonl")
        write_journal(path)
        assert [r["name"] for r in read_journal(path)] == ["global"]


class TestExportedPlanTreeMatchesExplain:
    def test_traced_execution_exports_the_operator_tree(self, tmp_path):
        """The acceptance criterion: the trace file's span tree has the
        same operator structure as EXPLAIN for the same query."""
        catalog = Catalog(
            {
                "emp": FlatRelation(
                    ("Emp", "Dept", "Salary"),
                    [(i, i % 3, 40 + i % 5) for i in range(30)],
                ),
                "dept": FlatRelation(
                    ("Dept", "City"), [(d, "c%d" % d) for d in range(3)]
                ),
            }
        )
        plan = optimize(
            scan("emp")
            .join(scan("dept"))
            .where(eq("Salary", 42))
            .project(["Emp", "City"]),
            catalog,
        )
        tracer = Tracer()
        trace.set_tracer(tracer)
        journal = EventJournal()
        events.set_journal(journal)
        plan.execute(catalog)
        path = str(tmp_path / "plan.trace.json")
        write_trace(path, tracer, journal)

        def shape(node):
            return (node["name"], [shape(c) for c in node["children"]])

        def plan_shape(p):
            return (
                "plan." + type(p).__name__.lower(),
                [plan_shape(c) for c in p.children()],
            )

        forest = span_tree(read_trace(path))
        plan_roots = [n for n in forest if n["name"].startswith("plan.")]
        assert len(plan_roots) == 1
        assert shape(plan_roots[0]) == plan_shape(plan)
        # And the textual EXPLAIN mentions every operator in the tree.
        rendered = explain(plan)
        flat_names = []

        def walk(node):
            flat_names.append(node["name"])
            for child in node["children"]:
                walk(child)

        walk(plan_roots[0])
        for name in flat_names:
            assert name[len("plan."):] in rendered.lower()
