"""The execution profiler: per-operator attribution and the global switch."""

import pytest

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import analyze, eq, optimize, scan
from repro.core.relation import GeneralizedRelation, join_with_fastpath
from repro.obs import profile
from repro.obs.profile import NOOP, NoOpProfiler, OpProfile, Profiler


@pytest.fixture(autouse=True)
def restore_global_profiler():
    previous = profile.CURRENT
    yield
    profile.set_profiler(previous)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.5
        return self.now


def star_catalog():
    return Catalog(
        {
            "emp": FlatRelation(
                ("Emp", "Dept", "Salary"),
                [(i, i % 4, 40 + i % 5) for i in range(40)],
            ),
            "dept": FlatRelation(
                ("Dept", "City"), [(d, "c%d" % d) for d in range(4)]
            ),
        }
    )


class TestRecording:
    def test_record_accumulates_per_label(self):
        profiler = Profiler()
        profiler.record("plan.join", 0.25, rows_out=10, pairs_tried=4,
                        pairs_pruned=6)
        profiler.record("plan.join", 0.15, rows_out=5, pairs_tried=1,
                        pairs_pruned=9)
        profiler.record("plan.scan", 0.05, rows_out=100)
        join = next(op for op in profiler.ops() if op.label == "plan.join")
        assert join.calls == 2
        assert join.seconds == 0.4
        assert join.rows_out == 15
        assert join.pairs_tried == 5
        assert join.pairs_pruned == 15

    def test_ops_sorted_by_self_time_then_label(self):
        profiler = Profiler()
        profiler.record("b", 0.1)
        profiler.record("a", 0.1)
        profiler.record("c", 0.9)
        assert [op.label for op in profiler.ops()] == ["c", "a", "b"]

    def test_pruning_ratio(self):
        op = OpProfile("x")
        assert op.pruning_ratio == 0.0
        op.pairs_tried = 1
        op.pairs_pruned = 3
        assert op.pruning_ratio == 0.75

    def test_snapshot_and_clear(self):
        profiler = Profiler()
        profiler.record("op", 0.1, rows_out=2)
        snap = profiler.snapshot()
        assert snap[0]["label"] == "op"
        assert snap[0]["rows_out"] == 2
        profiler.clear()
        assert profiler.ops() == []


class TestReport:
    def test_report_table_has_header_and_rows(self):
        profiler = Profiler()
        profiler.record("plan.join", 0.002, rows_out=7, pairs_tried=1,
                        pairs_pruned=3)
        text = profiler.report()
        assert "operator" in text and "self(ms)" in text
        assert "plan.join" in text
        assert "75%" in text

    def test_report_top_n_limits_rows(self):
        profiler = Profiler()
        for i in range(5):
            profiler.record("op%d" % i, float(i))
        lines = profiler.report(top=2).splitlines()
        assert len(lines) == 3  # header + 2

    def test_empty_report_points_at_the_switch(self):
        assert "no profiled operators" in Profiler().report()
        assert "profiler is off" in NoOpProfiler().report()


class TestPlanAttribution:
    def test_execute_attributes_time_rows_and_pairs_per_operator(self):
        catalog = star_catalog()
        plan = optimize(
            scan("emp")
            .join(scan("dept"))
            .where(eq("Salary", 42))
            .project(["Emp", "City"]),
            catalog,
        )
        profiler = profile.enable()
        profiler.clear()
        plan.execute(catalog)
        labels = {op.label for op in profiler.ops()}
        assert any(label.startswith("Join") or label == "Join"
                   for label in labels)
        join = next(op for op in profiler.ops()
                    if op.label.startswith("Join"))
        # The join's pair deltas were attributed to the Join node alone.
        assert join.pairs_tried + join.pairs_pruned > 0
        scans = [op for op in profiler.ops()
                 if op.label.startswith(("Scan", "IndexScan"))]
        assert scans and all(op.pairs_tried == 0 for op in scans)
        assert all(op.calls >= 1 for op in profiler.ops())

    def test_relation_join_attributes_kernel_work(self):
        profiler = profile.enable()
        profiler.clear()
        left = GeneralizedRelation(
            [{"K": i, "A": i} for i in range(6)]
        )
        right = GeneralizedRelation(
            [{"K": i, "B": i} for i in range(6)]
        )
        left.join(right)
        op = next(o for o in profiler.ops() if o.label == "relation.join")
        assert op.calls == 1
        assert op.pairs_tried + op.pairs_pruned == 36

    def test_analyze_feeds_the_profiler_per_node(self):
        # The REPL's :explain runs through analyze(), not execute();
        # with :profile on its nodes must land in the same accumulation.
        catalog = star_catalog()
        plan = optimize(
            scan("emp").join(scan("dept")).where(eq("Salary", 42)),
            catalog,
        )
        profiler = profile.enable()
        profiler.clear()
        __, stats = analyze(plan, catalog)
        labels = {op.label for op in profiler.ops()}
        assert {n.label for n in stats.walk()} <= labels
        join = next(op for op in profiler.ops()
                    if op.label.startswith("Join"))
        assert join.pairs_tried + join.pairs_pruned > 0

    def test_flat_fastpath_join_records_relation_join(self):
        # The REPL's rjoin on 1NF operands takes the hash-join fast
        # path; its work must still show up under "relation.join".
        profiler = profile.enable()
        profiler.clear()
        left = FlatRelation(("K", "A"), [(i, i) for i in range(4)])
        right = FlatRelation(("K", "B"), [(i, i) for i in range(3)])
        joined = join_with_fastpath(
            left.to_generalized(), right.to_generalized()
        )
        op = next(o for o in profiler.ops() if o.label == "relation.join")
        assert op.calls == 1
        assert op.rows_out == len(joined) == 3
        assert op.pairs_tried == 3

    def test_disabled_profiler_records_nothing_through_execute(self):
        profile.disable()
        catalog = star_catalog()
        plan = scan("emp").where(eq("Salary", 42))
        calls = []
        original = NoOpProfiler.record
        NoOpProfiler.record = lambda self, *a, **k: calls.append(a)  # type: ignore[assignment]
        try:
            plan.execute(catalog)
        finally:
            NoOpProfiler.record = original  # type: ignore[assignment]
        assert calls == []


class TestGlobalSwitch:
    def test_default_is_disabled(self):
        profile.set_profiler(None)
        assert profile.CURRENT is NOOP
        assert not profile.get_profiler().enabled

    def test_enable_disable_round_trip_leaves_no_stale_state(self):
        profile.disable()
        first = profile.enable()
        first.record("old", 1.0)
        profile.disable()
        assert profile.CURRENT is NOOP
        second = profile.enable()
        assert second is not first
        assert second.ops() == []

    def test_module_level_report_follows_current(self):
        profiler = profile.enable()
        profiler.clear()
        profiler.record("visible", 0.001)
        assert "visible" in profile.profile_report()
        profile.disable()
        assert "profiler is off" in profile.profile_report()
