"""The event journal: ring bounding, ordering, filtering, the global switch."""

import json
import threading

import pytest

from repro.obs import events
from repro.obs.events import NOOP, Event, EventJournal, NoOpJournal
from repro.obs.metrics import REGISTRY


@pytest.fixture(autouse=True)
def restore_global_journal():
    """Leave the process-global journal exactly as this test found it."""
    previous = events.CURRENT
    yield
    events.set_journal(previous)


class TestPublish:
    def test_sequence_numbers_are_monotonic_from_zero(self):
        journal = EventJournal()
        published = [
            journal.publish("INFO", "test", "tick", i=i) for i in range(5)
        ]
        assert [e.seq for e in published] == [0, 1, 2, 3, 4]
        assert journal.total == 5

    def test_payload_and_identity_are_retained(self):
        journal = EventJournal()
        event = journal.publish("WARN", "store", "torn_record", line=42)
        assert event.severity == "WARN"
        assert event.subsystem == "store"
        assert event.name == "torn_record"
        assert event.payload == {"line": 42}

    def test_unknown_severity_is_rejected(self):
        journal = EventJournal()
        with pytest.raises(ValueError):
            journal.publish("LOUD", "test", "noise")

    def test_warn_and_error_count_into_metrics(self):
        journal = EventJournal()
        warnings = REGISTRY.counter("events.warnings").value
        errors = REGISTRY.counter("events.errors").value
        journal.publish("WARN", "test", "w")
        journal.publish("ERROR", "test", "e")
        journal.publish("INFO", "test", "i")
        assert REGISTRY.counter("events.warnings").value == warnings + 1
        assert REGISTRY.counter("events.errors").value == errors + 1

    def test_events_and_spans_share_the_monotonic_timeline(self):
        journal = EventJournal()
        first = journal.publish("INFO", "test", "a")
        second = journal.publish("INFO", "test", "b")
        assert second.mono >= first.mono


class TestRingBounding:
    def test_capacity_evicts_oldest_but_keeps_sequence(self):
        journal = EventJournal(capacity=4)
        for i in range(10):
            journal.publish("INFO", "test", "tick", i=i)
        retained = journal.events()
        assert len(retained) == 4
        assert len(journal) == 4
        # The most recent four, in publication order, original seqs.
        assert [e.seq for e in retained] == [6, 7, 8, 9]
        assert [e.payload["i"] for e in retained] == [6, 7, 8, 9]
        assert journal.total == 10

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            EventJournal(capacity=0)

    def test_clear_drops_events_but_not_sequence(self):
        journal = EventJournal()
        journal.publish("INFO", "test", "a")
        journal.clear()
        assert len(journal) == 0
        assert journal.publish("INFO", "test", "b").seq == 1


class TestFiltering:
    def _loaded(self):
        journal = EventJournal()
        journal.publish("DEBUG", "trace", "span")
        journal.publish("INFO", "store", "replay")
        journal.publish("WARN", "store", "torn_record")
        journal.publish("ERROR", "heap", "corrupt")
        return journal

    def test_severity_is_a_minimum(self):
        journal = self._loaded()
        names = [e.name for e in journal.events(severity="WARN")]
        assert names == ["torn_record", "corrupt"]

    def test_subsystem_filters_exactly(self):
        journal = self._loaded()
        names = [e.name for e in journal.events(subsystem="store")]
        assert names == ["replay", "torn_record"]

    def test_n_keeps_the_most_recent_after_filtering(self):
        journal = self._loaded()
        assert [e.name for e in journal.events(2)] == [
            "torn_record",
            "corrupt",
        ]
        assert [
            e.name for e in journal.events(1, subsystem="store")
        ] == ["torn_record"]


class TestConcurrency:
    def test_concurrent_publishes_lose_nothing(self):
        journal = EventJournal(capacity=100_000)
        per_thread = 2_000

        def hammer(tid):
            for i in range(per_thread):
                journal.publish("INFO", "test", "tick", tid=tid, i=i)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert journal.total == 8 * per_thread
        # Every sequence number was assigned exactly once.
        seqs = [e.seq for e in journal.events()]
        assert sorted(seqs) == list(range(8 * per_thread))


class TestSerialization:
    def test_to_dict_is_json_compatible_with_coerced_payload(self):
        journal = EventJournal()

        class Opaque:
            def __repr__(self):
                return "<opaque>"

        event = journal.publish(
            "INFO", "test", "mixed", n=1, x=1.5, ok=True, none=None,
            obj=Opaque(),
        )
        document = event.to_dict()
        assert json.loads(json.dumps(document)) == document
        assert document["payload"]["obj"] == "<opaque>"
        assert document["payload"]["n"] == 1

    def test_format_is_one_line_with_sorted_payload(self):
        event = Event(7, 0.0, 0.0, "WARN", "store", "torn_record",
                      {"line": 3, "a": 1})
        line = event.format()
        assert line.startswith("#7")
        assert "WARN" in line and "store" in line and "torn_record" in line
        assert line.index("a=1") < line.index("line=3")


class TestGlobalSwitch:
    def test_default_is_disabled(self):
        events.set_journal(None)
        assert events.CURRENT is NOOP
        assert not events.get_journal().enabled

    def test_noop_accepts_and_drops_everything(self):
        assert NOOP.publish("WARN", "x", "y", k=1) is None
        assert NOOP.events() == []
        assert len(NOOP) == 0
        NOOP.clear()

    def test_enable_installs_recording_journal(self):
        events.disable()
        journal = events.enable()
        assert isinstance(journal, EventJournal)
        assert events.CURRENT is journal
        assert events.publish("INFO", "test", "hello").seq == 0

    def test_enable_twice_keeps_retained_events(self):
        events.disable()
        journal = events.enable()
        journal.publish("INFO", "test", "kept")
        assert events.enable() is journal
        assert [e.name for e in journal.events()] == ["kept"]

    def test_disable_restores_the_noop_singleton(self):
        events.enable()
        events.disable()
        assert events.CURRENT is NOOP
        assert isinstance(events.CURRENT, NoOpJournal)

    def test_enable_disable_round_trip_leaves_no_stale_state(self):
        events.disable()
        first = events.enable()
        first.publish("INFO", "test", "old")
        events.disable()
        second = events.enable()
        # A fresh journal after a full round trip: no leaked events.
        assert second is not first
        assert second.events() == []
        assert second.total == 0


class TestDisabledPathCost:
    def test_guarded_call_sites_never_build_payloads_when_off(self):
        """The `if CURRENT.enabled:` guard must keep publish un-called."""
        events.disable()
        calls = []
        original = NoOpJournal.publish
        NoOpJournal.publish = lambda self, *a, **k: calls.append(a)  # type: ignore[assignment]
        try:
            from repro.core.flat import FlatRelation
            from repro.core.relation import join_with_fastpath

            left = FlatRelation(("A", "B"), [(1, 2)]).to_generalized()
            right = FlatRelation(("B", "C"), [(2, 3)]).to_generalized()
            join_with_fastpath(left, right)
        finally:
            NoOpJournal.publish = original  # type: ignore[assignment]
        assert calls == []
