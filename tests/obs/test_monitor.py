"""Windowed rollups, health probes, and the OpenMetrics exposition."""

import pytest

from repro.obs import events, monitor
from repro.obs.metrics import REGISTRY, MetricsRegistry, reset_metrics
from repro.obs.monitor import (
    DEGRADED,
    FAILING,
    OK,
    AdaptiveHitRateProbe,
    HeapCommitLagProbe,
    JournalDropProbe,
    StatsStalenessProbe,
    StoreIntegrityProbe,
    TimeSeriesRegistry,
    format_health,
    health_report,
    overall_verdict,
    parse_openmetrics,
    render_openmetrics,
    write_metrics_snapshot,
)


class FakeClock:
    """A manually-advanced monotonic clock for deterministic windows."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture(autouse=True)
def restore_globals():
    previous_monitor = monitor.CURRENT
    previous_journal = events.CURRENT
    yield
    monitor.set_monitor(previous_monitor)
    events.set_journal(previous_journal)


class TestTimeSeriesRegistry:
    def test_first_window_holds_deltas_since_enable(self, registry, clock):
        registry.counter("c").inc(100)  # before the monitor exists
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        registry.counter("c").inc(7)
        clock.advance(1.0)
        window = mon.tick()
        assert window.counters["c"] == 7
        assert window.seconds == 1.0

    def test_counter_deltas_per_window(self, registry, clock):
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        for delta in (3, 5, 2):
            registry.counter("c").inc(delta)
            clock.advance(1.0)
            mon.tick()
        deltas = [w.counters["c"] for w in mon.windows()]
        assert deltas == [3, 5, 2]
        assert mon.delta("c") == 10

    def test_rate_over_horizon(self, registry, clock):
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        for __ in range(4):
            registry.counter("c").inc(10)
            clock.advance(2.0)
            mon.tick()
        assert mon.rate("c") == pytest.approx(5.0)
        # A 4s horizon covers only the last two 2s windows.
        assert mon.rate("c", horizon=4.0) == pytest.approx(5.0)
        assert mon.delta("c", horizon=4.0) == 20

    def test_gauge_last_value_wins(self, registry, clock):
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        registry.gauge("g").set(1.0)
        clock.advance(1.0)
        mon.tick()
        registry.gauge("g").set(9.0)
        clock.advance(1.0)
        mon.tick()
        assert mon.gauge("g") == 9.0

    def test_histogram_digests_carry_window_deltas_and_quantiles(
        self, registry, clock
    ):
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        for value in (0.1, 0.2, 0.3):
            registry.histogram("h").observe(value)
        clock.advance(1.0)
        first = mon.tick()
        assert first.histograms["h"]["count"] == 3
        assert first.histograms["h"]["sum"] == pytest.approx(0.6)
        registry.histogram("h").observe(0.4)
        clock.advance(1.0)
        second = mon.tick()
        assert second.histograms["h"]["count"] == 1
        assert second.histograms["h"]["sum"] == pytest.approx(0.4)
        assert second.histograms["h"]["p99"] == pytest.approx(
            registry.histogram("h").quantile(0.99)
        )

    def test_quantile_is_count_weighted_over_windows(self, registry, clock):
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        registry.histogram("h").observe(1.0)
        clock.advance(1.0)
        mon.tick()
        for __ in range(3):
            registry.histogram("h").observe(2.0)
        clock.advance(1.0)
        mon.tick()
        # Window 1: one sample, p50=1.0.  Window 2: p50 over the ring
        # (1,2,2,2) = 2.0 with count 3.  Weighted: (1*1 + 2*3) / 4.
        assert mon.quantile("h", 0.5) == pytest.approx((1.0 + 6.0) / 4.0)

    def test_quantile_rejects_unkept_digests(self, registry, clock):
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        with pytest.raises(ValueError):
            mon.quantile("h", 0.42)

    def test_ring_is_bounded(self, registry, clock):
        mon = TimeSeriesRegistry(registry=registry, capacity=3, clock=clock)
        for i in range(10):
            clock.advance(1.0)
            mon.tick()
        assert len(mon) == 3
        assert mon.ticks == 10
        assert [w.index for w in mon.windows()] == [7, 8, 9]

    def test_windows_survive_registry_reset(self, registry, clock):
        """``reset_metrics`` mid-flight must not corrupt history: old
        windows keep their deltas and the reset window restarts from
        the post-reset baseline instead of going negative."""
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        registry.counter("c").inc(50)
        registry.histogram("h").observe(0.5)
        clock.advance(1.0)
        mon.tick()
        registry.reset()
        registry.counter("c").inc(4)
        registry.histogram("h").observe(0.25)
        clock.advance(1.0)
        window = mon.tick()
        history = mon.windows()
        assert history[0].counters["c"] == 50
        assert window.counters["c"] == 4
        assert window.histograms["h"]["count"] == 1
        assert window.histograms["h"]["sum"] == pytest.approx(0.25)
        assert mon.delta("c") == 54

    def test_global_reset_metrics_with_global_monitor(self, clock):
        """The acceptance-path variant: the process-global monitor over
        the process-global registry survives ``reset_metrics()``."""
        mon = monitor.enable(clock=clock)
        REGISTRY.counter("monitor.test.survives").inc(3)
        clock.advance(1.0)
        monitor.tick()
        reset_metrics()
        clock.advance(1.0)
        monitor.tick()
        assert mon.delta("monitor.test.survives") == 3
        monitor.disable()

    def test_format_renders_rates_and_gauges(self, registry, clock):
        mon = TimeSeriesRegistry(registry=registry, clock=clock)
        registry.counter("c").inc(10)
        registry.gauge("g").set(2.5)
        registry.histogram("q.seconds").observe(0.002)
        clock.advance(2.0)
        mon.tick()
        text = mon.format()
        assert "c" in text and "5.0/s" in text
        assert "g" in text and "2.5" in text
        assert "q.seconds" in text

    def test_noop_monitor_is_inert(self):
        monitor.disable()
        assert monitor.tick() is None
        assert monitor.CURRENT.windows() == []
        assert monitor.CURRENT.rate("c") == 0.0
        assert "off" in monitor.CURRENT.format()

    def test_enable_is_idempotent(self, clock):
        first = monitor.enable(clock=clock)
        clock.advance(1.0)
        monitor.tick()
        second = monitor.enable()
        assert second is first
        assert len(second) == 1
        monitor.disable()


class TestHealthProbes:
    def test_store_integrity_verdict_ladder(self, registry):
        probe = StoreIntegrityProbe()
        journal = events.NoOpJournal()
        assert probe.check(registry, journal).verdict == OK
        registry.counter("store.torn_records").inc()
        assert probe.check(registry, journal).verdict == DEGRADED
        registry.counter("store.checksum_failures").inc()
        assert probe.check(registry, journal).verdict == FAILING

    def test_heap_commit_lag_thresholds(self, registry):
        probe = HeapCommitLagProbe(
            degraded_seconds=0.1, failing_seconds=1.0
        )
        journal = events.NoOpJournal()
        assert probe.check(registry, journal).verdict == OK  # no commits
        for __ in range(20):
            registry.histogram("heap.commit.seconds").observe(0.5)
        assert probe.check(registry, journal).verdict == DEGRADED
        for __ in range(20):
            registry.histogram("heap.commit.seconds").observe(2.0)
        assert probe.check(registry, journal).verdict == FAILING

    def test_journal_drop_probe(self, registry):
        probe = JournalDropProbe(degraded_fraction=0.1)
        assert probe.check(registry, events.NoOpJournal()).verdict == OK
        journal = events.EventJournal(capacity=4)
        for i in range(4):
            journal.publish("INFO", "t", "e%d" % i)
        assert probe.check(registry, journal).verdict == OK
        for i in range(16):
            journal.publish("INFO", "t", "x%d" % i)
        result = probe.check(registry, journal)
        assert result.verdict == DEGRADED
        assert "evicted" in result.detail

    def test_adaptive_hit_rate_probe(self, registry):
        probe = AdaptiveHitRateProbe(min_lookups=10, degraded_rate=0.5)
        journal = events.NoOpJournal()
        assert probe.check(registry, journal).verdict == OK  # warming up
        registry.counter("stats.adaptive.hits").inc(1)
        registry.counter("stats.adaptive.misses").inc(9)
        assert probe.check(registry, journal).verdict == DEGRADED
        registry.counter("stats.adaptive.hits").inc(90)
        assert probe.check(registry, journal).verdict == OK

    def test_stats_staleness_gauge_fallback(self, registry):
        probe = StatsStalenessProbe(degraded_drift=4.0)
        journal = events.NoOpJournal()
        assert probe.check(registry, journal).verdict == OK
        registry.gauge("query.estimate.max_drift").set(7.5)
        result = probe.check(registry, journal)
        assert result.verdict == DEGRADED
        assert "7.50x" in result.detail

    def test_stats_staleness_with_catalog(self, registry):
        from repro.core.flat import FlatRelation
        from repro.core.index import Catalog

        catalog = Catalog(
            {"r": FlatRelation(("A",), [(1,), (2,)])}
        )
        catalog.analyze("r")
        probe = StatsStalenessProbe(catalog=catalog)
        journal = events.NoOpJournal()
        assert probe.check(registry, journal).verdict == OK
        catalog.bind("r", FlatRelation(("A",), [(3,)]))  # stats go stale
        result = probe.check(registry, journal)
        assert result.verdict == DEGRADED
        assert "r" in result.detail

    def test_server_sessions_silent_without_a_server(self, registry):
        from repro.obs.monitor import ServerSessionsProbe

        probe = ServerSessionsProbe()
        result = probe.check(registry, events.NoOpJournal())
        assert result.verdict == OK
        assert result.detail == "no server running"

    def test_server_sessions_reports_pressure(self, registry):
        from repro.obs.monitor import ServerSessionsProbe

        probe = ServerSessionsProbe(degraded_fraction=0.05)
        journal = events.NoOpJournal()
        registry.gauge("server.sessions.limit").set(4.0)
        registry.gauge("server.sessions.active").set(2.0)
        registry.counter("server.connections.accepted").inc(20)
        result = probe.check(registry, journal)
        assert result.verdict == OK
        assert "2 of 4 session(s) active" in result.detail
        # Two rejections in twenty-two attempts (9%) flips it.
        registry.counter("server.connections.rejected").inc(2)
        result = probe.check(registry, journal)
        assert result.verdict == DEGRADED
        assert "2 of 22 connection(s) rejected" in result.detail

    def test_server_sessions_degrades_at_the_limit(self, registry):
        from repro.obs.monitor import ServerSessionsProbe

        probe = ServerSessionsProbe()
        registry.gauge("server.sessions.limit").set(2.0)
        registry.gauge("server.sessions.active").set(2.0)
        registry.counter("server.connections.accepted").inc(2)
        result = probe.check(registry, events.NoOpJournal())
        assert result.verdict == DEGRADED
        assert result.detail.startswith("at connection limit")

    def test_server_sessions_in_default_probe_set(self):
        from repro.obs.monitor import ServerSessionsProbe, default_probes

        probes = default_probes()
        assert any(isinstance(p, ServerSessionsProbe) for p in probes)

    def test_txn_conflict_probe_silent_without_transactions(self, registry):
        from repro.obs.monitor import TxnConflictProbe

        probe = TxnConflictProbe()
        result = probe.check(registry, events.NoOpJournal())
        assert result.verdict == OK
        assert result.detail == "no transactions committed"

    def test_txn_conflict_probe_rates(self, registry):
        from repro.obs.monitor import TxnConflictProbe

        probe = TxnConflictProbe(min_attempts=10, degraded_rate=0.25)
        journal = events.NoOpJournal()
        # Under min_attempts, even an ugly rate stays ok (warming up).
        registry.counter("txn.commit").inc(1)
        registry.counter("txn.conflict").inc(1)
        assert probe.check(registry, journal).verdict == OK
        # 6 conflicts in 20 attempts (30%) degrades.
        registry.counter("txn.commit").inc(13)
        registry.counter("txn.conflict").inc(5)
        result = probe.check(registry, journal)
        assert result.verdict == DEGRADED
        assert "6 conflict(s) in 20 commit attempt(s)" in result.detail
        # A healthy commit stream pulls the rate back under the bar.
        registry.counter("txn.commit").inc(80)
        assert probe.check(registry, journal).verdict == OK

    def test_txn_conflict_probe_in_default_probe_set(self):
        from repro.obs.monitor import TxnConflictProbe, default_probes

        probes = default_probes()
        assert any(isinstance(p, TxnConflictProbe) for p in probes)

    def test_health_report_publishes_warns_for_non_ok(self, registry):
        journal = events.EventJournal(capacity=64)
        registry.counter("store.checksum_failures").inc()
        results = health_report(
            probes=[StoreIntegrityProbe()],
            registry=registry,
            journal=journal,
        )
        assert overall_verdict(results) == FAILING
        warns = journal.events(subsystem="health")
        assert len(warns) == 1
        assert warns[0].severity == "WARN"
        assert warns[0].payload["verdict"] == FAILING

    def test_ok_results_are_not_journaled(self, registry):
        journal = events.EventJournal(capacity=64)
        health_report(
            probes=[StoreIntegrityProbe()],
            registry=registry,
            journal=journal,
        )
        assert journal.events(subsystem="health") == []

    def test_probe_exception_becomes_failing_verdict(self, registry):
        class Broken(StoreIntegrityProbe):
            name = "broken"

            def check(self, registry, journal):
                raise RuntimeError("boom")

        results = health_report(
            probes=[Broken()],
            registry=registry,
            journal=events.NoOpJournal(),
        )
        assert results[0].verdict == FAILING
        assert "boom" in results[0].detail

    def test_format_health_leads_with_overall_verdict(self, registry):
        results = health_report(
            probes=[StoreIntegrityProbe()],
            registry=registry,
            journal=events.NoOpJournal(),
        )
        text = format_health(results)
        assert text.splitlines()[0] == "health: ok"
        assert "store.integrity" in text


class TestOpenMetrics:
    def test_round_trips_every_registered_metric(self, registry):
        registry.counter("store.appends").inc(42)
        registry.counter("lang.runs").inc(7)
        registry.gauge("stats.adaptive.keys").set(3.5)
        for value in (0.1, 0.2, 0.9):
            registry.histogram("heap.commit.seconds").observe(value)
        parsed = parse_openmetrics(render_openmetrics(registry))
        assert parsed["eof"]
        assert parsed["counters"]["store_appends"] == 42
        assert parsed["counters"]["lang_runs"] == 7
        assert parsed["gauges"]["stats_adaptive_keys"] == 3.5
        summary = parsed["summaries"]["heap_commit_seconds"]
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(1.2)
        hist = registry.histogram("heap.commit.seconds")
        for q in (0.5, 0.95, 0.99):
            assert summary["quantiles"][q] == pytest.approx(hist.quantile(q))
        # Nothing registered was dropped on the way out.
        assert len(parsed["counters"]) == len(registry.counters())
        assert len(parsed["gauges"]) == len(registry.gauges())
        assert len(parsed["summaries"]) == len(registry.histograms())

    def test_exposition_is_eof_terminated(self, registry):
        text = render_openmetrics(registry)
        assert text.endswith("# EOF\n")

    def test_names_are_sanitized(self, registry):
        registry.counter("a.b-c/d").inc()
        parsed = parse_openmetrics(render_openmetrics(registry))
        assert parsed["counters"]["a_b_c_d"] == 1

    def test_write_metrics_snapshot(self, registry, tmp_path):
        registry.counter("c").inc(5)
        path = write_metrics_snapshot(
            str(tmp_path / "snap.openmetrics"), registry
        )
        with open(path, "r", encoding="utf-8") as handle:
            parsed = parse_openmetrics(handle.read())
        assert parsed["counters"]["c"] == 5
        assert parsed["eof"]

    def test_global_registry_round_trip(self):
        """The acceptance check: every metric in the process-global
        registry survives render → parse."""
        REGISTRY.counter("monitor.roundtrip.probe").inc(2)
        parsed = parse_openmetrics(render_openmetrics())
        assert len(parsed["counters"]) == len(REGISTRY.counters())
        assert len(parsed["gauges"]) == len(REGISTRY.gauges())
        assert len(parsed["summaries"]) == len(REGISTRY.histograms())
        for name, value in REGISTRY.counters().items():
            sanitized = name.replace(".", "_").replace("-", "_")
            assert parsed["counters"][sanitized] == value


class TestRequestTracingProbe:
    def test_quiet_process_is_ok(self, registry):
        from repro.obs.monitor import RequestTracingProbe

        probe = RequestTracingProbe()
        result = probe.check(registry, events.NoOpJournal())
        assert result.verdict == OK
        assert "no traced requests" in result.detail

    def test_partial_tracing_is_ok(self, registry):
        from repro.obs.monitor import RequestTracingProbe

        probe = RequestTracingProbe(min_requests=10)
        registry.counter("session.requests").inc(100)
        registry.counter("session.requests.traced").inc(5)
        result = probe.check(registry, events.NoOpJournal())
        assert result.verdict == OK
        assert "5 of 100" in result.detail

    def test_tracing_left_on_degrades(self, registry):
        from repro.obs.monitor import RequestTracingProbe

        probe = RequestTracingProbe(
            min_requests=10, degraded_fraction=0.9
        )
        registry.counter("session.requests").inc(50)
        registry.counter("session.requests.traced").inc(50)
        result = probe.check(registry, events.NoOpJournal())
        assert result.verdict == DEGRADED
        assert "tracing left on" in result.detail

    def test_warmup_volume_does_not_degrade(self, registry):
        from repro.obs.monitor import RequestTracingProbe

        probe = RequestTracingProbe(min_requests=100)
        registry.counter("session.requests").inc(3)
        registry.counter("session.requests.traced").inc(3)
        result = probe.check(registry, events.NoOpJournal())
        assert result.verdict == OK

    def test_in_default_probe_set(self):
        from repro.obs.monitor import RequestTracingProbe, default_probes

        assert any(
            isinstance(p, RequestTracingProbe) for p in default_probes()
        )
