"""Wide events: the one-record-per-request log behind ``:requests``."""

import json

from repro.obs import metrics
from repro.obs.wide import (
    REPORT_HEADER,
    RequestLog,
    WideEvent,
    counters_snapshot,
)


def make_event(request_id="s01-r1", **overrides):
    fields = dict(
        request_id=request_id,
        session="s01",
        mode="eval",
        query="6 * 7",
        ok=True,
        elapsed_ms=1.25,
    )
    fields.update(overrides)
    return WideEvent(**fields)


class TestCountersSnapshot:
    def test_reads_watched_counters(self):
        metrics.reset_metrics()
        metrics.REGISTRY.counter("columnar.batches").inc(3)
        metrics.REGISTRY.counter("relation.join.pairs_tried").inc(5)
        metrics.REGISTRY.counter("flat.join.pairs_tried").inc(2)
        snapshot = counters_snapshot()
        assert snapshot["batches"] == 3
        assert snapshot["pairs_tried"] == 7  # both variants summed
        assert snapshot["adaptive_corrections"] == 0
        metrics.reset_metrics()

    def test_snapshot_is_a_pure_read(self):
        # Probing must not register the watched names (reset keeps
        # already-registered counters around at zero, so compare sets).
        before = set(metrics.REGISTRY.snapshot()["counters"])
        counters_snapshot()
        assert set(metrics.REGISTRY.snapshot()["counters"]) == before


class TestWideEvent:
    def test_query_text_is_capped(self):
        event = make_event(query="x" * 1000)
        assert len(event.query) == 200

    def test_slow_property_follows_slow_ms(self):
        assert not make_event().slow
        assert make_event(slow_ms=120.0).slow

    def test_to_dict_flattens_counters_and_is_json_safe(self):
        event = make_event(
            counters={"batches": 2, "pairs_tried": 9},
            spans=[{"name": "lang.run", "children": []}],
        )
        record = event.to_dict()
        assert record["batches"] == 2
        assert record["pairs_tried"] == 9
        assert record["spans"][0]["name"] == "lang.run"
        json.dumps(record)  # must not raise

    def test_to_dict_can_drop_spans(self):
        event = make_event(spans=[{"name": "lang.run", "children": []}])
        assert "spans" not in event.to_dict(spans=False)

    def test_format_row_flags_failures_and_slowness(self):
        row = make_event(ok=False, error="boom", slow_ms=50.0).format()
        assert "ERR" in row
        assert "SLOW" in row
        assert "6 * 7" in row

    def test_format_renders_est_vs_act(self):
        row = make_event(est_rows=30.0, act_rows=4).format()
        assert "30/4" in row


class TestRequestLog:
    def test_ring_is_bounded_and_total_keeps_counting(self):
        log = RequestLog(capacity=3)
        for i in range(7):
            log.append(make_event("r%d" % i))
        assert len(log) == 3
        assert log.total == 7
        assert [e.request_id for e in log.last(10)] == ["r4", "r5", "r6"]

    def test_find_by_exact_request_id(self):
        log = RequestLog()
        log.append(make_event("r1"))
        target = log.append(make_event("r2"))
        assert log.find("r2") is target
        assert log.find("nope") is None

    def test_format_empty(self):
        assert RequestLog().format() == "(no requests recorded)"

    def test_format_reports_evictions(self):
        log = RequestLog(capacity=2)
        for i in range(5):
            log.append(make_event("r%d" % i))
        text = log.format()
        assert text.splitlines()[0] == REPORT_HEADER
        assert "(3 older request(s) evicted)" in text

    def test_capacity_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            RequestLog(capacity=0)
