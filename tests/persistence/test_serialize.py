"""Unit tests for self-describing serialization."""

import json

import pytest

from repro.core.orders import atom, record
from repro.errors import SerializationError
from repro.persistence.heap import PObject
from repro.persistence.serialize import (
    decode_type,
    deserialize,
    encode_type,
    serialize,
    stored_type,
)
from repro.types.dynamic import dynamic
from repro.types.kinds import (
    BOOL,
    BOTTOM,
    DYNAMIC,
    FLOAT,
    INT,
    STRING,
    TOP,
    TYPE,
    UNIT,
    Exists,
    ForAll,
    FunctionType,
    ListType,
    RecordType,
    SetType,
    TypeVar,
    VariantType,
    record_type,
)


def round_trip(value, **kwargs):
    document = serialize(value, **kwargs)
    # The document must be JSON-compatible end to end.
    return deserialize(json.loads(json.dumps(document)))


class TestScalars:
    def test_scalars(self):
        for value in (0, -7, 3.25, "hello", True, False, None):
            assert round_trip(value) == value

    def test_bool_stays_bool(self):
        assert round_trip(True) is True
        assert round_trip(1) == 1
        assert not isinstance(round_trip(1), bool)

    def test_unicode(self):
        assert round_trip("héllo ⊑ wörld") == "héllo ⊑ wörld"


class TestDomainValues:
    def test_atom(self):
        assert round_trip(atom(3)) == atom(3)

    def test_nested_record(self):
        value = record(Name="J Doe", Addr={"City": "Austin", "Zip": 78759})
        assert round_trip(value) == value

    def test_empty_record(self):
        assert round_trip(record()) == record()


class TestContainers:
    def test_list(self):
        assert round_trip([1, "a", None]) == [1, "a", None]

    def test_tuple(self):
        assert round_trip((1, 2)) == (1, 2)

    def test_set(self):
        assert round_trip({1, 2, 3}) == {1, 2, 3}

    def test_frozenset(self):
        assert round_trip(frozenset({1, 2})) == frozenset({1, 2})

    def test_dict(self):
        assert round_trip({"a": [1], "b": {"c": 2}}) == {"a": [1], "b": {"c": 2}}

    def test_dict_non_string_key_rejected(self):
        with pytest.raises(SerializationError):
            serialize({1: "x"})

    def test_unknown_object_rejected(self):
        with pytest.raises(SerializationError):
            serialize(object())


class TestDynamicsAndTypes:
    def test_dynamic_round_trip_carries_type(self):
        """Principle (2): 'While a value persists, so should its type.'"""
        d = dynamic(record(Name="X", Emp_no=1), record_type(Name=STRING))
        back = round_trip(d)
        assert back == d
        assert back.carried == record_type(Name=STRING)

    def test_type_value_round_trip(self):
        t = record_type(Name=STRING, Salary=FLOAT)
        assert round_trip(t) == t

    def test_document_records_type(self):
        document = serialize([1, 2])
        assert stored_type(document) == ListType(INT)

    def test_all_type_constructors_encode(self):
        samples = [
            INT, FLOAT, STRING, BOOL, UNIT, TOP, BOTTOM, DYNAMIC, TYPE,
            record_type(a=INT, b=ListType(STRING)),
            VariantType({"ok": INT, "err": STRING}),
            SetType(record_type(x=INT)),
            FunctionType([INT, STRING], BOOL),
            TypeVar("t"),
            ForAll("t", FunctionType([TypeVar("t")], TypeVar("t"))),
            Exists("u", TypeVar("u"), bound=record_type(Name=STRING)),
        ]
        for t in samples:
            assert decode_type(json.loads(json.dumps(encode_type(t)))) == t

    def test_decode_rejects_garbage(self):
        with pytest.raises(SerializationError):
            decode_type(["NoSuchTag"])
        with pytest.raises(SerializationError):
            decode_type("not a node")

    def test_deserialize_type_check(self):
        document = serialize([1, 2])
        assert deserialize(document, ListType(INT)) == [1, 2]
        with pytest.raises(SerializationError):
            deserialize(document, ListType(STRING))

    def test_deserialize_rejects_non_document(self):
        with pytest.raises(SerializationError):
            deserialize({"not": "a document"})


class TestObjectGraphs:
    def test_simple_object(self):
        obj = PObject("Car", {"Tag": "ABC-123", "Length": 4.5})
        back = round_trip(obj)
        assert isinstance(back, PObject)
        assert back.kind == "Car"
        assert back["Tag"] == "ABC-123"

    def test_sharing_preserved(self):
        shared = PObject("Shared", {"x": 1})
        pair = [PObject("A", {"c": shared}), PObject("B", {"c": shared})]
        back = round_trip(pair)
        assert back[0]["c"] is back[1]["c"]

    def test_cycles(self):
        a = PObject("Node", {"name": "a"})
        b = PObject("Node", {"name": "b", "next": a})
        a["next"] = b
        back = round_trip(a)
        assert back["next"]["next"] is back

    def test_self_cycle(self):
        a = PObject("Node")
        a["self"] = a
        back = round_trip(a)
        assert back["self"] is back

    def test_transient_fields_omitted(self):
        obj = PObject("Part", {"Cost": 10, "Memo": 123})
        obj.mark_transient("Memo")
        back = round_trip(obj)
        assert "Memo" not in back
        assert back.transient_fields == set()  # mark drops with the value

    def test_transient_fields_included_on_request(self):
        obj = PObject("Part", {"Cost": 10, "Memo": 123})
        obj.mark_transient("Memo")
        document = serialize(obj, include_transient=True)
        back = deserialize(document)
        assert back["Memo"] == 123
        assert back.transient_fields == {"Memo"}  # mark travels with value

    def test_object_inside_dynamic(self):
        obj = PObject("Thing", {"x": 1})
        back = round_trip([dynamic_holding(obj)])
        assert back[0].value["x"] == 1

    def test_dangling_reference_rejected(self):
        document = serialize(PObject("X"))
        document["objects"] = {}
        with pytest.raises(SerializationError):
            deserialize(document)

    def test_deep_list_of_objects(self):
        objs = [PObject("N", {"i": i}) for i in range(50)]
        back = round_trip(objs)
        assert [o["i"] for o in back] == list(range(50))


def dynamic_holding(obj):
    """A Dynamic wrapping a PObject (sealed at Top: objects are untyped)."""
    from repro.types.dynamic import Dynamic
    from repro.types.kinds import TOP

    return Dynamic(obj, TOP)
