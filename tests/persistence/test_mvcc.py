"""MVCC snapshot isolation over the intrinsic heap.

The contracts under test (TRANSACTIONS.md is the prose version):

* a transaction reads the database *as of its begin* — concurrent
  commits stay invisible until it re-pins (heap) or ends (extern);
* commits are first-committer-wins: of two transactions whose sweeps
  overlap, the second to commit aborts with a retryable
  :class:`~repro.errors.TransactionConflictError`;
* disjoint writers — different roots, different handles — both commit;
* everything is durable: versions survive close/reopen, vacuum prunes
  only below the oldest active snapshot, and commits are atomic on
  the log (the crash tests live in ``test_crash_fuzz.py``).
"""

import threading

import pytest

from repro.errors import (
    StoreCorruptError,
    TransactionConflictError,
    TransactionError,
)
from repro.persistence.heap import PObject
from repro.persistence.mvcc import (
    HeapTransaction,
    MVCCHeap,
    SessionTransaction,
    TransactionManager,
)
from repro.persistence.store import LogStore


@pytest.fixture
def heap(tmp_path):
    with MVCCHeap(str(tmp_path / "mvcc.log")) as h:
        yield h


class _FlakyStore:
    """A LogStore stand-in whose writes fail while ``fail`` is set."""

    def __init__(self):
        self.data = {}
        self.fail = False

    def get(self, key):
        return self.data.get(key)

    def put(self, key, value):
        if self.fail:
            raise OSError("disk full")
        self.data[key] = value

    def batch(self):
        return self

    def __enter__(self):
        if self.fail:
            raise OSError("disk full")
        return self

    def __exit__(self, *exc_info):
        return False


class TestHeapBasics:
    def test_commit_and_reopen(self, tmp_path):
        path = str(tmp_path / "h.log")
        with MVCCHeap(path) as heap:
            txn = heap.begin()
            txn.root("who", PObject("Person", {"name": "ada"}))
            stats = txn.commit()
            assert stats.objects_written == 1
            assert stats.roots_written == 1
            txn.abort()
        with MVCCHeap(path) as heap:
            txn = heap.begin()
            assert txn.get_root("who")["name"] == "ada"
            txn.abort()

    def test_read_only_commit_publishes_nothing(self, heap):
        txn = heap.begin()
        txn.root("x", PObject("X", {"n": 1}))
        txn.commit()
        before = heap.current_epoch
        reader = heap.begin()
        assert reader.get_root("x")["n"] == 1
        stats = reader.commit()
        assert stats.objects_written == 0
        assert heap.current_epoch == before
        reader.abort()
        txn.abort()

    def test_commit_repins_the_transaction(self, heap):
        txn = heap.begin()
        obj = txn.root("x", PObject("X", {"n": 0}))
        txn.commit()
        obj["n"] = 1
        txn.commit()  # same transaction, next epoch
        assert txn.snapshot == heap.current_epoch
        fresh = heap.begin()
        assert fresh.get_root("x")["n"] == 1
        fresh.abort()
        txn.abort()

    def test_unchanged_objects_are_not_rewritten(self, heap):
        txn = heap.begin()
        txn.root("a", PObject("X", {"n": 1}))
        txn.root("b", PObject("X", {"n": 2}))
        txn.commit()
        txn.get_root("a")["n"] = 10
        stats = txn.commit()
        assert stats.objects_written == 1
        assert stats.objects_unchanged >= 1
        txn.abort()

    def test_shared_structure_and_cycles_survive(self, tmp_path):
        path = str(tmp_path / "cyc.log")
        with MVCCHeap(path) as heap:
            with heap.begin() as txn:
                one = PObject("Node", {"label": "one", "next": None})
                two = PObject("Node", {"label": "two", "next": one})
                one["next"] = two
                txn.root("r1", one)
                txn.root("r2", two)
        with MVCCHeap(path) as heap:
            txn = heap.begin()
            r1, r2 = txn.get_root("r1"), txn.get_root("r2")
            assert r1["next"] is r2
            assert r2["next"] is r1
            txn.abort()

    def test_dropping_a_root_collects_its_subgraph(self, heap):
        txn = heap.begin()
        txn.root("keep", PObject("X", {"n": 1}))
        txn.root("drop", PObject("X", {"child": PObject("Y", {})}))
        txn.commit()
        txn.root("drop", None)
        stats = txn.commit()
        assert stats.objects_collected == 2
        fresh = heap.begin()
        assert fresh.get_root("keep")["n"] == 1
        assert fresh.get_root("drop") is None
        fresh.abort()
        txn.abort()


class TestSnapshotIsolation:
    def test_reader_is_pinned_to_its_snapshot(self, heap):
        writer = heap.begin()
        writer.root("color", PObject("Paint", {"hue": "red"}))
        writer.commit()

        reader = heap.begin()
        assert reader.get_root("color")["hue"] == "red"

        writer.get_root("color")["hue"] = "blue"
        writer.commit()

        # The reader's world has not moved.
        assert reader.get_root("color")["hue"] == "red"
        # A fresh transaction sees the commit.
        fresh = heap.begin()
        assert fresh.get_root("color")["hue"] == "blue"
        fresh.abort()
        reader.abort()
        writer.abort()

    def test_uncommitted_writes_are_private(self, heap):
        writer = heap.begin()
        writer.root("x", PObject("X", {"n": 1}))
        writer.commit()
        writer.get_root("x")["n"] = 99  # not committed

        other = heap.begin()
        assert other.get_root("x")["n"] == 1
        other.abort()
        writer.abort()

    def test_abort_discards_everything(self, heap):
        txn = heap.begin()
        txn.root("x", PObject("X", {"n": 1}))
        txn.commit()
        txn.get_root("x")["n"] = 2
        txn.abort()
        assert not txn.active
        fresh = heap.begin()
        assert fresh.get_root("x")["n"] == 1
        fresh.abort()

    def test_operations_after_end_raise(self, heap):
        txn = heap.begin()
        txn.abort()
        with pytest.raises(TransactionError):
            txn.get_root("x")
        with pytest.raises(TransactionError):
            txn.commit()


class TestFirstCommitterWins:
    def test_overlapping_writers_conflict(self, heap):
        seed = heap.begin()
        seed.root("n", PObject("Counter", {"value": 0}))
        seed.commit()
        seed.abort()

        a = heap.begin()
        b = heap.begin()
        a.get_root("n")["value"] = 1
        b.get_root("n")["value"] = 2
        a.commit()
        with pytest.raises(TransactionConflictError) as exc_info:
            b.commit()
        assert exc_info.value.retryable is True
        assert exc_info.value.winner_epoch == heap.current_epoch
        assert not b.active  # the loser is aborted, not limbo

        # Retry from a fresh snapshot succeeds.
        retry = heap.begin()
        retry.get_root("n")["value"] = 2
        retry.commit()
        retry.abort()
        a.abort()

    def test_read_write_conflict(self, heap):
        """Reading an object another transaction rewrote conflicts too:
        the sweep covers the read set, not just the write set."""
        seed = heap.begin()
        seed.root("n", PObject("Counter", {"value": 0}))
        seed.root("m", PObject("Counter", {"value": 0}))
        seed.commit()
        seed.abort()

        a = heap.begin()
        b = heap.begin()
        a.get_root("n")["value"] = 1
        # b *reads* n (decides from it), writes m.
        b.get_root("m")["value"] = b.get_root("n")["value"] + 10
        a.commit()
        with pytest.raises(TransactionConflictError):
            b.commit()
        a.abort()

    def test_disjoint_roots_do_not_conflict(self, heap):
        seed = heap.begin()
        seed.root("left", PObject("X", {"n": 0}))
        seed.root("right", PObject("X", {"n": 0}))
        seed.commit()
        seed.abort()

        a = heap.begin()
        b = heap.begin()
        a.get_root("left")["n"] = 1
        b.get_root("right")["n"] = 2
        a.commit()
        b.commit()  # no overlap: both roots land
        fresh = heap.begin()
        assert fresh.get_root("left")["n"] == 1
        assert fresh.get_root("right")["n"] == 2
        fresh.abort()
        a.abort()
        b.abort()

    def test_concurrent_root_creation_preserves_both(self, tmp_path):
        """Commit merges root changes onto the newest committed table:
        a later committer with a stale snapshot must not bury roots a
        concurrent commit added."""
        path = str(tmp_path / "merge.log")
        with MVCCHeap(path) as heap:
            a = heap.begin()
            b = heap.begin()  # same (empty) snapshot as a
            a.root("a_root", PObject("X", {"n": 1}))
            b.root("b_root", PObject("X", {"n": 2}))
            a.commit()
            b.commit()  # disjoint names: no conflict, and 'a_root' survives
            a.abort()
            b.abort()
        with MVCCHeap(path) as heap:
            fresh = heap.begin()
            assert fresh.get_root("a_root")["n"] == 1
            assert fresh.get_root("b_root")["n"] == 2
            fresh.abort()

    def test_same_new_root_name_conflicts(self, heap):
        """Two transactions creating the same root name touch disjoint
        oids — the conflict is on the root name itself."""
        a = heap.begin()
        b = heap.begin()
        a.root("slot", PObject("X", {"who": "a"}))
        b.root("slot", PObject("X", {"who": "b"}))
        a.commit()
        with pytest.raises(TransactionConflictError) as exc_info:
            b.commit()
        assert "user:slot" in exc_info.value.keys
        fresh = heap.begin()
        assert fresh.get_root("slot")["who"] == "a"
        fresh.abort()
        a.abort()

    def test_lazy_root_does_not_resurrect_concurrent_rebind(self, heap):
        """A committer holding a root it never read must not re-publish
        that root's stale node over a concurrent rebind — the stale node
        points at oids the rebind tombstoned."""
        seed = heap.begin()
        seed.root("shared", PObject("X", {"gen": 0}))
        seed.root("mine", PObject("X", {"n": 0}))
        seed.commit()
        seed.abort()

        holder = heap.begin()  # 'shared' stays an unread lazy root
        rebinder = heap.begin()
        rebinder.root("shared", PObject("X", {"gen": 1}))
        rebinder.commit()  # tombstones gen-0's object
        rebinder.abort()
        holder.get_root("mine")["n"] = 5
        holder.commit()  # wins — but must not restore the stale 'shared'

        fresh = heap.begin()
        assert fresh.get_root("shared")["gen"] == 1  # no StoreCorruptError
        assert fresh.get_root("mine")["n"] == 5
        fresh.abort()
        holder.abort()

    def test_collecting_what_a_concurrent_commit_kept_conflicts(self, heap):
        """GC decisions are part of the conflict check: tombstoning an
        object a later epoch's published roots still reference would
        dangle that commit."""
        seed = heap.begin()
        seed.root("r", PObject("X", {"n": 7}))
        seed.commit()
        seed.abort()

        keeper = heap.begin()
        dropper = heap.begin()
        # keeper makes the object reachable through a second root...
        keeper.root("alias", keeper.get_root("r"))
        keeper.commit()
        keeper.abort()
        # ...while dropper, at its older snapshot, sees it reachable
        # only via 'r' and would collect it.
        del dropper.namespace()["r"]
        with pytest.raises(TransactionConflictError):
            dropper.commit()

        fresh = heap.begin()
        assert fresh.get_root("alias")["n"] == 7
        fresh.abort()

    def test_threaded_counter_increments_equal_commits(self, heap):
        """The classic lost-update check: under racing increments the
        final counter equals the number of *successful* commits."""
        seed = heap.begin()
        seed.root("n", PObject("Counter", {"value": 0}))
        seed.commit()
        seed.abort()
        committed = []
        lock = threading.Lock()

        def worker():
            for __ in range(8):
                txn = heap.begin()
                try:
                    obj = txn.get_root("n")
                    obj["value"] = obj["value"] + 1
                    txn.commit()
                except TransactionConflictError:
                    continue
                else:
                    with lock:
                        committed.append(1)
                finally:
                    if txn.active:
                        txn.abort()

        threads = [threading.Thread(target=worker) for __ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        final = heap.begin()
        assert final.get_root("n")["value"] == len(committed)
        final.abort()


class TestVacuum:
    def test_vacuum_prunes_dead_versions(self, heap):
        txn = heap.begin()
        obj = txn.root("x", PObject("X", {"n": 0}))
        txn.commit()
        for i in range(1, 6):
            obj["n"] = i
            txn.commit()
        txn.abort()
        versions_before = sum(
            1 for key in heap.store.keys() if key.startswith("ver:")
        )
        pruned = heap.vacuum()
        assert pruned["versions"] > 0
        versions_after = sum(
            1 for key in heap.store.keys() if key.startswith("ver:")
        )
        assert versions_after < versions_before
        # Reads after vacuum still work.
        fresh = heap.begin()
        assert fresh.get_root("x")["n"] == 5
        fresh.abort()

    def test_vacuum_respects_active_snapshots(self, heap):
        writer = heap.begin()
        writer.root("x", PObject("X", {"n": 0}))
        writer.commit()
        pinned = heap.begin()  # holds the old snapshot
        writer.get_root("x")["n"] = 1
        writer.commit()
        heap.vacuum()
        assert pinned.get_root("x")["n"] == 0  # still readable
        pinned.abort()
        writer.abort()


class TestContextManager:
    def test_clean_exit_commits(self, tmp_path):
        path = str(tmp_path / "cm.log")
        with MVCCHeap(path) as heap:
            with heap.begin() as txn:
                txn.root("x", PObject("X", {"n": 7}))
        with MVCCHeap(path) as heap:
            txn = heap.begin()
            assert txn.get_root("x")["n"] == 7
            txn.abort()

    def test_exception_aborts(self, heap):
        with pytest.raises(RuntimeError):
            with heap.begin() as txn:
                txn.root("x", PObject("X", {"n": 1}))
                raise RuntimeError("boom")
        fresh = heap.begin()
        assert "x" not in fresh.namespace()
        fresh.abort()


class TestTransactionManager:
    def test_autocommit_and_snapshot_reads(self):
        txns = TransactionManager(memory={})
        txns.put("greeting", {"text": "hi"})
        session = txns.begin()
        assert session.read("greeting") == {"text": "hi"}
        txns.put("greeting", {"text": "bye"})
        # The open transaction still reads its snapshot...
        assert session.read("greeting") == {"text": "hi"}
        session.abort()
        # ...and autocommit reads see the latest.
        assert txns.get("greeting") == {"text": "bye"}

    def test_own_writes_read_back(self):
        txns = TransactionManager(memory={})
        session = txns.begin()
        session.write("x", 1)
        assert session.read("x") == 1
        session.commit()
        assert txns.get("x") == 1

    def test_first_committer_wins_on_handles(self):
        txns = TransactionManager(memory={})
        txns.put("x", 0)
        a, b = txns.begin(), txns.begin()
        a.write("x", 1)
        b.write("x", 2)
        a.commit()
        with pytest.raises(TransactionConflictError) as exc_info:
            b.commit()
        assert "x" in exc_info.value.keys
        assert txns.get("x") == 1

    def test_read_write_conflict_on_handles(self):
        txns = TransactionManager(memory={})
        txns.put("source", 1)
        txns.put("sink", 0)
        a, b = txns.begin(), txns.begin()
        a.write("source", 2)
        b.write("sink", b.read("source") + 10)  # read source at snapshot
        a.commit()
        with pytest.raises(TransactionConflictError):
            b.commit()

    def test_disjoint_handles_both_commit(self):
        txns = TransactionManager(memory={})
        a, b = txns.begin(), txns.begin()
        a.write("left", 1)
        b.write("right", 2)
        a.commit()
        b.commit()
        assert txns.get("left") == 1
        assert txns.get("right") == 2

    def test_read_only_commit_never_conflicts(self):
        txns = TransactionManager(memory={})
        txns.put("x", 1)
        reader = txns.begin()
        reader.read("x")
        txns.put("x", 2)  # overlaps the read — but reader wrote nothing
        epoch, written = reader.commit()
        assert written == 0

    def test_snapshot_reader_never_sees_a_later_first_write(self):
        """A handle first versioned by a commit must seed its chain
        with the pre-commit backing value, or an older snapshot would
        read the new value as the baseline."""
        txns = TransactionManager(memory={})
        reader = txns.begin()
        writer = txns.begin()
        writer.write("fresh", 1)
        writer.commit()
        assert reader.read("fresh") is None
        reader.abort()

    def test_failed_backing_write_is_a_clean_abort(self):
        """A commit the store rejects publishes nothing: no epoch is
        advertised, the transaction ends (it must not pin the prune
        horizon forever), and a retry works once the store recovers."""
        store = _FlakyStore()
        txns = TransactionManager(store=store)
        txns.put("x", 1)
        session = txns.begin()
        session.write("x", 2)
        store.fail = True
        with pytest.raises(OSError):
            session.commit()
        assert not session.active
        assert txns.active_transactions() == 0
        assert txns.current_epoch == 1  # the failed epoch was never minted
        assert txns.get("x") == 1
        store.fail = False
        retry = txns.begin()
        retry.write("x", 3)
        retry.commit()
        assert txns.get("x") == 3

    def test_failed_autocommit_put_leaves_no_trace(self):
        store = _FlakyStore()
        txns = TransactionManager(store=store)
        store.fail = True
        with pytest.raises(OSError):
            txns.put("x", 1)
        assert txns.current_epoch == 0
        assert txns.get("x") is None
        store.fail = False
        assert txns.put("x", 1) == 1
        assert txns.get("x") == 1

    def test_durable_backing(self, tmp_path):
        path = str(tmp_path / "tm.log")
        store = LogStore(path)
        txns = TransactionManager(store=store)
        with txns.begin() as session:
            session.write("x", {"n": 1})
        store.close()
        reopened = LogStore(path)
        assert reopened.get("extern:x") == {"n": 1}
        reopened.close()
