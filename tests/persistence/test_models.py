"""Unit tests for the three persistence models and their contrasts.

Each model's paper-described behaviour — including its *defects* — is
pinned down: all-or-nothing's indivisibility, replicating's update
anomaly and storage duplication, intrinsic's preserved sharing, commit/
abort, garbage collection, and transient fields.
"""

import pytest

from repro.core.orders import record
from repro.errors import (
    PersistenceError,
    StoreCorruptError,
    UnknownHandleError,
)
from repro.persistence.allornothing import ImagePersistence
from repro.persistence.heap import PObject, reachable
from repro.persistence.intrinsic import PersistentHeap
from repro.persistence.replicating import ReplicatingStore
from repro.types.dynamic import coerce, dynamic
from repro.types.kinds import INT, STRING, record_type


class TestHeapObjects:
    def test_field_access(self):
        obj = PObject("Car", {"Tag": "X"})
        assert obj["Tag"] == "X"
        obj["Length"] = 4.2
        assert obj["Length"] == 4.2
        assert "Length" in obj
        assert obj.get("Nope") is None

    def test_missing_field_raises(self):
        with pytest.raises(PersistenceError):
            PObject("Car")["Tag"]

    def test_delete_field(self):
        obj = PObject("Car", {"Tag": "X"})
        del obj["Tag"]
        assert "Tag" not in obj
        with pytest.raises(PersistenceError):
            del obj["Tag"]

    def test_transient_marking(self):
        obj = PObject("Part", {"Cost": 1, "Memo": 2})
        obj.mark_transient("Memo")
        assert obj.persistent_fields() == {"Cost": 1}
        obj.clear_transient("Memo")
        assert obj.persistent_fields() == {"Cost": 1, "Memo": 2}

    def test_reachable_through_containers(self):
        inner = PObject("Inner")
        outer = PObject("Outer", {"xs": [1, {"k": inner}]})
        assert set(map(id, reachable(outer))) == {id(outer), id(inner)}

    def test_reachable_skips_transient(self):
        hidden = PObject("Hidden")
        outer = PObject("Outer", {"memo": hidden})
        outer.mark_transient("memo")
        assert [id(o) for o in reachable(outer)] == [id(outer)]
        found = reachable(outer, include_transient=True)
        assert set(map(id, found)) == {id(outer), id(hidden)}

    def test_reachable_handles_cycles(self):
        a = PObject("A")
        b = PObject("B", {"a": a})
        a["b"] = b
        assert len(reachable(a)) == 2

    def test_reachable_through_dynamic(self):
        from repro.types.kinds import TOP
        from repro.types.dynamic import Dynamic

        obj = PObject("X")
        assert reachable([Dynamic(obj, TOP)]) == [obj]


class TestAllOrNothing:
    def test_save_resume(self, tmp_path):
        image = ImagePersistence(str(tmp_path / "session"))
        env = {"count": 3, "names": ["a", "b"], "rec": record(Name="X")}
        image.save_image(env)
        assert image.resume() == env

    def test_resume_is_all_or_nothing(self, tmp_path):
        """One cannot resume a *part* of the image: the volatile
        experimental structures come back with the database."""
        image = ImagePersistence(str(tmp_path / "session"))
        image.save_image({"database": [1, 2], "experiment": "volatile junk"})
        resumed = image.resume()
        assert "experiment" in resumed  # no way to separate them

    def test_no_image_raises(self, tmp_path):
        image = ImagePersistence(str(tmp_path / "none"))
        assert not image.has_image()
        with pytest.raises(StoreCorruptError):
            image.resume()

    def test_non_mapping_rejected(self, tmp_path):
        image = ImagePersistence(str(tmp_path / "session"))
        with pytest.raises(PersistenceError):
            image.save_image([1, 2])  # type: ignore[arg-type]

    def test_sharing_within_one_image(self, tmp_path):
        image = ImagePersistence(str(tmp_path / "session"))
        shared = PObject("S", {"x": 1})
        image.save_image({"a": shared, "b": shared})
        resumed = image.resume()
        assert resumed["a"] is resumed["b"]


class TestReplicating:
    EMPLOYEE_T = record_type(Name=STRING, Emp_no=INT)

    def _store(self, tmp_path):
        return ReplicatingStore(str(tmp_path / "amber.log"))

    def test_paper_extern_intern_coerce(self, tmp_path):
        """extern('DBFile', dynamic d); x = intern 'DBFile';
        d = coerce x to database."""
        store = self._store(tmp_path)
        d = record(Name="J Doe", Emp_no=1)
        store.extern("DBFile", dynamic(d))
        x = store.intern("DBFile")
        back = coerce(x, self.EMPLOYEE_T)
        assert back == d

    def test_coerce_fails_at_wrong_type(self, tmp_path):
        from repro.errors import CoercionError

        store = self._store(tmp_path)
        store.extern("DBFile", dynamic(3))
        x = store.intern("DBFile")
        with pytest.raises(CoercionError):
            coerce(x, STRING)

    def test_extern_requires_dynamic(self, tmp_path):
        with pytest.raises(PersistenceError):
            self._store(tmp_path).extern("h", 3)  # type: ignore[arg-type]

    def test_unknown_handle(self, tmp_path):
        with pytest.raises(UnknownHandleError):
            self._store(tmp_path).intern("nothing")

    def test_each_intern_is_a_fresh_copy(self, tmp_path):
        store = self._store(tmp_path)
        store.extern("h", dynamic_object(PObject("X", {"n": 1})))
        first = store.intern("h").value
        second = store.intern("h").value
        assert first is not second
        first["n"] = 99
        assert second["n"] == 1

    def test_modifications_do_not_survive_reintern(self, tmp_path):
        """The paper: 'the modifications to x will not survive the second
        intern operation.'"""
        store = self._store(tmp_path)
        store.extern("DBFile", dynamic_object(PObject("DB", {"n": 1})))
        x = store.intern("DBFile").value
        x["n"] = 2  # code that modifies x
        x2 = store.intern("DBFile").value
        assert x2["n"] == 1

    def test_update_anomaly_on_shared_substructure(self, tmp_path):
        """'If values a and b both refer to a third value c then any
        change made to c through a handle for a will not be visible from
        a handle for b.'"""
        store = self._store(tmp_path)
        c = PObject("C", {"x": 1})
        store.extern("a", dynamic_object(PObject("A", {"c": c})))
        store.extern("b", dynamic_object(PObject("B", {"c": c})))
        a = store.intern("a").value
        a["c"]["x"] = 99
        store.extern("a", dynamic_object(a))
        b = store.intern("b").value
        assert b["c"]["x"] == 1  # the anomaly, faithfully reproduced

    def test_wasted_storage_from_duplicated_copies(self, tmp_path):
        store = self._store(tmp_path)
        shared = PObject("Big", {"payload": "x" * 1000})
        store.extern("only", dynamic_object(PObject("A", {"c": shared})))
        baseline = store.storage_bytes()
        store.extern("dup", dynamic_object(PObject("B", {"c": shared})))
        assert store.storage_bytes() >= baseline + 1000  # duplicated payload

    def test_reachable_closure_travels(self, tmp_path):
        """'it carries with it everything that is reachable from that
        value.'"""
        store = self._store(tmp_path)
        leaf = PObject("Leaf", {"v": 42})
        mid = PObject("Mid", {"leaf": leaf})
        store.extern("h", dynamic_object(PObject("Root", {"mid": mid})))
        back = store.intern("h").value
        assert back["mid"]["leaf"]["v"] == 42

    def test_handles_listing_and_drop(self, tmp_path):
        store = self._store(tmp_path)
        store.extern("h1", dynamic(1))
        store.extern("h2", dynamic(2))
        assert sorted(store.handles()) == ["h1", "h2"]
        store.drop("h1")
        assert store.handles() == ["h2"]
        with pytest.raises(UnknownHandleError):
            store.drop("h1")

    def test_stored_type_of(self, tmp_path):
        store = self._store(tmp_path)
        store.extern("h", dynamic(3))
        assert store.stored_type_of("h") == INT
        assert store.stored_type_of("none") is None

    def test_survives_reopen(self, tmp_path):
        path = str(tmp_path / "amber.log")
        with ReplicatingStore(path) as store:
            store.extern("h", dynamic([1, 2, 3]))
        with ReplicatingStore(path) as store:
            assert coerce(store.intern("h"), store.stored_type_of("h")) == [1, 2, 3]


class TestIntrinsic:
    def _heap(self, tmp_path, name="heap.log"):
        return PersistentHeap(str(tmp_path / name))

    def test_binding_a_root_is_all_that_is_required(self, tmp_path):
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        heap.root("DB", PObject("DB", {"n": 7}))
        heap.commit()
        heap.close()
        again = PersistentHeap(path)
        assert again.get_root("DB")["n"] == 7

    def test_sharing_preserved_across_programs(self, tmp_path):
        """The anti-anomaly: updates through a are visible through b."""
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        c = PObject("C", {"x": 1})
        heap.root("a", PObject("A", {"c": c}))
        heap.root("b", PObject("B", {"c": c}))
        heap.commit()
        heap.close()

        second = PersistentHeap(path)
        a = second.get_root("a")
        b = second.get_root("b")
        assert a["c"] is b["c"]
        a["c"]["x"] = 99
        second.commit()
        second.close()

        third = PersistentHeap(path)
        assert third.get_root("b")["c"]["x"] == 99

    def test_divergence_before_commit(self, tmp_path):
        """'Before this instruction is called, the persistent value and
        the value being used by the program can diverge.'"""
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        obj = PObject("DB", {"n": 1})
        heap.root("DB", obj)
        heap.commit()
        obj["n"] = 2          # diverge ...
        heap.abort()          # ... and roll back
        assert heap.get_root("DB")["n"] == 1

    def test_commit_persists_divergence(self, tmp_path):
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        obj = PObject("DB", {"n": 1})
        heap.root("DB", obj)
        heap.commit()
        obj["n"] = 2
        heap.commit()
        heap.close()
        assert PersistentHeap(path).get_root("DB")["n"] == 2

    def test_delta_commit_skips_unchanged(self, tmp_path):
        heap = self._heap(tmp_path)
        objects = [PObject("N", {"i": i}) for i in range(10)]
        heap.root("all", objects)
        first = heap.commit()
        assert first.objects_written == 10
        objects[0]["i"] = 999
        second = heap.commit()
        assert second.objects_written == 1
        assert second.objects_unchanged == 9

    def test_garbage_collection_at_commit(self, tmp_path):
        """'no need physically to retain storage for values for which
        all reference is lost.'"""
        heap = self._heap(tmp_path)
        keep = PObject("Keep")
        lose = PObject("Lose")
        heap.root("all", [keep, lose])
        heap.commit()
        assert heap.stored_object_count() == 2
        heap.root("all", [keep])
        stats = heap.commit()
        assert stats.objects_collected == 1
        assert heap.stored_object_count() == 1

    def test_dropping_a_root_collects_its_graph(self, tmp_path):
        heap = self._heap(tmp_path)
        ns = heap.namespace()
        ns.bind("tree", PObject("Root", {"child": PObject("Child")}))
        heap.commit()
        del ns["tree"]
        stats = heap.commit()
        assert stats.objects_collected == 2
        assert heap.stored_object_count() == 0

    def test_multiple_namespaces(self, tmp_path):
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        shared = PObject("Dept", {"name": "Sales"})
        heap.namespace("alice").bind("dept", shared)
        heap.namespace("bob").bind("mydept", shared)
        heap.commit()
        heap.close()

        again = PersistentHeap(path)
        assert again.namespaces() == ["alice", "bob"]
        a = again.namespace("alice")["dept"]
        b = again.namespace("bob")["mydept"]
        assert a is b  # controlled sharing among namespaces

    def test_namespace_isolation(self, tmp_path):
        heap = self._heap(tmp_path)
        heap.namespace("alice").bind("x", 1)
        with pytest.raises(UnknownHandleError):
            heap.namespace("bob")["x"]

    def test_transient_fields_not_persisted(self, tmp_path):
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        part = PObject("Part", {"Cost": 10})
        part["TotalCostMemo"] = 1234
        part.mark_transient("TotalCostMemo")
        heap.root("part", part)
        heap.commit()
        heap.close()
        back = PersistentHeap(path).get_root("part")
        assert back["Cost"] == 10
        assert "TotalCostMemo" not in back
        assert back.transient_fields == set()  # marks drop with values

    def test_namespace_wrapper_sees_abort(self, tmp_path):
        heap = self._heap(tmp_path)
        ns = heap.namespace()
        ns.bind("x", 1)
        heap.commit()
        ns.bind("x", 2)
        ns.bind("new", 3)
        heap.abort()
        assert ns["x"] == 1
        assert "new" not in ns

    def test_cyclic_graph_persists(self, tmp_path):
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        a = PObject("A")
        b = PObject("B", {"a": a})
        a["b"] = b
        heap.root("cycle", a)
        heap.commit()
        heap.close()
        back = PersistentHeap(path).get_root("cycle")
        assert back["b"]["a"] is back

    def test_invalid_names_rejected(self, tmp_path):
        heap = self._heap(tmp_path)
        with pytest.raises(PersistenceError):
            heap.namespace("no:colons")
        with pytest.raises(PersistenceError):
            heap.namespace().bind("no:colons", 1)

    def test_plain_values_as_roots(self, tmp_path):
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        heap.root("rel", record(Name="X"))
        heap.root("n", 42)
        heap.commit()
        heap.close()
        again = PersistentHeap(path)
        assert again.get_root("rel") == record(Name="X")
        assert again.get_root("n") == 42


def dynamic_object(obj):
    """Seal a PObject at Top (object graphs carry no domain type)."""
    from repro.types.dynamic import Dynamic
    from repro.types.kinds import TOP

    return Dynamic(obj, TOP)
