"""Tests for synchronized extern/intern (optimistic handle versions).

The paper: concurrency over replicating persistence requires "ensuring
that the various extern and intern operations for a given handle are
properly synchronized."  These tests first reproduce the *lost update*
that unsynchronized handles allow, then show the versioned operations
refusing it.
"""

import pytest

from repro.errors import UnknownHandleError
from repro.persistence.heap import PObject
from repro.persistence.replicating import ReplicatingStore, StaleHandleError
from repro.types.dynamic import Dynamic, dynamic
from repro.types.kinds import TOP


@pytest.fixture
def store(tmp_path):
    with ReplicatingStore(str(tmp_path / "amber.log")) as s:
        yield s


def counter(n):
    return Dynamic(PObject("Counter", {"n": n}), TOP)


class TestVersions:
    def test_fresh_handle_is_version_one(self, store):
        assert store.extern("h", dynamic(1)) == 1
        assert store.version_of("h") == 1

    def test_versions_increment(self, store):
        store.extern("h", dynamic(1))
        assert store.extern("h", dynamic(2)) == 2
        assert store.version_of("h") == 2

    def test_unbound_handle_has_no_version(self, store):
        assert store.version_of("nothing") is None

    def test_intern_versioned(self, store):
        store.extern("h", dynamic(41))
        versioned = store.intern_versioned("h")
        assert versioned.version == 1
        assert versioned.value.value == 41

    def test_intern_versioned_unknown(self, store):
        with pytest.raises(UnknownHandleError):
            store.intern_versioned("nothing")

    def test_versions_survive_reopen(self, tmp_path):
        path = str(tmp_path / "v.log")
        with ReplicatingStore(path) as s:
            s.extern("h", dynamic(1))
            s.extern("h", dynamic(2))
        with ReplicatingStore(path) as s:
            assert s.version_of("h") == 2


class TestLostUpdate:
    def test_unsynchronized_handles_lose_updates(self, store):
        """The hazard, reproduced: two programs read, both increment,
        the second extern silently overwrites the first."""
        store.extern("counter", counter(0))
        alice = store.intern("counter").value
        bob = store.intern("counter").value
        alice["n"] = alice["n"] + 1
        store.extern("counter", Dynamic(alice, TOP))
        bob["n"] = bob["n"] + 1
        store.extern("counter", Dynamic(bob, TOP))  # clobbers Alice
        final = store.intern("counter").value
        assert final["n"] == 1  # one increment lost

    def test_versioned_externs_prevent_the_loss(self, store):
        store.extern("counter", counter(0))
        alice = store.intern_versioned("counter")
        bob = store.intern_versioned("counter")

        alice.value.value["n"] += 1
        store.extern_if_version("counter", alice.value, alice.version)

        bob.value.value["n"] += 1
        with pytest.raises(StaleHandleError) as excinfo:
            store.extern_if_version("counter", bob.value, bob.version)
        assert excinfo.value.handle == "counter"
        assert excinfo.value.expected == 1
        assert excinfo.value.actual == 2

        # Bob retries the transaction: re-intern, re-apply, re-extern.
        retry = store.intern_versioned("counter")
        retry.value.value["n"] += 1
        store.extern_if_version("counter", retry.value, retry.version)

        assert store.intern("counter").value["n"] == 2  # both increments

    def test_conditional_extern_on_fresh_handle(self, store):
        """Creating a handle conditionally: expected version 0."""
        store.extern_if_version("new", dynamic(1), 0)
        assert store.version_of("new") == 1
        with pytest.raises(StaleHandleError):
            store.extern_if_version("new", dynamic(2), 0)
