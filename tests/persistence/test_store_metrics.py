"""LogStore observability: append/replay counters and corruption probes.

All assertions are deltas against the process-global registry, so these
tests are insensitive to whatever other suites have already recorded.
"""

import pytest

from repro.obs import trace
from repro.obs.metrics import REGISTRY
from repro.persistence.store import LogStore


def counters(*names):
    return {name: REGISTRY.counter(name).value for name in names}


def test_open_write_reopen_reports_appends_bytes_and_replays(tmp_path):
    path = str(tmp_path / "cycle.log")
    before = counters(
        "store.appends",
        "store.bytes_written",
        "store.replays",
        "store.replayed_records",
        "store.checksum_checks",
    )

    with LogStore(path) as store:
        for i in range(10):
            store.put("k%d" % i, {"i": i})

    after_write = counters("store.appends", "store.bytes_written")
    assert after_write["store.appends"] == before["store.appends"] + 10
    assert after_write["store.bytes_written"] > before["store.bytes_written"]

    with LogStore(path) as reopened:
        assert len(reopened) == 10

    snap = REGISTRY.snapshot()["counters"]
    assert snap["store.appends"] > 0
    assert snap["store.bytes_written"] > 0
    assert snap["store.replays"] == before["store.replays"] + 1
    assert (
        snap["store.replayed_records"]
        == before["store.replayed_records"] + 10
    )
    # Every replayed record had its checksum verified.
    assert (
        snap["store.checksum_checks"]
        == before["store.checksum_checks"] + 10
    )


def test_corrupted_record_drives_checksum_failures(tmp_path):
    path = str(tmp_path / "corrupt.log")
    with LogStore(path) as store:
        for i in range(5):
            store.put("k%d" % i, {"i": i})

    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    # Flip one payload character of the third record, keeping the
    # length header true so only the checksum can catch it.
    length_text, crc_text, json_text = lines[2].split(":", 2)
    flipped = json_text.replace('"i":2', '"i":7')
    assert flipped != json_text and len(flipped) == len(json_text)
    lines[2] = "%s:%s:%s" % (length_text, crc_text, flipped)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    before = counters(
        "store.checksum_failures", "store.truncated_tails", "store.replays"
    )
    with LogStore(path) as reopened:
        # Replay stops at the corrupt record; the two before it survive.
        assert sorted(reopened.keys()) == ["k0", "k1"]
    after = counters(
        "store.checksum_failures", "store.truncated_tails", "store.replays"
    )
    assert after["store.checksum_failures"] == before["store.checksum_failures"] + 1
    assert after["store.truncated_tails"] == before["store.truncated_tails"] + 1
    assert after["store.replays"] == before["store.replays"] + 1
    assert REGISTRY.counter("store.checksum_failures").value > 0


def test_garbled_header_counts_as_torn_record(tmp_path):
    path = str(tmp_path / "torn.log")
    with LogStore(path) as store:
        store.put("k", {"v": 1})
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("not a header at all\n")

    before = REGISTRY.counter("store.torn_records").value
    with LogStore(path) as reopened:
        assert list(reopened.keys()) == ["k"]
    assert REGISTRY.counter("store.torn_records").value == before + 1


def test_batch_commit_records_latency_and_sync(tmp_path):
    path = str(tmp_path / "batch.log")
    commits_before = REGISTRY.counter("store.batch_commits").value
    latency_before = REGISTRY.histogram("store.commit.seconds").count
    syncs_before = REGISTRY.counter("store.syncs").value

    with LogStore(path) as store:
        with store.batch():
            store.put("a", {"x": 1})
            store.put("b", {"x": 2})

    assert REGISTRY.counter("store.batch_commits").value == commits_before + 1
    assert REGISTRY.histogram("store.commit.seconds").count == latency_before + 1
    assert REGISTRY.counter("store.syncs").value > syncs_before
    latest = REGISTRY.histogram("store.commit.seconds")
    assert latest.max is not None and latest.max >= 0.0


def test_compaction_counted(tmp_path):
    path = str(tmp_path / "compact.log")
    before = REGISTRY.counter("store.compactions").value
    with LogStore(path) as store:
        for __ in range(3):
            store.put("same", {"x": 1})
        store.compact()
    assert REGISTRY.counter("store.compactions").value == before + 1


def test_replay_span_recorded_when_tracing(tmp_path):
    path = str(tmp_path / "traced.log")
    with LogStore(path) as store:
        store.put("k", {"v": 1})

    previous = trace.CURRENT
    try:
        tracer = trace.enable()
        tracer.clear()
        with LogStore(path):
            pass
        replays = tracer.find("store.replay")
        assert len(replays) == 1
        assert replays[0].tags["records"] == 1
        assert replays[0].elapsed is not None
    finally:
        trace.set_tracer(previous)


def test_disabled_tracer_records_no_spans(tmp_path):
    trace.disable()
    path = str(tmp_path / "quiet.log")
    with LogStore(path) as store:
        with store.batch():
            store.put("k", {"v": 1})
    assert trace.CURRENT.spans() == []
