"""Unit tests for the log store and snapshot file, including crash cases."""

import os

import pytest

from repro.errors import StoreCorruptError
from repro.persistence.store import LogStore, SnapshotFile


@pytest.fixture
def log_path(tmp_path):
    return str(tmp_path / "store.log")


class TestLogStoreBasics:
    def test_put_get(self, log_path):
        with LogStore(log_path) as store:
            store.put("a", {"x": 1})
            assert store.get("a") == {"x": 1}

    def test_get_missing(self, log_path):
        with LogStore(log_path) as store:
            assert store.get("missing") is None

    def test_overwrite(self, log_path):
        with LogStore(log_path) as store:
            store.put("a", 1)
            store.put("a", 2)
            assert store.get("a") == 2
            assert len(store) == 1

    def test_delete(self, log_path):
        with LogStore(log_path) as store:
            store.put("a", 1)
            store.delete("a")
            assert store.get("a") is None
            assert "a" not in store

    def test_put_none_rejected(self, log_path):
        with LogStore(log_path) as store:
            with pytest.raises(StoreCorruptError):
                store.put("a", None)

    def test_keys_sorted(self, log_path):
        with LogStore(log_path) as store:
            store.put("b", 1)
            store.put("a", 2)
            assert list(store.keys()) == ["a", "b"]

    def test_reopen_replays(self, log_path):
        with LogStore(log_path) as store:
            store.put("a", {"deep": [1, 2, {"n": None}]})
            store.put("b", "text")
            store.delete("b")
        with LogStore(log_path) as store:
            assert store.get("a") == {"deep": [1, 2, {"n": None}]}
            assert "b" not in store

    def test_record_count_and_garbage_ratio(self, log_path):
        with LogStore(log_path) as store:
            store.put("a", 1)
            store.put("a", 2)
            store.put("b", 1)
            assert store.record_count == 3
            assert store.garbage_ratio() == pytest.approx(1 / 3)

    def test_empty_garbage_ratio(self, log_path):
        with LogStore(log_path) as store:
            assert store.garbage_ratio() == 0.0


class TestCrashTolerance:
    def test_torn_final_record_ignored(self, log_path):
        with LogStore(log_path) as store:
            store.put("a", 1)
            store.put("b", 2)
        # Simulate a crash mid-write: truncate the last record.
        size = os.path.getsize(log_path)
        with open(log_path, "r+b") as handle:
            handle.truncate(size - 5)
        with LogStore(log_path) as store:
            assert store.get("a") == 1
            assert store.get("b") is None  # torn record not trusted

    def test_corrupted_checksum_record_ignored(self, log_path):
        with LogStore(log_path) as store:
            store.put("a", 1)
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('7:12345:{"k":"x"}\n')  # wrong checksum
        with LogStore(log_path) as store:
            assert store.get("a") == 1
            assert "x" not in store

    def test_garbage_line_stops_replay(self, log_path):
        with LogStore(log_path) as store:
            store.put("a", 1)
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write("complete nonsense\n")
        with LogStore(log_path) as store:
            assert store.get("a") == 1


class TestBatches:
    def test_batch_applies_on_exit(self, log_path):
        with LogStore(log_path) as store:
            with store.batch():
                store.put("a", 1)
                store.put("b", 2)
            assert store.get("a") == 1
            assert store.get("b") == 2

    def test_batch_buffered_until_commit(self, log_path):
        with LogStore(log_path) as store:
            with store.batch():
                store.put("a", 1)
                # inside the batch the write is not yet visible
                assert store.get("a") is None
            assert store.get("a") == 1

    def test_batch_survives_reopen(self, log_path):
        with LogStore(log_path) as store:
            with store.batch():
                store.put("a", 1)
                store.delete("a")
                store.put("b", 2)
        with LogStore(log_path) as store:
            assert "a" not in store
            assert store.get("b") == 2

    def test_aborted_batch_writes_nothing(self, log_path):
        store = LogStore(log_path)
        with pytest.raises(RuntimeError):
            with store.batch():
                store.put("a", 1)
                raise RuntimeError("boom")
        assert store.get("a") is None
        store.close()
        with LogStore(log_path) as reopened:
            assert reopened.get("a") is None

    def test_unmarked_batch_discarded_on_replay(self, log_path):
        """Strip the commit marker (the crash case): the batch vanishes."""
        with LogStore(log_path) as store:
            store.put("before", 0)
            with store.batch():
                store.put("a", 1)
        with open(log_path, "rb") as handle:
            lines = handle.read().splitlines(keepends=True)
        with open(log_path, "wb") as handle:
            handle.writelines(lines[:-1])  # drop the marker
        with LogStore(log_path) as store:
            assert store.get("before") == 0
            assert store.get("a") is None

    def test_nested_batch_rejected(self, log_path):
        with LogStore(log_path) as store:
            with store.batch():
                with pytest.raises(StoreCorruptError):
                    with store.batch():
                        pass

    def test_empty_batch_is_noop(self, log_path):
        with LogStore(log_path) as store:
            count = store.record_count
            with store.batch():
                pass
            assert store.record_count == count


class TestCompaction:
    def test_compact_preserves_state(self, log_path):
        store = LogStore(log_path)
        for i in range(20):
            store.put("key", i)
        store.put("other", "v")
        store.delete("other")
        store.compact()
        assert store.get("key") == 19
        assert "other" not in store
        assert store.record_count == 1
        store.close()

    def test_compact_shrinks_file(self, log_path):
        store = LogStore(log_path)
        for i in range(100):
            store.put("key", {"payload": "x" * 50, "i": i})
        before = store.size_bytes()
        store.compact()
        after = store.size_bytes()
        assert after < before / 10
        store.close()

    def test_compacted_store_reopens(self, log_path):
        store = LogStore(log_path)
        store.put("a", 1)
        store.compact()
        store.put("b", 2)
        store.close()
        with LogStore(log_path) as reopened:
            assert reopened.get("a") == 1
            assert reopened.get("b") == 2


class TestSnapshotFile:
    def test_save_load(self, tmp_path):
        snap = SnapshotFile(str(tmp_path / "image"))
        snap.save({"x": [1, 2]})
        assert snap.load() == {"x": [1, 2]}

    def test_exists(self, tmp_path):
        snap = SnapshotFile(str(tmp_path / "image"))
        assert not snap.exists()
        snap.save(1)
        assert snap.exists()

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(StoreCorruptError):
            SnapshotFile(str(tmp_path / "nope")).load()

    def test_save_replaces_atomically(self, tmp_path):
        snap = SnapshotFile(str(tmp_path / "image"))
        snap.save({"version": 1})
        snap.save({"version": 2})
        assert snap.load() == {"version": 2}
        # no stray temp files left behind
        assert sorted(p.name for p in tmp_path.iterdir()) == ["image"]

    def test_corrupt_snapshot_raises(self, tmp_path):
        path = tmp_path / "image"
        path.write_text("{not json")
        with pytest.raises(StoreCorruptError):
            SnapshotFile(str(path)).load()
