"""Model-based stateful testing of the persistent heap.

A hypothesis state machine drives a :class:`PersistentHeap` through
random sequences of binds, mutations, commits, aborts, and full
close/reopen cycles, checking it against a plain in-memory model.
Invariants: after a commit (or reopen) the heap agrees with the model's
last committed state; aborts roll the live state back; object sharing
is preserved across reopens.
"""

import copy
import os

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.persistence.heap import PObject
from repro.persistence.intrinsic import PersistentHeap

NAMES = ("alpha", "beta", "gamma")
FIELDS = ("f", "g")


def heap_value_of(value):
    """Flatten a heap value into comparable plain data (cycle-safe)."""
    seen = {}

    def walk(v):
        if isinstance(v, PObject):
            if id(v) in seen:
                return ("ref", seen[id(v)])
            seen[id(v)] = len(seen)
            return (
                "obj",
                seen[id(v)],
                tuple(
                    (k, walk(w))
                    for k, w in sorted(v.persistent_fields().items())
                ),
            )
        if isinstance(v, list):
            return ("list", tuple(walk(w) for w in v))
        return ("scalar", v)

    return walk(value)


class ModelObject:
    """The model's counterpart of a PObject."""

    def __init__(self):
        self.fields = {}


def model_value_of(value, seen=None):
    seen = {} if seen is None else seen

    def walk(v):
        if isinstance(v, ModelObject):
            if id(v) in seen:
                return ("ref", seen[id(v)])
            seen[id(v)] = len(seen)
            return (
                "obj",
                seen[id(v)],
                tuple((k, walk(w)) for k, w in sorted(v.fields.items())),
            )
        if isinstance(v, list):
            return ("list", tuple(walk(w) for w in v))
        return ("scalar", v)

    return walk(value)


def deep_copy_model(roots):
    memo = {}

    def walk(v):
        if isinstance(v, ModelObject):
            if id(v) in memo:
                return memo[id(v)]
            clone = ModelObject()
            memo[id(v)] = clone
            clone.fields = {k: walk(w) for k, w in v.fields.items()}
            return clone
        if isinstance(v, list):
            return [walk(w) for w in v]
        return v

    return {name: walk(v) for name, v in roots.items()}


class HeapMachine(RuleBasedStateMachine):
    objects = Bundle("objects")

    @initialize()
    def setup(self):
        import tempfile

        self._dir = tempfile.mkdtemp()
        self._path = os.path.join(self._dir, "heap.log")
        self.heap = PersistentHeap(self._path)
        # twin maps: heap PObject <-> model object, by index
        self.heap_objects = []
        self.model_objects = []
        self.live_roots = {}
        self.committed_roots = {}
        self.heap.commit()

    # -- operations -------------------------------------------------------------

    @rule(target=objects, seed=st.integers(min_value=0, max_value=99))
    def new_object(self, seed):
        self.heap_objects.append(PObject("N", {"seed": seed}))
        model = ModelObject()
        model.fields = {"seed": seed}
        self.model_objects.append(model)
        return len(self.heap_objects) - 1

    @rule(index=objects, name=st.sampled_from(NAMES))
    def bind_root(self, index, name):
        self.heap.root(name, self.heap_objects[index])
        self.live_roots[name] = self.model_objects[index]

    @rule(name=st.sampled_from(NAMES), value=st.integers())
    def bind_scalar_root(self, name, value):
        self.heap.root(name, value)
        self.live_roots[name] = value

    @rule(
        index=objects,
        field=st.sampled_from(FIELDS),
        value=st.integers(min_value=0, max_value=9),
    )
    def set_scalar_field(self, index, field, value):
        self.heap_objects[index][field] = value
        self.model_objects[index].fields[field] = value

    @rule(index=objects, other=objects, field=st.sampled_from(FIELDS))
    def set_reference_field(self, index, other, field):
        self.heap_objects[index][field] = self.heap_objects[other]
        self.model_objects[index].fields[field] = self.model_objects[other]

    @rule(index=objects, field=st.sampled_from(FIELDS), value=st.integers())
    def set_transient_field(self, index, field, value):
        transient = "_" + field
        self.heap_objects[index][transient] = value
        self.heap_objects[index].mark_transient(transient)
        # the model never records transient fields

    @rule()
    def commit(self):
        self.heap.commit()
        self.committed_roots = deep_copy_model(self.live_roots)

    @rule()
    def abort(self):
        self.heap.abort()
        # live state snaps back to the committed state; rebuild the twin
        # mapping because materialized objects are fresh after an abort.
        self.live_roots = deep_copy_model(self.committed_roots)
        self._rebind_from_heap()

    @rule()
    def reopen(self):
        self.heap.commit()
        self.committed_roots = deep_copy_model(self.live_roots)
        self.heap.close()
        self.heap = PersistentHeap(self._path)
        self.live_roots = deep_copy_model(self.committed_roots)
        self._rebind_from_heap()

    def _rebind_from_heap(self):
        """After abort/reopen, old PObject handles are stale: rebuild the
        bundle's twin lists from the heap's current roots where
        possible, and mark everything else as detached fresh objects."""
        self.heap_objects = [PObject("N", o.fields if isinstance(o, ModelObject) else {})
                             for o in self.model_objects]
        # Detached twins no longer mirror persisted objects; treat them
        # as brand-new (they can be re-bound by later rules).
        rebuilt = []
        for obj in self.heap_objects:
            clone = PObject("N")
            for k, v in obj.fields().items():
                if not isinstance(v, (ModelObject, PObject)):
                    clone[k] = v
            rebuilt.append(clone)
        self.heap_objects = rebuilt
        self.model_objects = [ModelObject() for __ in self.model_objects]
        for obj, model in zip(self.heap_objects, self.model_objects):
            model.fields = dict(obj.fields())

    # -- invariants ----------------------------------------------------------------

    @invariant()
    def committed_state_matches_after_reload(self):
        # Compare the heap's *store contents* with the committed model by
        # loading a scratch copy.
        if not os.path.exists(self._path):
            return
        self.heap.store.sync()
        scratch = PersistentHeap(self._path)
        try:
            ns = scratch.namespace()
            heap_names = set(ns.names())
            model_names = set(self.committed_roots)
            assert heap_names == model_names, (
                "roots %r vs model %r" % (heap_names, model_names)
            )
            heap_shape = {
                name: heap_value_of(ns[name]) for name in heap_names
            }
            model_shape = {
                name: model_value_of(self.committed_roots[name])
                for name in model_names
            }
            assert heap_shape == model_shape
        finally:
            scratch.close()

    def teardown(self):
        self.heap.close()


HeapMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=15, deadline=None
)
TestHeapStateful = HeapMachine.TestCase
