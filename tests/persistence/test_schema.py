"""Unit tests for schema evolution (the 'Persistent Pascal' scenario)."""

import pytest

from repro.core.orders import record
from repro.errors import SchemaEvolutionError, UnknownHandleError
from repro.persistence.schema import SchemaRegistry, project_to_type
from repro.types.kinds import INT, STRING, ListType, record_type

PERSON_T = record_type(Name=STRING)
EMPLOYEE_T = record_type(Name=STRING, Emp_no=INT)
DB_T = record_type(Employees=ListType(EMPLOYEE_T))
DB_VIEW_T = record_type(Employees=ListType(PERSON_T))
DB_ENRICHED_T = record_type(
    Employees=ListType(EMPLOYEE_T),
    Depts=ListType(record_type(Dept=STRING)),
)
DB_HOSTILE_T = record_type(Employees=INT)


@pytest.fixture
def registry(tmp_path):
    with SchemaRegistry(str(tmp_path / "schema.log")) as reg:
        yield reg


class TestCompilationOutcomes:
    def test_first_compilation_records_type(self, registry):
        result = registry.compile_at("DBHandle", DB_T)
        assert result.outcome == "first"
        assert registry.declared_type("DBHandle") == DB_T

    def test_view_when_stored_is_subtype(self, registry):
        registry.compile_at("DBHandle", DB_T)
        result = registry.compile_at("DBHandle", DB_VIEW_T)
        assert result.is_view()
        # The stored (richer) type is untouched: the program just sees less.
        assert registry.declared_type("DBHandle") == DB_T

    def test_enrichment_when_consistent(self, registry):
        registry.compile_at("DBHandle", DB_T)
        result = registry.compile_at("DBHandle", DB_ENRICHED_T)
        assert result.is_enrichment()
        assert registry.declared_type("DBHandle") == DB_ENRICHED_T

    def test_repeated_enrichment(self, registry):
        """'we can continue to enrich the type, or schema, of the
        database' — each consistent recompilation adds structure."""
        registry.compile_at("DB", record_type(A=INT))
        registry.compile_at("DB", record_type(B=STRING))
        registry.compile_at("DB", record_type(C=INT))
        assert registry.declared_type("DB") == record_type(A=INT, B=STRING, C=INT)

    def test_contradiction_rejected(self, registry):
        registry.compile_at("DBHandle", DB_T)
        with pytest.raises(SchemaEvolutionError):
            registry.compile_at("DBHandle", DB_HOSTILE_T)

    def test_identical_recompile_is_view(self, registry):
        registry.compile_at("DBHandle", DB_T)
        assert registry.compile_at("DBHandle", DB_T).is_view()

    def test_compilation_reports_before_after(self, registry):
        registry.compile_at("DB", record_type(A=INT))
        result = registry.compile_at("DB", record_type(B=STRING))
        assert result.stored_before == record_type(A=INT)
        assert result.stored_after == record_type(A=INT, B=STRING)

    def test_handles_listing(self, registry):
        registry.compile_at("a", INT)
        registry.compile_at("b", STRING)
        assert sorted(registry.handles()) == ["a", "b"]

    def test_forget(self, registry):
        registry.compile_at("a", INT)
        registry.forget("a")
        assert registry.declared_type("a") is None
        with pytest.raises(UnknownHandleError):
            registry.forget("a")

    def test_persists_across_reopen(self, tmp_path):
        path = str(tmp_path / "schema.log")
        with SchemaRegistry(path) as reg:
            reg.compile_at("DB", DB_T)
        with SchemaRegistry(path) as reg:
            assert reg.declared_type("DB") == DB_T


class TestStructureLossUnderReplication:
    """The paper: externing at a supertype replicates only the view,
    'thereby losing structure from the database'."""

    def test_projection_drops_unseen_fields(self):
        employee = record(Name="J Doe", Emp_no=1234)
        projected = project_to_type(employee, PERSON_T)
        assert projected == record(Name="J Doe")

    def test_projection_recurses_into_lists(self):
        db = record(Name="X")  # noqa: F841 — illustrative
        employees = [record(Name="A", Emp_no=1), record(Name="B", Emp_no=2)]
        projected = project_to_type(employees, ListType(PERSON_T))
        assert projected == [record(Name="A"), record(Name="B")]

    def test_projection_identity_at_exact_type(self):
        employee = record(Name="J Doe", Emp_no=1234)
        assert project_to_type(employee, EMPLOYEE_T) == employee

    def test_round_trip_through_view_loses_structure(self, tmp_path):
        """Replicating persistence through a supertype view is lossy;
        re-interning at the original type is no longer possible."""
        from repro.errors import CoercionError
        from repro.persistence.replicating import ReplicatingStore
        from repro.types.dynamic import coerce, dynamic

        store = ReplicatingStore(str(tmp_path / "amber.log"))
        employee = record(Name="J Doe", Emp_no=1234)
        # A program compiled at the Person view externs what it sees:
        view_value = project_to_type(employee, PERSON_T)
        store.extern("DB", dynamic(view_value, PERSON_T))
        back = store.intern("DB")
        with pytest.raises(CoercionError):
            coerce(back, EMPLOYEE_T)  # Emp_no is gone

    def test_intrinsic_view_is_not_lossy(self, tmp_path):
        """Intrinsic persistence keeps the objects themselves: a program
        seeing a supertype view cannot lose the hidden fields."""
        from repro.persistence.heap import PObject
        from repro.persistence.intrinsic import PersistentHeap

        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        emp = PObject("Employee", {"Name": "J Doe", "Emp_no": 1234})
        heap.root("DB", emp)
        heap.commit()
        # "The view program" updates the field it can see, then commits.
        view = heap.get_root("DB")
        view["Name"] = "J Doe Jr"
        heap.commit()
        heap.close()
        back = PersistentHeap(path).get_root("DB")
        assert back["Emp_no"] == 1234  # structure retained
        assert back["Name"] == "J Doe Jr"
