"""Persistence audit trails in the event journal.

Commits chronicle their reachability sweep, extern/intern round-trips
carry fingerprints, and a re-intern that finds the stored value changed
behind this store front's back — the paper's update anomaly — lands as
a WARN event.
"""

import os

import pytest

from repro.obs import events
from repro.obs.metrics import REGISTRY
from repro.persistence.allornothing import ImagePersistence
from repro.persistence.heap import PObject
from repro.persistence.intrinsic import PersistentHeap
from repro.persistence.replicating import ReplicatingStore
from repro.persistence.store import LogStore
from repro.types.dynamic import dynamic


@pytest.fixture(autouse=True)
def journal():
    """A fresh recording journal per test, restored afterwards."""
    previous = events.CURRENT
    events.set_journal(events.EventJournal())
    yield events.CURRENT
    events.set_journal(previous)


class TestHeapCommitAudit:
    def test_commit_event_reports_the_reachability_sweep(
        self, journal, tmp_path
    ):
        heap = PersistentHeap(str(tmp_path / "heap.log"))
        first = PObject("Node")
        second = PObject("Node")
        first["next"] = second
        heap.root("head", first)
        stats = heap.commit()
        commits = journal.events(subsystem="heap")
        assert [e.name for e in commits] == ["commit"]
        payload = commits[0].payload
        assert payload["roots"] == stats.roots_written == 1
        assert payload["reachable"] == stats.objects_reachable == 2
        assert payload["written"] == 2
        assert payload["collected"] == 0
        heap.close()

    def test_second_commit_reports_unchanged_and_collected(
        self, journal, tmp_path
    ):
        heap = PersistentHeap(str(tmp_path / "heap.log"))
        first = PObject("Node")
        second = PObject("Node")
        first["next"] = second
        heap.root("head", first)
        heap.commit()
        del first["next"]  # second becomes unreachable
        heap.commit()
        payload = journal.events(subsystem="heap")[-1].payload
        assert payload["collected"] == 1
        assert payload["written"] == 1  # first changed (lost its field)
        heap.close()


class TestReplicatingAudit:
    def test_round_trips_log_matching_fingerprints(self, journal, tmp_path):
        store = ReplicatingStore(str(tmp_path / "r.log"))
        store.extern("doc", dynamic("payload"))
        store.intern("doc")
        externs = journal.events(subsystem="replicating")
        assert [e.name for e in externs] == ["extern", "intern"]
        assert (
            externs[0].payload["fingerprint"]
            == externs[1].payload["fingerprint"]
        )
        assert store.last_fingerprint("doc") == (
            1,
            externs[0].payload["fingerprint"],
        )
        store.close()

    def test_divergent_reintern_is_a_warn_event(self, journal, tmp_path):
        """Acceptance criterion: a re-intern of a value changed through
        another store front emits a WARN journal event."""
        shared = LogStore(str(tmp_path / "shared.log"))
        mine = ReplicatingStore(shared)
        theirs = ReplicatingStore(shared)
        before = REGISTRY.value("replicating.divergent_reinterns")

        mine.extern("doc", dynamic("original"))
        mine.intern("doc")  # round-trip: remember v1's fingerprint
        theirs.extern("doc", dynamic("changed elsewhere"))
        mine.intern("doc")  # the update anomaly surfaces here

        warnings = journal.events(severity="WARN", subsystem="replicating")
        assert [e.name for e in warnings] == ["divergent_reintern"]
        payload = warnings[0].payload
        assert payload["handle"] == "doc"
        assert payload["remembered_version"] == 1
        assert payload["stored_version"] == 2
        assert (
            payload["remembered_fingerprint"]
            != payload["stored_fingerprint"]
        )
        assert (
            REGISTRY.value("replicating.divergent_reinterns") == before + 1
        )
        shared.close()

    def test_same_value_reexterned_keeps_the_fingerprint(
        self, journal, tmp_path
    ):
        store = ReplicatingStore(str(tmp_path / "r.log"))
        store.extern("doc", dynamic("stable"))
        store.extern("doc", dynamic("stable"))
        # A new version of the identical value: same fingerprint, and
        # the next intern is NOT flagged divergent.
        store.intern("doc")
        assert journal.events(severity="WARN") == []
        externs = [
            e for e in journal.events(subsystem="replicating")
            if e.name == "extern"
        ]
        assert (
            externs[0].payload["fingerprint"]
            == externs[1].payload["fingerprint"]
        )
        store.close()


class TestStoreAnomalyAudit:
    def test_torn_tail_replay_is_a_warn_event(self, journal, tmp_path):
        path = str(tmp_path / "store.log")
        with LogStore(path) as store:
            store.put("k", {"v": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("9999:123:{\"k\"")  # no newline: torn final record
        reopened = LogStore(path)
        names = {e.name for e in journal.events(subsystem="store")}
        assert "replay" in names
        assert "truncated_tail" in names
        warns = journal.events(severity="WARN", subsystem="store")
        assert any(e.name == "truncated_tail" for e in warns)
        reopened.close()

    def test_checksum_failure_is_a_warn_event(self, journal, tmp_path):
        path = str(tmp_path / "store.log")
        with LogStore(path) as store:
            store.put("k", {"v": 1})
            store.put("k2", {"v": 2})
        # Corrupt the second record's payload byte without touching its
        # header, then replay.
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        lines[1] = lines[1][:-2] + ("X" if lines[1][-2] != "X" else "Y") + lines[1][-1]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        reopened = LogStore(path)
        warns = journal.events(severity="WARN", subsystem="store")
        assert any(e.name == "checksum_failure" for e in warns)
        reopened.close()


class TestImageAudit:
    def test_save_and_resume_are_info_events(self, journal, tmp_path):
        image = ImagePersistence(str(tmp_path / "session.image"))
        image.save_image({"a": 1, "b": "two"})
        image.resume()
        entries = journal.events(subsystem="image")
        assert [e.name for e in entries] == ["save", "resume"]
        assert entries[0].payload["names"] == 2
        assert entries[1].payload["names"] == 2
        assert entries[0].payload["path"] == os.path.join(
            str(tmp_path), "session.image"
        )
