"""Property-based tests for serialization: arbitrary values round-trip.

Principle (1) says *any* value should be able to persist; these tests
generate arbitrary values of the serializable universe (scalars, domain
values, containers, dynamics, types, object graphs) and require a
byte-exact JSON round trip to rebuild an equal value — with the type
description intact (principle (2)).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistence.heap import PObject, reachable
from repro.persistence.serialize import (
    decode_type,
    deserialize,
    encode_type,
    serialize,
    stored_type,
)
from repro.types.dynamic import Dynamic
from repro.types.infer import infer_type
from repro.types.kinds import (
    BOOL,
    FLOAT,
    INT,
    STRING,
    FunctionType,
    ListType,
    RecordType,
    SetType,
)

from tests.strategies import values as domain_values

scalars = st.one_of(
    st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)

serializable = st.recursive(
    st.one_of(scalars, domain_values),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=5), children, max_size=3),
        st.tuples(children, children).map(list),
    ),
    max_leaves=8,
)

base_types = st.sampled_from([INT, FLOAT, STRING, BOOL])

type_exprs = st.recursive(
    base_types,
    lambda children: st.one_of(
        children.map(ListType),
        children.map(SetType),
        st.dictionaries(
            st.sampled_from("abc"), children, max_size=3
        ).map(RecordType),
        st.tuples(children, children).map(
            lambda pair: FunctionType([pair[0]], pair[1])
        ),
    ),
    max_leaves=6,
)


def json_round_trip(document):
    return json.loads(json.dumps(document))


class TestValueRoundTrips:
    @given(serializable)
    @settings(max_examples=300, deadline=None)
    def test_round_trip_equal(self, value):
        document = json_round_trip(serialize(value))
        assert deserialize(document) == value

    @given(serializable)
    @settings(max_examples=150, deadline=None)
    def test_type_description_travels(self, value):
        document = serialize(value)
        described = stored_type(document)
        try:
            expected = infer_type(value)
        except Exception:
            expected = None
        assert described == expected

    @given(domain_values)
    @settings(max_examples=150, deadline=None)
    def test_domain_values_preserve_ordering_structure(self, value):
        back = deserialize(json_round_trip(serialize(value)))
        assert back == value
        assert back.leq(value) and value.leq(back)

    @given(type_exprs)
    @settings(max_examples=200, deadline=None)
    def test_type_encoding_round_trip(self, type_expr):
        node = json_round_trip(encode_type(type_expr))
        assert decode_type(node) == type_expr

    @given(serializable, type_exprs)
    @settings(max_examples=100, deadline=None)
    def test_dynamic_round_trip(self, value, carried):
        dyn = Dynamic(value, carried)
        back = deserialize(json_round_trip(serialize(dyn)))
        assert isinstance(back, Dynamic)
        assert back.carried == carried
        assert back.value == value


class TestObjectGraphProperties:
    @given(
        st.lists(
            st.dictionaries(st.sampled_from("fg"), scalars, max_size=2),
            min_size=1,
            max_size=5,
        ),
        st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_random_object_graphs_round_trip(self, field_sets, data):
        # Build objects, then wire random references among them.
        objects = [PObject("N", fields) for fields in field_sets]
        for i, obj in enumerate(objects):
            target = data.draw(
                st.integers(min_value=0, max_value=len(objects) - 1)
            )
            obj["ref"] = objects[target]

        back = deserialize(json_round_trip(serialize(objects)))
        assert len(back) == len(objects)
        # Reference structure is isomorphic: the index of each object's
        # target matches.
        index_of = {id(obj): i for i, obj in enumerate(back)}
        for original, copy in zip(objects, back):
            original_target = next(
                i for i, o in enumerate(objects) if o is original["ref"]
            )
            assert index_of[id(copy["ref"])] == original_target

        # Reachability is preserved.
        assert len(reachable(back)) == len(reachable(objects))

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_cycles_of_any_length(self, length):
        ring = [PObject("R", {"i": i}) for i in range(length)]
        for i, obj in enumerate(ring):
            obj["next"] = ring[(i + 1) % length]
        back = deserialize(json_round_trip(serialize(ring[0])))
        node = back
        for __ in range(length):
            node = node["next"]
        assert node is back  # came all the way around
