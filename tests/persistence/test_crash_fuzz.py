"""Crash-injection fuzzing for the log store and persistent heap.

A crash may cut the log at *any* byte.  Recovery must (a) never raise,
(b) restore a prefix of the committed history, and (c) leave the store
appendable — new writes after recovery must survive a clean reopen.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TransactionConflictError
from repro.persistence.heap import PObject
from repro.persistence.intrinsic import PersistentHeap
from repro.persistence.mvcc import MVCCHeap, TransactionManager
from repro.persistence.store import LogStore


def build_reference_log(path, operations):
    """Apply (key, value-or-None) operations; return prefix states."""
    states = [dict()]
    with LogStore(path) as store:
        current = {}
        for key, value in operations:
            if value is None:
                store.delete(key)
                current.pop(key, None)
            else:
                store.put(key, value)
                current[key] = value
            states.append(dict(current))
    return states


OPERATIONS = [
    ("a", 1),
    ("b", {"x": [1, 2]}),
    ("a", 2),
    ("c", "text"),
    ("b", None),
    ("d", [True, None]),
    ("a", None),
    ("e", {"deep": {"er": 3}}),
]


class TestTruncationAtEveryOffset:
    def test_every_cut_recovers_a_prefix(self, tmp_path):
        path = str(tmp_path / "ref.log")
        states = build_reference_log(path, OPERATIONS)
        with open(path, "rb") as handle:
            data = handle.read()

        for cut in range(len(data) + 1):
            cut_path = str(tmp_path / ("cut%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            with LogStore(cut_path) as store:
                recovered = {key: store.get(key) for key in store.keys()}
            assert recovered in states, (
                "cut at byte %d is not a prefix state" % cut
            )

    def test_append_after_any_cut_survives(self, tmp_path):
        path = str(tmp_path / "ref.log")
        build_reference_log(path, OPERATIONS)
        with open(path, "rb") as handle:
            data = handle.read()

        # Sample a spread of cut points (all of them is slow here).
        for cut in range(0, len(data) + 1, max(1, len(data) // 23)):
            cut_path = str(tmp_path / ("app%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            with LogStore(cut_path) as store:
                store.put("after-crash", cut)
            with LogStore(cut_path) as reopened:
                assert reopened.get("after-crash") == cut

    def test_garbage_injection_then_append(self, tmp_path):
        path = str(tmp_path / "g.log")
        with LogStore(path) as store:
            store.put("k", 1)
        with open(path, "ab") as handle:
            handle.write(b"\x00\xff partial junk without newline")
        with LogStore(path) as store:
            assert store.get("k") == 1
            store.put("k2", 2)
        with LogStore(path) as store:
            assert store.get("k2") == 2


class TestHypothesisCrashes:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from("abcd"),
                st.one_of(st.none(), st.integers(), st.text(max_size=5)),
            ),
            max_size=8,
        ),
        cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_histories_random_cuts(self, tmp_path_factory, operations, cut_fraction):
        tmp = tmp_path_factory.mktemp("fuzz")
        path = str(tmp / "log")
        states = build_reference_log(path, operations)
        with open(path, "rb") as handle:
            data = handle.read()
        cut = int(len(data) * cut_fraction)
        with open(path, "wb") as handle:
            handle.write(data[:cut])
        with LogStore(path) as store:
            recovered = {key: store.get(key) for key in store.keys()}
        assert recovered in states


class TestHeapCrashes:
    def test_heap_commit_is_atomic_at_every_cut(self, tmp_path):
        """Commits are all-or-nothing: a cut anywhere inside the second
        commit recovers exactly the first commit's state; only the full
        log recovers the second."""
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        obj = PObject("X", {"n": 0})
        heap.root("obj", obj)
        heap.commit()
        boundary = os.path.getsize(path)  # end of the first commit
        obj["n"] = 1
        heap.commit()
        heap.close()

        with open(path, "rb") as handle:
            data = handle.read()

        for cut in range(boundary, len(data) + 1):
            cut_path = str(tmp_path / ("h%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            recovered = PersistentHeap(cut_path)
            value = recovered.get_root("obj")["n"]
            expected = 1 if cut == len(data) else 0
            assert value == expected, "cut at %d: got %r" % (cut, value)
            recovered.close()

    def test_cut_before_first_commit_completes(self, tmp_path):
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        heap.root("obj", PObject("X", {"n": 0}))
        heap.commit()
        heap.close()
        with open(path, "rb") as handle:
            data = handle.read()
        # Cut inside the very first commit: the root record may be gone;
        # recovery must still construct a working (possibly empty) heap.
        for cut in (0, 1, len(data) // 2):
            cut_path = str(tmp_path / ("early%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            recovered = PersistentHeap(cut_path)
            # either the root survived intact or it is absent; never junk
            if "obj" in recovered.namespace():
                assert recovered.get_root("obj")["n"] == 0
            recovered.close()


def mvcc_state(path):
    """All roots of an MVCC heap log as plain ``{name: fields}``."""
    with MVCCHeap(path) as heap:
        txn = heap.begin()
        state = {}
        for ns_name in txn.namespaces():
            namespace = txn.namespace(ns_name)
            for root_name in namespace.names():
                value = namespace[root_name]
                state[(ns_name, root_name)] = (
                    value.fields() if isinstance(value, PObject) else value
                )
        txn.abort()
        return state


class TestConcurrentWriterCrashes:
    """Crash points inside the commit window of *interleaved*
    transactions.

    With MVCC, every successful commit is one atomic ``batch`` on the
    log, and commit order *is* a serial order (first committer wins —
    the loser never writes).  So whatever byte the crash cuts at, replay
    must land on the state after some prefix of the successful commits —
    a state some serial execution could have produced — and never on a
    torn half-commit.
    """

    def test_interleaved_heap_commits_replay_to_a_serial_prefix(
        self, tmp_path
    ):
        path = str(tmp_path / "mvcc.log")
        committed = []
        with MVCCHeap(path) as heap:
            seed = heap.begin()
            seed.root("left", PObject("Cell", {"n": 0}))
            seed.root("right", PObject("Cell", {"n": 0}))
            seed.commit()
            seed.abort()
            committed.append(mvcc_state(path))
            # Two disjoint writers interleave commit-by-commit; both
            # always succeed (no overlap), so every commit is serial.
            a, b = heap.begin(), heap.begin()
            for i in range(1, 4):
                a.get_root("left")["n"] = i
                a.commit()
                committed.append(mvcc_state(path))
                b.get_root("right")["n"] = i * 10
                b.commit()
                committed.append(mvcc_state(path))
            a.abort()
            b.abort()

        with open(path, "rb") as handle:
            data = handle.read()
        # Cut at a spread of offsets, covering every commit window.
        for cut in range(0, len(data) + 1, max(1, len(data) // 97)):
            cut_path = str(tmp_path / ("cut%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            recovered = mvcc_state(cut_path)
            assert recovered in committed + [{}], (
                "cut at byte %d is not a serial-prefix state" % cut
            )

    def test_conflict_loser_leaves_no_bytes_behind(self, tmp_path):
        """The losing transaction of a first-committer-wins race writes
        *nothing*: the log after the conflict replays to exactly the
        winner's state, at every cut past the winner's commit."""
        path = str(tmp_path / "race.log")
        with MVCCHeap(path) as heap:
            seed = heap.begin()
            seed.root("n", PObject("Cell", {"v": 0}))
            seed.commit()
            seed.abort()
            a, b = heap.begin(), heap.begin()
            a.get_root("n")["v"] = 1
            b.get_root("n")["v"] = 2
            a.commit()
            boundary = os.path.getsize(path)
            with pytest.raises(TransactionConflictError):
                b.commit()
        assert os.path.getsize(path) == boundary
        assert mvcc_state(path)[("user", "n")]["v"] == 1

    @given(
        schedule=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # which transaction
                st.sampled_from("xyz"),  # which handle
                st.integers(min_value=0, max_value=99),  # value
            ),
            min_size=2,
            max_size=12,
        ),
        cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_interleavings_random_cuts(
        self, tmp_path_factory, schedule, cut_fraction
    ):
        """2–4 extern transactions, a random interleaving of writes, a
        commit apiece, a crash at a random byte: recovery is a prefix
        of the *successful-commit* sequence."""
        tmp = tmp_path_factory.mktemp("txnfuzz")
        path = str(tmp / "log")

        def externs(store):
            return {
                key[len("extern:"):]: store.get(key)
                for key in store.keys()
                if key.startswith("extern:")
            }

        committed = [{}]
        with LogStore(path) as store:
            txns = TransactionManager(store=store)
            sessions = {}
            for tid, handle, value in schedule:
                session = sessions.setdefault(tid, txns.begin())
                if session.active:
                    session.write(handle, value)
            for tid in sorted(sessions):
                session = sessions[tid]
                if not session.active:
                    continue
                try:
                    session.commit()
                except TransactionConflictError:
                    continue
                committed.append(externs(store))

        with open(path, "rb") as handle:
            data = handle.read()
        cut = int(len(data) * cut_fraction)
        with open(path, "wb") as handle:
            handle.write(data[:cut])
        with LogStore(path) as store:
            recovered = externs(store)
        assert recovered in committed, (
            "cut at byte %d of %d is not a committed prefix" % (cut, len(data))
        )


@pytest.mark.parametrize("compact_first", [False, True])
def test_compaction_then_crash(tmp_path, compact_first):
    path = str(tmp_path / "c.log")
    store = LogStore(path)
    for i in range(30):
        store.put("k", i)
    if compact_first:
        store.compact()
    store.close()
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) - 3])  # tear the tail
    with LogStore(path) as recovered:
        value = recovered.get("k")
        assert value == 29 or value in range(30) or value is None
