"""Crash-injection fuzzing for the log store and persistent heap.

A crash may cut the log at *any* byte.  Recovery must (a) never raise,
(b) restore a prefix of the committed history, and (c) leave the store
appendable — new writes after recovery must survive a clean reopen.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.persistence.heap import PObject
from repro.persistence.intrinsic import PersistentHeap
from repro.persistence.store import LogStore


def build_reference_log(path, operations):
    """Apply (key, value-or-None) operations; return prefix states."""
    states = [dict()]
    with LogStore(path) as store:
        current = {}
        for key, value in operations:
            if value is None:
                store.delete(key)
                current.pop(key, None)
            else:
                store.put(key, value)
                current[key] = value
            states.append(dict(current))
    return states


OPERATIONS = [
    ("a", 1),
    ("b", {"x": [1, 2]}),
    ("a", 2),
    ("c", "text"),
    ("b", None),
    ("d", [True, None]),
    ("a", None),
    ("e", {"deep": {"er": 3}}),
]


class TestTruncationAtEveryOffset:
    def test_every_cut_recovers_a_prefix(self, tmp_path):
        path = str(tmp_path / "ref.log")
        states = build_reference_log(path, OPERATIONS)
        with open(path, "rb") as handle:
            data = handle.read()

        for cut in range(len(data) + 1):
            cut_path = str(tmp_path / ("cut%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            with LogStore(cut_path) as store:
                recovered = {key: store.get(key) for key in store.keys()}
            assert recovered in states, (
                "cut at byte %d is not a prefix state" % cut
            )

    def test_append_after_any_cut_survives(self, tmp_path):
        path = str(tmp_path / "ref.log")
        build_reference_log(path, OPERATIONS)
        with open(path, "rb") as handle:
            data = handle.read()

        # Sample a spread of cut points (all of them is slow here).
        for cut in range(0, len(data) + 1, max(1, len(data) // 23)):
            cut_path = str(tmp_path / ("app%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            with LogStore(cut_path) as store:
                store.put("after-crash", cut)
            with LogStore(cut_path) as reopened:
                assert reopened.get("after-crash") == cut

    def test_garbage_injection_then_append(self, tmp_path):
        path = str(tmp_path / "g.log")
        with LogStore(path) as store:
            store.put("k", 1)
        with open(path, "ab") as handle:
            handle.write(b"\x00\xff partial junk without newline")
        with LogStore(path) as store:
            assert store.get("k") == 1
            store.put("k2", 2)
        with LogStore(path) as store:
            assert store.get("k2") == 2


class TestHypothesisCrashes:
    @given(
        operations=st.lists(
            st.tuples(
                st.sampled_from("abcd"),
                st.one_of(st.none(), st.integers(), st.text(max_size=5)),
            ),
            max_size=8,
        ),
        cut_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_histories_random_cuts(self, tmp_path_factory, operations, cut_fraction):
        tmp = tmp_path_factory.mktemp("fuzz")
        path = str(tmp / "log")
        states = build_reference_log(path, operations)
        with open(path, "rb") as handle:
            data = handle.read()
        cut = int(len(data) * cut_fraction)
        with open(path, "wb") as handle:
            handle.write(data[:cut])
        with LogStore(path) as store:
            recovered = {key: store.get(key) for key in store.keys()}
        assert recovered in states


class TestHeapCrashes:
    def test_heap_commit_is_atomic_at_every_cut(self, tmp_path):
        """Commits are all-or-nothing: a cut anywhere inside the second
        commit recovers exactly the first commit's state; only the full
        log recovers the second."""
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        obj = PObject("X", {"n": 0})
        heap.root("obj", obj)
        heap.commit()
        boundary = os.path.getsize(path)  # end of the first commit
        obj["n"] = 1
        heap.commit()
        heap.close()

        with open(path, "rb") as handle:
            data = handle.read()

        for cut in range(boundary, len(data) + 1):
            cut_path = str(tmp_path / ("h%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            recovered = PersistentHeap(cut_path)
            value = recovered.get_root("obj")["n"]
            expected = 1 if cut == len(data) else 0
            assert value == expected, "cut at %d: got %r" % (cut, value)
            recovered.close()

    def test_cut_before_first_commit_completes(self, tmp_path):
        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        heap.root("obj", PObject("X", {"n": 0}))
        heap.commit()
        heap.close()
        with open(path, "rb") as handle:
            data = handle.read()
        # Cut inside the very first commit: the root record may be gone;
        # recovery must still construct a working (possibly empty) heap.
        for cut in (0, 1, len(data) // 2):
            cut_path = str(tmp_path / ("early%d.log" % cut))
            with open(cut_path, "wb") as handle:
                handle.write(data[:cut])
            recovered = PersistentHeap(cut_path)
            # either the root survived intact or it is absent; never junk
            if "obj" in recovered.namespace():
                assert recovered.get_root("obj")["n"] == 0
            recovered.close()


@pytest.mark.parametrize("compact_first", [False, True])
def test_compaction_then_crash(tmp_path, compact_first):
    path = str(tmp_path / "c.log")
    store = LogStore(path)
    for i in range(30):
        store.put("k", i)
    if compact_first:
        store.compact()
    store.close()
    with open(path, "rb") as handle:
        data = handle.read()
    with open(path, "wb") as handle:
        handle.write(data[: len(data) - 3])  # tear the tail
    with LogStore(path) as recovered:
        value = recovered.get("k")
        assert value == 29 or value in range(30) or value is None
