"""Unit tests for the synthetic workload generators."""

import pytest

from repro.apps.bom import explosion_size, is_tree_explosion, roll_up_naive
from repro.extents.database import Database, TypeIndexedDatabase
from repro.workloads.employees import (
    EMPLOYEE_T,
    PERSON_T,
    STUDENT_T,
    WORKING_STUDENT_T,
    employee_database,
    populate,
    synthetic_hierarchy,
)
from repro.workloads.parts import ladder_dag, random_dag, uniform_tree
from repro.workloads.relations import (
    flat_join_pair,
    random_flat_relation,
    random_generalized_relation,
    random_partial_records,
)
from repro.types.subtyping import is_subtype


class TestEmployees:
    def test_size_and_heterogeneity(self):
        db = employee_database(200, seed=7)
        assert len(db) == 200
        carried = {m.carried for m in db}
        assert PERSON_T in carried and EMPLOYEE_T in carried

    def test_deterministic(self):
        a = employee_database(50, seed=3)
        b = employee_database(50, seed=3)
        assert [m.value for m in a] == [m.value for m in b]

    def test_different_seeds_differ(self):
        a = employee_database(50, seed=3)
        b = employee_database(50, seed=4)
        assert [m.value for m in a] != [m.value for m in b]

    def test_extraction_hierarchy_holds(self):
        db = employee_database(300, seed=11)
        persons = len(db.scan(PERSON_T))
        employees = len(db.scan(EMPLOYEE_T))
        working = len(db.scan(WORKING_STUDENT_T))
        assert persons == 300  # everything in the diamond is a person
        assert persons >= employees >= working

    def test_indexed_database_class(self):
        db = employee_database(100, database_class=TypeIndexedDatabase, seed=5)
        assert isinstance(db, TypeIndexedDatabase)
        assert len(db.scan(STUDENT_T)) == len(
            employee_database(100, seed=5).scan(STUDENT_T)
        )

    def test_synthetic_hierarchy_is_chain(self):
        levels = synthetic_hierarchy(depth=4, width=2)
        assert len(levels) == 5
        for upper, lower in zip(levels, levels[1:]):
            assert is_subtype(lower, upper)
            assert not is_subtype(upper, lower)

    def test_populate(self):
        levels = synthetic_hierarchy(3)
        db = populate(Database, levels, per_type=10, seed=2)
        assert len(db) == 40
        # everything is a subtype of the top level
        assert len(db.scan(levels[0])) == 40
        assert len(db.scan(levels[-1])) == 10


class TestParts:
    def test_uniform_tree_is_tree(self):
        tree = uniform_tree(depth=4, fan=2)
        assert is_tree_explosion(tree)
        assert explosion_size(tree) == 2 ** 5 - 1

    def test_ladder_is_small_but_pathy(self):
        dag = ladder_dag(depth=10, fan=2)
        assert explosion_size(dag) == 11
        assert not is_tree_explosion(dag)
        assert roll_up_naive(dag).visits == 2 ** 11 - 1

    def test_random_dag_zero_sharing_is_tree(self):
        dag = random_dag(depth=4, fan=2, sharing=0.0, seed=9)
        assert is_tree_explosion(dag)
        assert explosion_size(dag) == 2 ** 5 - 1

    def test_random_dag_visit_count_fixed_by_shape(self):
        # Paths (hence naive visits) depend only on depth and fan.
        for sharing in (0.0, 0.5, 0.9):
            dag = random_dag(depth=5, fan=2, sharing=sharing, seed=9)
            assert roll_up_naive(dag).visits == 2 ** 6 - 1

    def test_random_dag_sharing_dial(self):
        shared = random_dag(depth=6, fan=2, sharing=0.9, seed=9)
        unshared = random_dag(depth=6, fan=2, sharing=0.0, seed=9)
        assert explosion_size(shared) < explosion_size(unshared)
        shared_ratio = roll_up_naive(shared).visits / explosion_size(shared)
        unshared_ratio = roll_up_naive(unshared).visits / explosion_size(unshared)
        assert shared_ratio > unshared_ratio

    def test_random_dag_deterministic(self):
        a = roll_up_naive(random_dag(4, 2, 0.5, seed=4)).value
        b = roll_up_naive(random_dag(4, 2, 0.5, seed=4)).value
        assert a == b

    def test_random_dag_rejects_negative_depth(self):
        with pytest.raises(ValueError):
            random_dag(-1)


class TestRelations:
    def test_flat_relation_size(self):
        r = random_flat_relation(100, seed=1)
        assert len(r) == 100

    def test_key_cardinality_bounds_keys(self):
        r = random_flat_relation(100, ("K", "A"), key_cardinality=5, seed=1)
        keys = {row["K"] for row in r}
        assert keys <= set(range(5))

    def test_flat_join_pair_joins(self):
        left, right = flat_join_pair(50, key_cardinality=10, seed=2)
        joined = left.natural_join(right)
        assert len(joined) > 0

    def test_partial_records_null_fraction(self):
        records = random_partial_records(
            500, null_fraction=0.5, seed=3
        )
        defined = sum(len(r) for r in records)
        # Expect about half the 4 × 500 fields defined.
        assert 800 < defined < 1200

    def test_zero_null_fraction_total(self):
        records = random_partial_records(50, null_fraction=0.0, seed=4)
        assert all(len(r) == 4 for r in records)

    def test_generalized_relation_is_cochain(self):
        relation = random_generalized_relation(200, seed=5)
        relation.check_cochain()
        assert len(relation) <= 200

    def test_deterministic(self):
        a = random_generalized_relation(80, seed=6)
        b = random_generalized_relation(80, seed=6)
        assert a == b
