"""Object promotion: join-based extension vs Amber's delete-and-replace.

The paper: "In Amber two record values are never comparable, and there
is no method of extending a record to become a more informative record.
The only way to transform a Person record into an Employee record would
be to delete the less informative record and add a new one, and this may
not be an equivalent operation *when there are references to or from
that record*."

These tests demonstrate both sides: the reference-breaking hazard of
delete-and-replace over immutable records, and the reference-preserving
promotion that mutable identity (PObject) or the information-order join
give.
"""

from repro.core.orders import join, leq, record
from repro.core.relation import GeneralizedRelation
from repro.extents.database import Database
from repro.persistence.heap import PObject
from repro.types.kinds import INT, STRING, record_type

PERSON_T = record_type(Name=STRING)
EMPLOYEE_T = record_type(Name=STRING, Emp_no=INT)


class TestDeleteAndReplaceHazard:
    def test_references_break_under_replacement(self):
        """A department roster referencing the Person *value* is stale
        after the delete-and-add dance — the Amber problem."""
        person = record(Name="J Doe")
        roster = [person]  # a reference to the old record

        db = Database()
        member = db.insert(person, PERSON_T)
        # Promotion, Amber style: delete and add a new record.
        db.remove(member)
        employee = join(person, record(Emp_no=1234))
        db.insert(employee, EMPLOYEE_T)

        # The roster still holds the old value: not an Employee.
        assert roster[0] == person
        assert "Emp_no" not in roster[0]
        # And it no longer matches anything in the database.
        assert all(m.value != roster[0] for m in db)

    def test_references_survive_with_object_identity(self):
        """With mutable identity the same object *becomes* an employee;
        every referrer sees the promotion."""
        person = PObject("Person", {"Name": "J Doe"})
        roster = [person]
        person["Emp_no"] = 1234  # promotion in place
        assert roster[0]["Emp_no"] == 1234
        assert roster[0] is person


class TestJoinBasedPromotion:
    def test_promotion_is_monotone(self):
        person = record(Name="J Doe")
        employee = join(person, record(Emp_no=1234))
        assert leq(person, employee)

    def test_relation_subsumes_promoted_object(self):
        """In a generalized relation the promoted object *replaces* the
        old one by subsumption — no dangling less-informative twin."""
        relation = GeneralizedRelation([record(Name="J Doe")])
        promoted = relation.insert(record(Name="J Doe", Emp_no=1234))
        assert len(promoted) == 1
        assert record(Name="J Doe", Emp_no=1234) in promoted
        assert record(Name="J Doe") not in promoted

    def test_coexistence_allowed_without_keys(self):
        """Object-oriented reading: comparable objects may coexist in a
        *database* (a list), if not in a relation."""
        db = Database()
        db.insert(record(Name="J Doe"), PERSON_T)
        db.insert(record(Name="J Doe", Emp_no=1234), EMPLOYEE_T)
        assert len(db.scan(PERSON_T)) == 2  # both are persons
