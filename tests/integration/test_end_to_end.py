"""Integration tests: whole-paper scenarios crossing module boundaries."""

import pytest

from repro.classes.adaplex import AdaplexSchema
from repro.classes.galileo import GalileoEnvironment
from repro.classes.taxis import VariableClass
from repro.core.fd import FunctionalDependency, Key, KeyedRelation
from repro.core.flat import FlatRelation
from repro.core.orders import record
from repro.core.relation import GeneralizedRelation
from repro.extents.database import TypeIndexedDatabase
from repro.extents.extent import ExtentRegistry
from repro.extents.get import get
from repro.lang.eval import Interpreter
from repro.persistence.heap import PObject
from repro.persistence.intrinsic import PersistentHeap
from repro.persistence.replicating import ReplicatingStore
from repro.types.dynamic import coerce, dynamic
from repro.types.kinds import INT, STRING, record_type
from repro.workloads.employees import EMPLOYEE_T, PERSON_T, employee_database


class TestFullEmployeeApplication:
    """The running example, end to end: typed store → generic get →
    generalized relation → keyed update → persistence → reopen."""

    def test_pipeline(self, tmp_path):
        # 1. Populate a type-indexed heterogeneous database.
        db = employee_database(120, TypeIndexedDatabase, seed=99)
        employees = get(db, EMPLOYEE_T)
        persons = get(db, PERSON_T)
        assert len(persons) == 120
        assert 0 < len(employees) < len(persons)

        # 2. Pour the employees into a keyed generalized relation.
        keyed = KeyedRelation(Key(["Name"]))
        inserted = 0
        for employee in employees:
            try:
                keyed = keyed.insert(employee)
                inserted += 1
            except Exception:
                pass  # random names may collide; keys reject those
        assert len(keyed) <= inserted

        # 3. The relation satisfies Name → everything it stored.
        fd = FunctionalDependency(["Name"], ["Dept", "Emp_no"])
        assert fd.holds_in(keyed.relation)

        # 4. Persist the whole relation replicating-style, with its type.
        store = ReplicatingStore(str(tmp_path / "emp.log"))
        as_list = list(keyed.relation)
        store.extern("employees", dynamic(as_list))
        stored = store.stored_type_of("employees")
        store.close()

        # 5. A second program interns and re-derives the extent census.
        store2 = ReplicatingStore(str(tmp_path / "emp.log"))
        back = coerce(store2.intern("employees"), stored)
        assert GeneralizedRelation(back) == keyed.relation
        store2.close()


class TestClassLayersOverOneWorld:
    """Taxis, Adaplex, and Galileo all derived over the same primitives,
    modeling the same schema, with consistent answers."""

    def test_three_class_systems_agree(self):
        # Taxis
        t_person = VariableClass("PERSON", {"Name": STRING})
        t_employee = VariableClass("EMPLOYEE", {"Empno": INT}, isa=(t_person,))
        t_employee.insert(Name="J", Empno=1)
        t_person.insert(Name="P")

        # Adaplex
        a = AdaplexSchema()
        a.entity_type("Person", Name=STRING)
        a.entity_type("Employee", Empno=INT)
        a.include("Employee", "Person")
        a.create("Employee", Name="J", Empno=1)
        a.create("Person", Name="P")

        # Galileo
        g = GalileoEnvironment()
        g_person = g.define_class("persons", record_type(Name=STRING))
        g_employee = g.define_class(
            "employees", record_type(Name=STRING, Empno=INT)
        )
        g_employee.insert(record(Name="J", Empno=1))
        g_person.insert(record(Name="P"))
        g_person.insert(record(Name="J", Empno=1))  # Galileo: by hand

        # All three see 2 persons and 1 employee.
        assert len(t_person.extent) == len(a.extent("Person")) == len(g_person) == 2
        assert len(t_employee) == len(a.extent("Employee")) == len(g_employee) == 1

        # Their record types agree structurally.
        assert t_employee.record_type() == a.record_type("Employee") == (
            g_employee.base_type
        )


class TestGeneralizedRelationsPersist:
    def test_relation_through_intrinsic_heap(self, tmp_path):
        path = str(tmp_path / "rel.log")
        relation = GeneralizedRelation(
            [
                {"Name": "J Doe", "Dept": "Sales"},
                {"Name": "N Bug", "Addr": {"State": "MT"}},
            ]
        )
        heap = PersistentHeap(path)
        # Domain values are immutable; store them in a PObject wrapper.
        heap.root("db", PObject("RelationBox", {"objects": list(relation)}))
        heap.commit()
        heap.close()

        box = PersistentHeap(path).get_root("db")
        rebuilt = GeneralizedRelation(box["objects"])
        assert rebuilt == relation

    def test_flat_relation_round_trip_via_generalized(self):
        flat = FlatRelation(("A", "B"), [(1, 2), (3, 4)])
        assert FlatRelation.from_generalized(flat.to_generalized(), flat.schema) == flat


class TestDbplDrivesTheLibrary:
    """DBPL sits on the same extents/persistence substrate — values cross
    the language boundary cleanly."""

    def test_dbpl_database_visible_shapes(self):
        interp = Interpreter()
        interp.run(
            """
            type Person = {Name: String}
            let db = newdb();
            insert(db, dynamic {Name = "A"});
            insert(db, dynamic {Name = "B", Extra = 1});
            """
        )
        db = interp._globals.lookup("db")
        # The runtime database is the library's Database class; its
        # scan agrees with DBPL's get.
        assert len(db.scan(record_type(Name=STRING))) == 2
        result = interp.run("length(get[Person](db))")
        assert result.value == 2

    def test_dbpl_and_python_share_a_store(self, tmp_path):
        """A DBPL program externs; a Python program interns (and back)."""
        from repro.persistence.store import LogStore

        path = str(tmp_path / "shared.log")
        interp = Interpreter(path)
        interp.run('extern("nums", dynamic [1, 2, 3]);')

        store = LogStore(path)
        document = store.get("extern:nums")
        assert document is not None
        from repro.persistence.serialize import deserialize, stored_type
        from repro.types.kinds import ListType

        assert stored_type(document) == ListType(INT)
        assert deserialize(document) == [1, 2, 3]
        store.put(
            "extern:more",
            __import__("repro.persistence.serialize", fromlist=["serialize"])
            .serialize([10, 20], typ=ListType(INT)),
        )
        store.close()

        interp2 = Interpreter(path)
        result = interp2.run('sum(coerce intern("more") to List[Int])')
        assert result.value == 30


class TestExtentRegistryScenario:
    """Hypothetical states: branch the world, mutate the branch, verify
    the real extents are untouched — then adopt the branch."""

    def test_hypothetical_experiment(self):
        registry = ExtentRegistry()
        world = registry.create("employees", EMPLOYEE_T)
        world.insert(record(Name="A", City="X", Emp_no=1, Dept="Sales"))
        world.insert(record(Name="B", City="Y", Emp_no=2, Dept="Manuf"))

        hypothesis = world.snapshot("reorg")
        registry.adopt(hypothesis)
        hypothesis.delete(record(Name="B", City="Y", Emp_no=2, Dept="Manuf"))
        hypothesis.insert(record(Name="B", City="Y", Emp_no=2, Dept="Sales"))

        assert len(world) == 2
        assert len(registry["reorg"]) == 2
        depts_world = {o["Dept"].payload for o in world}
        depts_hypo = {o["Dept"].payload for o in registry["reorg"]}
        assert depts_world == {"Sales", "Manuf"}
        assert depts_hypo == {"Sales"}


class TestCrashRecoveryEndToEnd:
    def test_heap_survives_torn_tail(self, tmp_path):
        import os

        path = str(tmp_path / "heap.log")
        heap = PersistentHeap(path)
        heap.root("a", PObject("X", {"n": 1}))
        heap.commit()
        heap.close()

        # Simulate a crash mid-append: garbage at the end of the log.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("12:9999:{\"torn")
        size_before = os.path.getsize(path)
        assert size_before > 0

        recovered = PersistentHeap(path)
        assert recovered.get_root("a")["n"] == 1
        recovered.get_root("a")["n"] = 2
        recovered.commit()
        recovered.close()
        assert PersistentHeap(path).get_root("a")["n"] == 2
