"""Unit tests for the derived class hierarchy."""

from repro.core.orders import record
from repro.extents.database import Database
from repro.extents.hierarchy import (
    class_census,
    derived_hierarchy,
    render_hierarchy,
    roots_of,
    type_hierarchy,
)
from repro.types.kinds import INT, STRING, record_type

PERSON = record_type(Name=STRING)
EMPLOYEE = PERSON.extend(Emp_no=INT)
STUDENT = PERSON.extend(School=STRING)
WORKING = EMPLOYEE.extend(School=STRING)
MANAGER = EMPLOYEE.extend(Level=INT)


class TestTypeHierarchy:
    def test_simple_chain(self):
        edges = type_hierarchy([PERSON, EMPLOYEE, MANAGER])
        assert (EMPLOYEE, PERSON) in edges
        assert (MANAGER, EMPLOYEE) in edges
        # cover relation: no transitive edge
        assert (MANAGER, PERSON) not in edges

    def test_diamond(self):
        edges = type_hierarchy([PERSON, EMPLOYEE, STUDENT, WORKING])
        assert (WORKING, EMPLOYEE) in edges
        assert (WORKING, STUDENT) in edges
        assert (EMPLOYEE, PERSON) in edges
        assert (STUDENT, PERSON) in edges
        assert (WORKING, PERSON) not in edges
        assert len(edges) == 4

    def test_incomparable_types_no_edges(self):
        assert type_hierarchy([INT, STRING]) == []

    def test_duplicates_collapse(self):
        edges = type_hierarchy([PERSON, PERSON, EMPLOYEE])
        assert edges == [(EMPLOYEE, PERSON)]

    def test_roots(self):
        roots = roots_of([PERSON, EMPLOYEE, STUDENT, WORKING])
        assert roots == [PERSON]

    def test_multiple_roots(self):
        roots = roots_of([PERSON, INT])
        assert set(map(str, roots)) == {str(PERSON), "Int"}


class TestDerivedFromDatabase:
    def _db(self):
        db = Database()
        db.insert(record(Name="p"), PERSON)
        db.insert(record(Name="e", Emp_no=1), EMPLOYEE)
        db.insert(record(Name="w", Emp_no=2, School="x"), WORKING)
        db.insert(record(Name="w2", Emp_no=3, School="y"), WORKING)
        return db

    def test_hierarchy_from_carried_types(self):
        edges = derived_hierarchy(self._db())
        assert (EMPLOYEE, PERSON) in edges
        assert (WORKING, EMPLOYEE) in edges

    def test_census_monotone(self):
        census = class_census(self._db())
        assert census[str(PERSON)] == 4
        assert census[str(EMPLOYEE)] == 3
        assert census[str(WORKING)] == 2

    def test_census_explicit_types(self):
        census = class_census(self._db(), [PERSON, STUDENT])
        assert census[str(PERSON)] == 4
        assert census[str(STUDENT)] == 2  # the working students

    def test_render(self):
        db = self._db()
        text = render_hierarchy(
            [m.carried for m in db], class_census(db)
        )
        lines = text.splitlines()
        assert lines[0].startswith("{Name: String}")
        assert "[4]" in lines[0]
        # deeper types are indented further
        assert any(line.startswith("    ") for line in lines)

    def test_render_without_counts(self):
        text = render_hierarchy([PERSON, EMPLOYEE])
        assert "{Name: String}" in text
        assert "]" not in text  # no counts column without counts
