"""Unit tests for explicit extents and the extent registry."""

import pytest

from repro.core.orders import record
from repro.errors import ExtentError, NotInDatabaseError
from repro.extents.extent import Extent, ExtentRegistry
from repro.types.kinds import INT, STRING, record_type

PERSON_T = record_type(Name=STRING)
EMPLOYEE_T = record_type(Name=STRING, Emp_no=INT)


class TestExtent:
    def test_unconstrained_extent_takes_anything(self):
        e = Extent("misc")
        e.insert(3)
        e.insert("x")
        e.insert(record(Name="P"))
        assert len(e) == 3

    def test_integer_extents_are_just_sets_of_integers(self):
        """'We might well want to create a set of integers, but this set
        would certainly not contain all the integers created during
        execution' — an Int extent holds exactly what was inserted."""
        e = Extent("favourites", INT)
        e.insert(3)
        e.insert(7)
        unrelated = 42  # exists, but was never inserted
        assert len(e) == 2
        assert unrelated not in e

    def test_type_constraint_enforced(self):
        e = Extent("employees", EMPLOYEE_T)
        e.insert(record(Name="E", Emp_no=1))
        with pytest.raises(ExtentError):
            e.insert(record(Name="P"))  # a mere Person

    def test_subtype_members_accepted(self):
        e = Extent("persons", PERSON_T)
        e.insert(record(Name="E", Emp_no=1))  # an Employee is a Person
        assert len(e) == 1

    def test_delete(self):
        e = Extent("xs", INT)
        e.insert(1)
        e.delete(1)
        assert len(e) == 0

    def test_delete_absent_raises(self):
        with pytest.raises(NotInDatabaseError):
            Extent("xs").delete(1)

    def test_multiple_extents_same_type(self):
        """The separation the paper asks for: two independent extents of
        the same type."""
        current = Extent("current", EMPLOYEE_T)
        former = Extent("former", EMPLOYEE_T)
        current.insert(record(Name="A", Emp_no=1))
        former.insert(record(Name="B", Emp_no=2))
        assert len(current) == 1
        assert len(former) == 1

    def test_snapshot_is_hypothetical_state(self):
        e = Extent("world", PERSON_T)
        e.insert(record(Name="A"))
        hypothetical = e.snapshot()
        hypothetical.insert(record(Name="B"))
        hypothetical.delete(record(Name="A"))
        assert len(e) == 1  # the real world is untouched
        assert len(hypothetical) == 1
        assert record(Name="A") in e
        assert record(Name="B") in hypothetical

    def test_snapshot_name(self):
        e = Extent("world")
        assert e.snapshot().name == "world'"
        assert e.snapshot("branch").name == "branch"

    def test_transient_flag(self):
        scratch = Extent("memo", transient=True)
        assert scratch.transient
        assert "transient" in repr(scratch)

    def test_membership_and_iteration(self):
        e = Extent("xs")
        e.insert(1)
        e.insert(2)
        assert 1 in e
        assert list(e) == [1, 2]


class TestExtentRegistry:
    def test_create_and_lookup(self):
        reg = ExtentRegistry()
        created = reg.create("employees", EMPLOYEE_T)
        assert reg["employees"] is created
        assert "employees" in reg
        assert len(reg) == 1

    def test_duplicate_name_rejected(self):
        reg = ExtentRegistry()
        reg.create("e")
        with pytest.raises(ExtentError):
            reg.create("e")

    def test_missing_lookup_raises(self):
        with pytest.raises(ExtentError):
            ExtentRegistry()["nope"]

    def test_drop(self):
        reg = ExtentRegistry()
        reg.create("e")
        reg.drop("e")
        assert "e" not in reg

    def test_drop_missing_raises(self):
        with pytest.raises(ExtentError):
            ExtentRegistry().drop("nope")

    def test_adopt_snapshot(self):
        reg = ExtentRegistry()
        world = reg.create("world", PERSON_T)
        world.insert(record(Name="A"))
        reg.adopt(world.snapshot("hypothesis"))
        assert len(reg["hypothesis"]) == 1

    def test_adopt_duplicate_rejected(self):
        reg = ExtentRegistry()
        reg.create("world")
        with pytest.raises(ExtentError):
            reg.adopt(Extent("world"))

    def test_extents_of_type(self):
        reg = ExtentRegistry()
        reg.create("current", EMPLOYEE_T)
        reg.create("former", EMPLOYEE_T)
        reg.create("people", PERSON_T)
        assert len(reg.extents_of(EMPLOYEE_T)) == 2
        assert len(reg.extents_of(PERSON_T)) == 1

    def test_persistent_extents_exclude_transient(self):
        reg = ExtentRegistry()
        reg.create("db", PERSON_T)
        reg.create("memo", transient=True)
        names = {e.name for e in reg.persistent_extents()}
        assert names == {"db"}

    def test_iteration(self):
        reg = ExtentRegistry()
        reg.create("a")
        reg.create("b")
        assert {e.name for e in reg} == {"a", "b"}
