"""Unit tests for heterogeneous databases and the type index."""

import pytest

from repro.core.orders import record
from repro.errors import NotInDatabaseError
from repro.extents.database import Database, TypeIndexedDatabase
from repro.types.dynamic import dynamic, type_of
from repro.types.kinds import INT, STRING, TOP, record_type

PERSON_T = record_type(Name=STRING)
EMPLOYEE_T = record_type(Name=STRING, Emp_no=INT)


def _populate(db):
    db.insert(record(Name="P One"))
    db.insert(record(Name="E One", Emp_no=1))
    db.insert(record(Name="E Two", Emp_no=2))
    db.insert(42)
    return db


class TestDatabase:
    def test_insert_wraps_in_dynamic(self):
        db = Database()
        member = db.insert(3)
        assert type_of(member) == INT

    def test_insert_dynamic_passthrough(self):
        db = Database()
        d = dynamic(3)
        assert db.insert(d) is d

    def test_insert_with_explicit_type_seals(self):
        db = Database()
        member = db.insert(record(Name="X", Emp_no=1), PERSON_T)
        assert member.carried == PERSON_T

    def test_unconstrained_heterogeneity(self):
        """'This database is completely unconstrained: we can put any
        dynamic value in it.'"""
        db = _populate(Database())
        assert len(db) == 4

    def test_duplicates_allowed(self):
        db = Database()
        db.insert(3)
        db.insert(3)
        assert len(db) == 2

    def test_scan_by_subtype(self):
        db = _populate(Database())
        assert len(db.scan(PERSON_T)) == 3  # employees are persons
        assert len(db.scan(EMPLOYEE_T)) == 2
        assert len(db.scan(INT)) == 1

    def test_scan_top_returns_all(self):
        db = _populate(Database())
        assert len(db.scan(TOP)) == 4

    def test_remove(self):
        db = Database()
        member = db.insert(3)
        db.remove(member)
        assert len(db) == 0

    def test_remove_absent_raises(self):
        with pytest.raises(NotInDatabaseError):
            Database().remove(dynamic(3))

    def test_constructor_seeds(self):
        db = Database([1, "a", record(Name="X")])
        assert len(db) == 3

    def test_iteration_order(self):
        db = Database([1, 2])
        assert [m.value for m in db] == [1, 2]


class TestTypeIndexedDatabase:
    def test_scan_agrees_with_plain_database(self):
        plain = _populate(Database())
        indexed = _populate(TypeIndexedDatabase())
        for query in (PERSON_T, EMPLOYEE_T, INT, STRING, TOP):
            assert set(indexed.scan(query)) == set(plain.scan(query))

    def test_query_cache_invalidated_by_new_type(self):
        db = TypeIndexedDatabase()
        db.insert(record(Name="P"))
        assert len(db.scan(PERSON_T)) == 1
        # A brand-new carried type that also satisfies the query:
        db.insert(record(Name="E", Emp_no=1))
        assert len(db.scan(PERSON_T)) == 2

    def test_existing_type_fast_path(self):
        db = TypeIndexedDatabase()
        db.insert(record(Name="A", Emp_no=1))
        db.scan(PERSON_T)
        db.insert(record(Name="B", Emp_no=2))  # same carried type
        assert len(db.scan(PERSON_T)) == 2

    def test_remove_maintains_index(self):
        db = TypeIndexedDatabase()
        member = db.insert(record(Name="A", Emp_no=1))
        db.remove(member)
        assert db.scan(PERSON_T) == []

    def test_distinct_carried_types(self):
        db = _populate(TypeIndexedDatabase())
        assert len(db.distinct_carried_types()) == 3  # person, employee, int

    def test_structure_sharing(self):
        """The index shares the member objects — no copies."""
        db = TypeIndexedDatabase()
        member = db.insert(record(Name="A", Emp_no=1))
        assert db.scan(EMPLOYEE_T)[0] is member
        assert next(iter(db)) is member

    def test_repr(self):
        db = _populate(TypeIndexedDatabase())
        assert "4 values" in repr(db)
