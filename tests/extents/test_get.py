"""Unit tests for the generic Get function and its type."""

from repro.core.orders import record
from repro.extents.database import Database, TypeIndexedDatabase
from repro.extents.get import (
    GET_TYPE,
    get,
    get_dynamics,
    get_type_for,
    subtype_census,
)
from repro.types.dynamic import coerce
from repro.types.kinds import (
    DYNAMIC,
    INT,
    STRING,
    Exists,
    ForAll,
    FunctionType,
    ListType,
    TypeVar,
    record_type,
)
from repro.types.subtyping import is_subtype

PERSON_T = record_type(Name=STRING)
EMPLOYEE_T = record_type(Name=STRING, Emp_no=INT)
STUDENT_T = record_type(Name=STRING, School=STRING)
WORKING_STUDENT_T = record_type(Name=STRING, Emp_no=INT, School=STRING)


def _sample_db(cls=Database):
    db = cls()
    db.insert(record(Name="P One"))
    db.insert(record(Name="E One", Emp_no=1))
    db.insert(record(Name="S One", School="Penn"))
    db.insert(record(Name="WS One", Emp_no=2, School="Glasgow"))
    db.insert("a stray string")
    return db


class TestGetSemantics:
    def test_class_hierarchy_derived_from_type_hierarchy(self):
        """getPersons always returns a larger list than getEmployees."""
        db = _sample_db()
        persons = get(db, PERSON_T)
        employees = get(db, EMPLOYEE_T)
        assert len(persons) == 4
        assert len(employees) == 2
        # every employee appears among the persons
        for employee in employees:
            assert employee in persons

    def test_existential_result_elements(self):
        """Extracted objects 'may also have a type that is a subtype of
        Employee' — the working student comes back from Get[Employee]."""
        db = _sample_db()
        dynamics = get_dynamics(db, EMPLOYEE_T)
        carried = {d.carried for d in dynamics}
        assert WORKING_STUDENT_T in carried

    def test_every_result_coerces_at_query_type(self):
        db = _sample_db()
        for d in get_dynamics(db, PERSON_T):
            assert coerce(d, PERSON_T) is not None

    def test_get_on_base_type(self):
        db = Database([1, 2, "x"])
        assert get(db, INT) == [1, 2]

    def test_get_empty_result(self):
        db = Database([1, 2])
        assert get(db, PERSON_T) == []

    def test_works_on_indexed_database(self):
        plain = _sample_db(Database)
        indexed = _sample_db(TypeIndexedDatabase)
        assert sorted(map(repr, get(plain, PERSON_T))) == sorted(
            map(repr, get(indexed, PERSON_T))
        )

    def test_census_monotone_along_hierarchy(self):
        db = _sample_db()
        census = subtype_census(db, [PERSON_T, EMPLOYEE_T, WORKING_STUDENT_T])
        assert (
            census[str(PERSON_T)]
            >= census[str(EMPLOYEE_T)]
            >= census[str(WORKING_STUDENT_T)]
        )


class TestGetType:
    def test_get_type_shape(self):
        assert isinstance(GET_TYPE, ForAll)
        body = GET_TYPE.body
        assert isinstance(body, FunctionType)
        assert body.params == (ListType(DYNAMIC),)
        result = body.result
        assert isinstance(result, ListType)
        assert isinstance(result.element, Exists)

    def test_instantiation_at_employee(self):
        instantiated = get_type_for(EMPLOYEE_T)
        expected = FunctionType(
            [ListType(DYNAMIC)],
            ListType(Exists("t'", TypeVar("t'"), bound=EMPLOYEE_T)),
        )
        assert instantiated == expected

    def test_result_element_type_accepts_subtypes(self):
        """Working-Student ≤ ∃t' ≤ Employee. t' — the packing rule in
        action, which is what makes the untyped filtering statically
        sound for the caller."""
        element = Exists("t'", TypeVar("t'"), bound=EMPLOYEE_T)
        assert is_subtype(WORKING_STUDENT_T, element)
        assert is_subtype(EMPLOYEE_T, element)
        assert not is_subtype(STUDENT_T, element)

    def test_instantiations_ordered_contravariantly(self):
        """List[∃t'≤Employee] ≤ List[∃t'≤Person]: an employee extraction
        can be used wherever a person extraction is expected."""
        emp_result = ListType(Exists("t'", TypeVar("t'"), bound=EMPLOYEE_T))
        person_result = ListType(Exists("t'", TypeVar("t'"), bound=PERSON_T))
        assert is_subtype(emp_result, person_result)
