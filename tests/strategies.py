"""Shared hypothesis strategies for the repro test suite."""

from hypothesis import strategies as st

from repro.core.orders import Atom, PartialRecord

LABELS = tuple("abcdef")

atoms = st.one_of(
    st.integers(min_value=-3, max_value=3).map(Atom),
    st.sampled_from(["x", "y", "z"]).map(Atom),
    st.booleans().map(Atom),
)


def _records(children):
    return st.dictionaries(
        st.sampled_from(LABELS), children, max_size=4
    ).map(PartialRecord)


values = st.recursive(atoms, lambda children: _records(st.one_of(atoms, children)), max_leaves=8)
"""Arbitrary domain values: atoms and nested partial records.

Label and atom alphabets are deliberately tiny so that comparable and
consistent pairs occur often enough to exercise join/meet paths.
"""

records = _records(st.one_of(atoms, _records(atoms)))
"""Arbitrary (possibly nested) partial records."""

flat_records = st.dictionaries(st.sampled_from(LABELS), atoms, max_size=4).map(
    PartialRecord
)
"""Arbitrary flat partial records (atoms only)."""
