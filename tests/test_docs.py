"""The documentation link graph stays intact.

``scripts/check_docs.py`` is what CI runs; importing it here keeps the
same guarantee in the tier-1 suite — a doc rename that orphans a
relative link fails the tests, not just the CI docs step.
"""

import importlib.util
import os

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_checker():
    path = os.path.join(REPO_ROOT, "scripts", "check_docs.py")
    spec = importlib.util.spec_from_file_location("check_docs", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_markdown_files_are_discovered():
    checker = load_checker()
    names = {os.path.basename(p) for p in checker.markdown_files(REPO_ROOT)}
    assert {"README.md", "ARCHITECTURE.md", "LANGUAGE.md"} <= names


def test_relative_links_resolve():
    checker = load_checker()
    missing = checker.broken_links(REPO_ROOT)
    assert missing == [], "broken relative markdown links: %r" % missing


def test_checker_flags_a_broken_link(tmp_path):
    checker = load_checker()
    (tmp_path / "doc.md").write_text(
        "# Anchor\n\n"
        "see [the design](DESIGN.md) and [upstream](https://example.com) "
        "and [a section](#anchor)\n",
        encoding="utf-8",
    )
    missing = checker.broken_links(str(tmp_path))
    assert missing == [("doc.md", "DESIGN.md")]
    (tmp_path / "DESIGN.md").write_text("# design\n", encoding="utf-8")
    assert checker.broken_links(str(tmp_path)) == []


def test_checker_flags_a_missing_in_page_anchor(tmp_path):
    checker = load_checker()
    (tmp_path / "doc.md").write_text(
        "# Overview\n\nsee [a section](#no-such-heading)\n",
        encoding="utf-8",
    )
    assert checker.broken_links(str(tmp_path)) == [
        ("doc.md", "#no-such-heading")
    ]


def test_checker_validates_cross_file_anchors(tmp_path):
    checker = load_checker()
    (tmp_path / "target.md").write_text(
        "# Real Section\n\nbody\n", encoding="utf-8"
    )
    (tmp_path / "doc.md").write_text(
        "good: [there](target.md#real-section)\n"
        "bad: [nope](target.md#ghost-section)\n",
        encoding="utf-8",
    )
    assert checker.broken_links(str(tmp_path)) == [
        ("doc.md", "target.md#ghost-section")
    ]


def test_anchor_slugs_match_github(tmp_path):
    checker = load_checker()
    (tmp_path / "doc.md").write_text(
        "# The `intern` / `extern` pair!\n\n"
        "## Heading\n\n## Heading\n\n"
        "[ticks+punctuation](#the-intern--extern-pair)\n"
        "[first](#heading) [second](#heading-1)\n",
        encoding="utf-8",
    )
    assert checker.broken_links(str(tmp_path)) == []


def test_headings_inside_fences_are_not_anchors(tmp_path):
    checker = load_checker()
    (tmp_path / "doc.md").write_text(
        "# Real\n\n```\n# not a heading\n```\n\n"
        "[fake](#not-a-heading)\n",
        encoding="utf-8",
    )
    assert checker.broken_links(str(tmp_path)) == [
        ("doc.md", "#not-a-heading")
    ]


def test_code_blocks_are_not_links(tmp_path):
    checker = load_checker()
    (tmp_path / "doc.md").write_text(
        "```\nmap(f, get[Employee](db));\n```\n"
        "and inline `get[Person](db)` too\n",
        encoding="utf-8",
    )
    assert checker.broken_links(str(tmp_path)) == []
