"""The blocking client: addresses, typed errors, lifecycle."""

import pytest

from repro.errors import RemoteError, SessionClosedError
from repro.obs.metrics import reset_metrics
from repro.server import Client, ServerThread, parse_address


@pytest.fixture(autouse=True)
def clean_metrics():
    reset_metrics()
    yield
    reset_metrics()


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("db.example.org:7474") == ("db.example.org", 7474)

    def test_bare_port_means_localhost(self):
        assert parse_address("7474") == ("127.0.0.1", 7474)

    def test_empty_host_means_localhost(self):
        assert parse_address(":7474") == ("127.0.0.1", 7474)

    def test_empty_address(self):
        with pytest.raises(ValueError, match="empty address"):
            parse_address("   ")

    def test_bad_port(self):
        with pytest.raises(ValueError, match="bad port"):
            parse_address("host:seventy")

    def test_port_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            parse_address("host:70000")


class TestClient:
    def test_context_manager_says_bye(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                assert client.run("1 + 1")["value"] == "2"
            # Closed: further use raises, locally, without a socket.
            with pytest.raises(SessionClosedError, match="closed"):
                client.run("1")

    def test_remote_error_carries_kind(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.stat("flamegraph")
                assert excinfo.value.kind == "EvalError"
                assert "unknown stat kind" in str(excinfo.value)

    def test_server_stop_surfaces_as_session_closed(self):
        server = ServerThread().start()
        client = Client(server.host, server.port)
        assert client.run("2")["value"] == "2"
        server.stop()
        with pytest.raises(SessionClosedError):
            client.run("3")

    def test_connect_to_dead_port_raises_os_error(self):
        with ServerThread() as server:
            port = server.port
        # The server (and its port) are gone now.
        with pytest.raises(OSError):
            Client("127.0.0.1", port, timeout=2.0)

    def test_describe_names_the_session(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                assert "session s01" in client.describe()
                assert repr(client).startswith("Client(")

    def test_request_ids_are_sequential(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run("1")
                client.stat("health")
                assert client._next_id == 2
