"""Transactions over the wire: two sessions, one server, one store.

The acceptance scenarios from TRANSACTIONS.md run here against a real
:class:`ServerThread` on an ephemeral port:

* a reader pinned to its snapshot never observes a concurrent writer's
  committed (let alone uncommitted) state until it ends its own
  transaction;
* two writers with overlapping sweeps produce exactly one commit and
  one retryable :class:`~repro.errors.TransactionConflictError` —
  first committer wins;
* the REPL's ``:begin``/``:commit``/``:abort`` drive the same frames
  in connected mode, and the worker pool genuinely overlaps sessions.
"""

import threading
import time

import pytest

from repro.errors import RemoteError, TransactionConflictError
from repro.lang.repl import Repl
from repro.obs import events, monitor, profile, slowlog, trace
from repro.obs.metrics import REGISTRY, reset_metrics
from repro.server import Client, ServerThread
from repro.server.broker import SessionBroker, default_workers
from repro.server.session import Session


@pytest.fixture(autouse=True)
def clean_globals():
    reset_metrics()
    previous_journal = events.CURRENT
    previous_monitor = monitor.CURRENT
    previous_slowlog = slowlog.CURRENT
    previous_tracer = trace.CURRENT
    previous_profiler = profile.CURRENT
    yield
    events.set_journal(previous_journal)
    monitor.set_monitor(previous_monitor)
    slowlog.set_slowlog(previous_slowlog)
    trace.set_tracer(previous_tracer)
    profile.set_profiler(previous_profiler)
    reset_metrics()


def read_counter(client, handle="counter"):
    reply = client.run('coerce intern("%s") to Int' % handle)
    return int(str(reply["value"]).split(":")[0].strip())


class TestWireTransactions:
    def test_reader_pinned_to_snapshot(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as writer, Client(
                server.host, server.port
            ) as reader:
                writer.run('extern("counter", dynamic 1);')
                reply = reader.begin()
                assert reply["action"] == "begin"
                assert "epoch" in reply
                assert read_counter(reader) == 1
                # The writer commits (autocommit) while the reader's
                # transaction is open — the reader must not see it.
                writer.run('extern("counter", dynamic 2);')
                assert read_counter(writer) == 2
                assert read_counter(reader) == 1
                # A read-only commit ends the transaction; the next
                # read runs at the latest state.
                reply = reader.commit()
                assert reply["action"] == "commit"
                assert read_counter(reader) == 2

    def test_uncommitted_writes_stay_private(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as writer, Client(
                server.host, server.port
            ) as reader:
                writer.run('extern("counter", dynamic 1);')
                writer.begin()
                writer.run('extern("counter", dynamic 99);')
                # The writer reads its own buffered write...
                assert read_counter(writer) == 99
                # ...but nobody else does until commit.
                assert read_counter(reader) == 1
                writer.commit()
                assert read_counter(reader) == 99

    def test_first_committer_wins_over_the_wire(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as a, Client(
                server.host, server.port
            ) as b:
                a.run('extern("counter", dynamic 0);')
                a.begin()
                b.begin()
                a.run('extern("counter", dynamic 10);')
                b.run('extern("counter", dynamic 20);')
                a.commit()
                with pytest.raises(TransactionConflictError) as exc_info:
                    b.commit()
                # The conflict detail survives the wire: remote retry
                # loops see the contested handles and the winning epoch.
                assert "counter" in exc_info.value.keys
                assert exc_info.value.winner_epoch is not None
                assert exc_info.value.retryable is True
                # Exactly one write survived: the first committer's.
                assert read_counter(a) == 10
                # The loser's transaction is over — a plain retry works.
                b.begin()
                b.run('extern("counter", dynamic 20);')
                b.commit()
                assert read_counter(a) == 20

    def test_disjoint_handles_both_commit(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as a, Client(
                server.host, server.port
            ) as b:
                a.begin()
                b.begin()
                a.run('extern("left", dynamic 1);')
                b.run('extern("right", dynamic 2);')
                a.commit()
                b.commit()  # no overlap, no conflict
                assert read_counter(a, "left") == 1
                assert read_counter(a, "right") == 2

    def test_abort_discards_buffered_writes(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run('extern("counter", dynamic 5);')
                client.begin()
                client.run('extern("counter", dynamic 6);')
                reply = client.abort()
                assert reply["action"] == "abort"
                assert read_counter(client) == 5

    def test_transaction_guards(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                with pytest.raises(RemoteError, match="no transaction"):
                    client.commit()
                with pytest.raises(RemoteError, match="no transaction"):
                    client.abort()
                client.begin()
                with pytest.raises(RemoteError, match="already active"):
                    client.begin()
                client.abort()

    def test_disconnect_aborts_open_transaction(self):
        """A dropped connection must not pin its snapshot (or leak an
        active transaction) forever."""
        with ServerThread() as server:
            client = Client(server.host, server.port)
            client.begin()
            client.run('extern("x", dynamic 1);')
            client.close()
            # The server releases the session; its transaction aborts.
            txns = server.server.broker.txns
            deadline = time.time() + 5.0
            while txns.active_transactions() and time.time() < deadline:
                time.sleep(0.05)
            assert txns.active_transactions() == 0
            with Client(server.host, server.port) as other:
                with pytest.raises(RemoteError):
                    other.run('coerce intern("x") to Int')

    def test_txn_metrics_count_conflicts(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as a, Client(
                server.host, server.port
            ) as b:
                a.run('extern("counter", dynamic 0);')
                a.begin()
                b.begin()
                a.run('extern("counter", dynamic 1);')
                b.run('extern("counter", dynamic 2);')
                a.commit()
                with pytest.raises(TransactionConflictError):
                    b.commit()
        assert REGISTRY.value("txn.conflict") >= 1
        assert REGISTRY.value("txn.commit") >= 1
        assert REGISTRY.value("txn.begin") >= 2


class TestReplTransactions:
    def test_repl_commands_local(self):
        out = []
        repl = Repl(writer=out.append)
        repl.handle(":begin")
        repl.handle('extern("x", dynamic 5);')
        repl.handle(":commit")
        assert any("transaction open" in line for line in out)
        assert any("committed epoch" in line for line in out)

    def test_repl_abort_and_guards(self):
        out = []
        repl = Repl(writer=out.append)
        repl.handle(":commit")
        assert any("no transaction is active" in line for line in out)
        repl.handle(":begin")
        repl.handle(":abort")
        assert any("transaction aborted" in line for line in out)
        repl.handle(":begin junk")
        assert "usage: :begin" in out

    def test_repl_conflict_over_the_wire(self):
        with ServerThread() as server:
            out = []
            repl = Repl(writer=out.append)
            repl.handle(":connect %s" % server.address)
            try:
                with Client(server.host, server.port) as rival:
                    repl.handle('extern("counter", dynamic 0);')
                    repl.handle(":begin")
                    rival.begin()
                    repl.handle('extern("counter", dynamic 1);')
                    rival.run('extern("counter", dynamic 2);')
                    rival.commit()  # first committer
                    repl.handle(":commit")  # loser: error text, no crash
                    assert any(
                        "error:" in line and "conflict" in line
                        for line in out
                    ), out
            finally:
                repl.handle(":quit")


class TestWorkerPool:
    def test_default_workers_bounds(self):
        assert 2 <= default_workers() <= 8

    def test_broker_validates_workers(self):
        with pytest.raises(ValueError):
            SessionBroker(workers=0)

    def test_sessions_share_one_transaction_manager(self):
        broker = SessionBroker(workers=2)
        try:
            a = broker._open_session()
            b = broker._open_session()
            assert a.interpreter._txns is broker.txns
            assert b.interpreter._txns is broker.txns
        finally:
            broker.close()

    def test_pool_overlaps_sessions(self):
        """Two slow queries on two connections overlap on the pool:
        total wall time is well under the serial sum."""

        class SlowSession(Session):
            delay = 0.3

            def run(self, source, mode="eval", **kwargs):
                time.sleep(self.delay)
                return super().run(source, mode, **kwargs)

        with ServerThread(session_factory=SlowSession, workers=4) as server:
            with Client(server.host, server.port) as a, Client(
                server.host, server.port
            ) as b:
                results = {}

                def drive(name, client):
                    start = time.perf_counter()
                    client.run("1 + 1;")
                    results[name] = time.perf_counter() - start

                threads = [
                    threading.Thread(target=drive, args=("a", a)),
                    threading.Thread(target=drive, args=("b", b)),
                ]
                begin = time.perf_counter()
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                elapsed = time.perf_counter() - begin
        # Serial execution would be >= 0.6s; the pool runs them together.
        assert elapsed < 0.55, "sessions did not overlap: %.3fs" % elapsed

    def test_server_reports_worker_gauge(self):
        with ServerThread(workers=3):
            assert REGISTRY.gauges().get("server.workers") == 3.0
