"""The wire format: framing, limits, and every way a frame can go bad."""

import asyncio
import json
import struct

import pytest

from repro.errors import FrameTooLargeError, ProtocolError, TruncatedFrameError
from repro.server import protocol
from repro.server.protocol import (
    HEADER,
    MAX_FRAME,
    FrameDecoder,
    decode_payload,
    encode_frame,
    error_frame,
    read_frame,
)


class TestEncodeFrame:
    def test_round_trip(self):
        frame = encode_frame({"type": "run", "source": "1 + 1", "id": 7})
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_payload(frame[HEADER.size :]) == {
            "type": "run",
            "source": "1 + 1",
            "id": 7,
        }

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(["type", "run"])

    def test_oversized_payload_rejected(self):
        with pytest.raises(FrameTooLargeError) as excinfo:
            encode_frame({"type": "run", "source": "x" * 100}, max_frame=64)
        assert "exceeds the 64 byte limit" in str(excinfo.value)

    def test_unicode_source_measured_in_bytes(self):
        message = {"type": "run", "source": "é" * 40}
        frame = encode_frame(message)
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_payload(frame[HEADER.size :]) == message


class TestDecodePayload:
    def test_bad_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_payload(b"{nope")

    def test_bad_utf8(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            decode_payload(b"\xff\xfe")

    def test_non_object_payload(self):
        with pytest.raises(ProtocolError, match="must be a JSON object"):
            decode_payload(json.dumps([1, 2]).encode())

    def test_missing_type(self):
        with pytest.raises(ProtocolError, match="no string 'type'"):
            decode_payload(json.dumps({"source": "1"}).encode())

    def test_non_string_type(self):
        with pytest.raises(ProtocolError, match="no string 'type'"):
            decode_payload(json.dumps({"type": 3}).encode())


class TestErrorFrame:
    def test_shape(self):
        assert error_frame("boom") == {
            "type": "error",
            "error": "boom",
            "kind": "protocol",
        }

    def test_echoes_request_id(self):
        assert error_frame("boom", kind="busy", request_id=9)["id"] == 9


class TestFrameDecoder:
    def test_single_frame(self):
        decoder = FrameDecoder()
        messages = decoder.feed(encode_frame({"type": "bye"}))
        assert messages == [{"type": "bye"}]
        assert decoder.pending == 0

    def test_several_frames_in_one_chunk(self):
        chunk = encode_frame({"type": "result", "id": 1}) + encode_frame(
            {"type": "bye", "reason": "shutdown"}
        )
        decoder = FrameDecoder()
        messages = decoder.feed(chunk)
        assert [m["type"] for m in messages] == ["result", "bye"]

    def test_byte_at_a_time(self):
        frame = encode_frame({"type": "hello", "protocol": 1})
        decoder = FrameDecoder()
        collected = []
        for i in range(len(frame)):
            collected.extend(decoder.feed(frame[i : i + 1]))
        assert collected == [{"type": "hello", "protocol": 1}]

    def test_split_across_header_boundary(self):
        frame = encode_frame({"type": "bye"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[:2]) == []
        assert decoder.pending == 2
        assert decoder.feed(frame[2:]) == [{"type": "bye"}]

    def test_clean_eof(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame({"type": "bye"}))
        assert decoder.feed(b"") == []

    def test_truncated_eof(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame({"type": "bye"})[:5])
        with pytest.raises(TruncatedFrameError, match="partial frame"):
            decoder.feed(b"")

    def test_oversized_header_condemns_without_buffering(self):
        decoder = FrameDecoder(max_frame=128)
        # Only the header arrives — the decoder must refuse from the
        # declared length alone, before any payload exists.
        with pytest.raises(FrameTooLargeError):
            decoder.feed(struct.pack(">I", 1 << 20))

    def test_truncated_header_then_completion(self):
        # A header split one byte short of complete must buffer cleanly
        # and resolve once the missing byte (and payload) arrive.
        frame = encode_frame({"type": "obs", "what": "spans"})
        decoder = FrameDecoder()
        assert decoder.feed(frame[: HEADER.size - 1]) == []
        assert decoder.pending == HEADER.size - 1
        messages = decoder.feed(frame[HEADER.size - 1 :])
        assert messages == [{"type": "obs", "what": "spans"}]
        assert decoder.pending == 0

    def test_interleaved_partial_frames(self):
        # Two frames arriving as three chunks whose boundaries fall
        # mid-frame: [frame1 head][frame1 tail + frame2 head][tail].
        first = encode_frame({"type": "result", "id": 1, "value": "a"})
        second = encode_frame({"type": "stat", "id": 2, "kind": "health"})
        stream = first + second
        cuts = (len(first) - 3, len(first) + 5)
        decoder = FrameDecoder()
        collected = []
        collected.extend(decoder.feed(stream[: cuts[0]]))
        assert collected == []  # first frame still short three bytes
        collected.extend(decoder.feed(stream[cuts[0] : cuts[1]]))
        assert [m["type"] for m in collected] == ["result"]
        assert decoder.pending == 5  # second frame's head is buffered
        collected.extend(decoder.feed(stream[cuts[1] :]))
        assert [m["type"] for m in collected] == ["result", "stat"]
        assert [m["id"] for m in collected] == [1, 2]

    def test_default_limit_is_four_mebibytes(self):
        assert MAX_FRAME == 4 * 1024 * 1024


class _StubReader:
    """An asyncio-reader stand-in driven by a byte script."""

    def __init__(self, data):
        self._data = data
        self._pos = 0

    async def readexactly(self, n):
        chunk = self._data[self._pos : self._pos + n]
        self._pos += len(chunk)
        if len(chunk) < n:
            raise asyncio.IncompleteReadError(chunk, n)
        return chunk


class TestReadFrame:
    def test_reads_one_frame(self):
        reader = _StubReader(encode_frame({"type": "stat", "kind": "health"}))
        message = asyncio.run(read_frame(reader))
        assert message == {"type": "stat", "kind": "health"}

    def test_clean_eof_returns_none(self):
        assert asyncio.run(read_frame(_StubReader(b""))) is None

    def test_eof_inside_header(self):
        with pytest.raises(TruncatedFrameError, match="frame header"):
            asyncio.run(read_frame(_StubReader(b"\x00\x00")))

    def test_eof_inside_payload(self):
        frame = encode_frame({"type": "bye"})
        with pytest.raises(TruncatedFrameError, match="payload"):
            asyncio.run(read_frame(_StubReader(frame[:-3])))

    def test_oversized_rejected_from_header(self):
        data = struct.pack(">I", 4096) + b"x" * 4096
        with pytest.raises(FrameTooLargeError):
            asyncio.run(read_frame(_StubReader(data), max_frame=1024))

    def test_protocol_version_is_three(self):
        assert protocol.PROTOCOL_VERSION == 3

    def test_old_versions_still_supported(self):
        # v1/v2 clients keep connecting: the supported set reaches back
        # to the first wire version.
        assert protocol.MIN_PROTOCOL_VERSION == 1
        assert protocol.SUPPORTED_PROTOCOLS == frozenset({1, 2, 3})

    def test_obs_is_a_frame_type(self):
        assert "obs" in protocol.FRAME_TYPES

    def test_transaction_frame_types(self):
        for frame_type in ("begin", "commit", "abort", "txn"):
            assert frame_type in protocol.FRAME_TYPES
