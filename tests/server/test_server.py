"""The server end to end: handshake, dispatch, limits, drain, hostility.

Integration tests run a real :class:`ServerThread` on an ephemeral port
and talk to it with the blocking :class:`Client` or a raw socket (for
the deliberately malformed traffic a Client refuses to send).
"""

import socket
import struct
import threading
import time
from collections import deque

import pytest

from repro.errors import RemoteError, SessionClosedError
from repro.obs import events, monitor, slowlog
from repro.obs.metrics import REGISTRY, reset_metrics
from repro.server import Client, ServerThread, protocol
from repro.server.session import Session


@pytest.fixture(autouse=True)
def clean_globals():
    reset_metrics()
    previous_journal = events.CURRENT
    previous_monitor = monitor.CURRENT
    previous_slowlog = slowlog.CURRENT
    yield
    events.set_journal(previous_journal)
    monitor.set_monitor(previous_monitor)
    slowlog.set_slowlog(previous_slowlog)
    reset_metrics()


class RawConn:
    """A hand-cranked connection for protocol-abuse tests."""

    def __init__(self, port, handshake=True):
        self.sock = socket.create_connection(
            ("127.0.0.1", port), timeout=5.0
        )
        self.decoder = protocol.FrameDecoder()
        self.pending = deque()
        if handshake:
            reply = self.hello()
            assert reply["type"] == "hello", reply

    def hello(self, version=protocol.PROTOCOL_VERSION):
        self.send({"type": "hello", "protocol": version, "client": "raw"})
        return self.read()

    def send(self, message):
        self.sock.sendall(protocol.encode_frame(message))

    def send_raw(self, data):
        self.sock.sendall(data)

    def read(self):
        while True:
            if self.pending:
                return self.pending.popleft()
            chunk = self.sock.recv(65536)
            self.pending.extend(self.decoder.feed(chunk))
            if not self.pending and chunk == b"":
                return None

    def close(self):
        self.sock.close()


class SlowSession(Session):
    """A session whose queries dawdle — for drain and disconnect tests."""

    delay = 0.4

    def run(self, source, mode="eval"):
        time.sleep(self.delay)
        return super().run(source, mode)


class TestHandshake:
    def test_grants_session_and_limits(self):
        with ServerThread(limit=3) as server:
            with Client(server.host, server.port) as client:
                assert client.session_id == "s01"
                assert client.server == "repro-server/1"
                assert client.limits["max_frame"] == protocol.MAX_FRAME

    def test_version_mismatch_rejected(self):
        with ServerThread() as server:
            conn = RawConn(server.port, handshake=False)
            reply = conn.hello(version=99)
            assert reply["type"] == "error"
            assert reply["kind"] == "version"
            assert "server speaks 1" in reply["error"]
            conn.close()

    def test_first_frame_must_be_hello(self):
        with ServerThread() as server:
            conn = RawConn(server.port, handshake=False)
            conn.send({"type": "run", "source": "1"})
            reply = conn.read()
            assert reply["type"] == "error"
            assert "expected a hello frame" in reply["error"]
            conn.close()


class TestDispatch:
    def test_run_and_stat_round_trip(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run("let x = 6 * 7")
                assert client.run("x")["value"] == "42"
                text = client.stat("sessions")["text"]
                assert "1 active" in text

    def test_language_errors_come_back_typed(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.run("1 + true")
                assert excinfo.value.kind == "TypeCheckError"
                # The connection survives a failed request.
                assert client.run("2")["value"] == "2"

    def test_bad_run_frame_is_an_error_not_a_hangup(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send({"type": "run", "source": 42, "id": 1})
            reply = conn.read()
            assert reply["type"] == "error"
            assert reply["id"] == 1
            conn.send({"type": "run", "source": "1", "id": 2})
            assert conn.read()["type"] == "result"
            conn.close()

    def test_unknown_frame_type_keeps_connection_open(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send({"type": "hello", "protocol": 1, "id": 5})
            reply = conn.read()
            assert reply["type"] == "error"
            assert "unknown message type" in reply["error"]
            assert reply["id"] == 5
            conn.send({"type": "run", "source": "3 * 3", "id": 6})
            assert conn.read()["value"] == "9"
            conn.close()

    def test_request_metrics_recorded(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run("1")
                client.stat("health")
        assert REGISTRY.counter("server.requests").value >= 2
        histogram = REGISTRY.histogram("server.request.seconds")
        assert histogram.count >= 2


class TestProtocolAbuse:
    def test_oversized_frame_refused_and_hung_up(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send_raw(struct.pack(">I", protocol.MAX_FRAME + 1))
            reply = conn.read()
            assert reply["type"] == "error"
            assert "exceeds" in reply["error"]
            assert conn.read() is None  # server hung up
            conn.close()

    def test_truncated_frame_leaves_server_alive(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send_raw(struct.pack(">I", 100) + b'{"type":')
            conn.close()  # vanish mid-frame
            # The server shrugs it off and keeps serving.
            with Client(server.host, server.port) as client:
                assert client.run("1 + 1")["value"] == "2"

    def test_garbage_payload_answered_with_error(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send_raw(struct.pack(">I", 4) + b"{{{{")
            reply = conn.read()
            assert reply["type"] == "error"
            assert "JSON" in reply["error"]
            conn.close()

    def test_client_disconnect_mid_query_leaves_others_working(self):
        with ServerThread(session_factory=SlowSession) as server:
            victim = RawConn(server.port)
            victim.send({"type": "run", "source": "1 + 1", "id": 1})
            victim.close()  # gone before the reply exists
            with Client(server.host, server.port) as client:
                assert client.run("20 + 1")["value"] == "21"
        assert REGISTRY.counter("server.connections.lost").value >= 0


class TestIsolationOverTheWire:
    def test_private_bindings_shared_extents(self, tmp_path):
        store = str(tmp_path / "shared.log")
        with ServerThread(store=store) as server:
            with Client(server.host, server.port) as first, Client(
                server.host, server.port
            ) as second:
                assert first.session_id != second.session_id
                first.run("let secret = 41")
                first.run('extern("vault", dynamic secret);')
                with pytest.raises(RemoteError) as excinfo:
                    second.run("secret")
                assert "unbound variable" in str(excinfo.value)
                reply = second.run('coerce intern("vault") to Int + 1')
                assert reply["value"] == "42"

    def test_memory_extents_shared_without_a_store(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as first, Client(
                server.host, server.port
            ) as second:
                first.run('extern("m", dynamic [1, 2, 3]);')
                reply = second.run(
                    'sum(coerce intern("m") to List[Int])'
                )
                assert reply["value"] == "6"


class TestAdmission:
    def test_connection_limit_bounces_with_busy(self):
        with ServerThread(limit=1, queue_limit=0) as server:
            first = Client(server.host, server.port)
            with pytest.raises(RemoteError) as excinfo:
                Client(server.host, server.port)
            assert excinfo.value.kind == "busy"
            assert "connection limit" in str(excinfo.value)
            first.close()
        assert REGISTRY.counter("server.connections.rejected").value == 1

    def test_queued_connection_gets_the_freed_slot(self):
        with ServerThread(limit=1, queue_limit=1) as server:
            first = Client(server.host, server.port)
            admitted = {}

            def wait_for_slot():
                with Client(server.host, server.port) as second:
                    admitted["session"] = second.session_id
                    admitted["value"] = second.run("5 * 5")["value"]

            waiter = threading.Thread(target=wait_for_slot)
            waiter.start()
            time.sleep(0.2)  # let the waiter reach the queue
            assert not admitted  # still parked, not rejected
            first.close()
            waiter.join(timeout=5.0)
            assert admitted["value"] == "25"
        assert REGISTRY.counter("server.connections.queued").value == 1

    def test_sessions_stat_counts_peers(self):
        with ServerThread(limit=4) as server:
            with Client(server.host, server.port) as first, Client(
                server.host, server.port
            ) as second:
                text = first.stat("sessions")["text"]
                assert "2 active / 4 limit" in text
                assert second.session_id in text


class TestIdleTimeout:
    def test_idle_session_gets_bye(self):
        with ServerThread(idle_timeout=0.2) as server:
            conn = RawConn(server.port)
            reply = conn.read()  # blocks until the server times us out
            assert reply == {"type": "bye", "reason": "idle"}
            conn.close()
        assert REGISTRY.counter("server.sessions.idle_closed").value == 1


class TestGracefulDrain:
    def test_in_flight_query_finishes_before_shutdown(self):
        server = ServerThread(session_factory=SlowSession).start()
        client = Client(server.host, server.port)
        finished = {}

        def slow_query():
            finished["reply"] = client.run("6 * 7")

        query = threading.Thread(target=slow_query)
        query.start()
        time.sleep(0.1)  # the run frame is in flight
        server.stop()  # drain: must deliver the result, then bye
        query.join(timeout=5.0)
        assert finished["reply"]["value"] == "42"
        # The connection was then closed by the shutdown bye.
        with pytest.raises(SessionClosedError, match="bye"):
            client.run("1")
        assert REGISTRY.counter("server.shutdown.drained").value >= 1

    def test_idle_connections_get_shutdown_bye(self):
        server = ServerThread().start()
        conn = RawConn(server.port)
        server.stop()
        assert conn.read() == {"type": "bye", "reason": "shutdown"}
        conn.close()

    def test_new_connections_refused_while_draining(self):
        server = ServerThread().start()
        server.stop()
        with pytest.raises((ConnectionError, OSError)):
            Client(server.host, server.port)


class TestHealthOverTheWire:
    def test_health_stat_includes_session_probe(self):
        with ServerThread(limit=2) as server:
            with Client(server.host, server.port) as client:
                text = client.stat("health")["text"]
                assert "server.sessions" in text
                assert "1 of 2 session(s) active" in text

    def test_metrics_stat_parses_as_openmetrics(self):
        from repro.obs.monitor import parse_openmetrics

        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run("1")
                parsed = parse_openmetrics(client.stat("metrics")["text"])
                assert parsed["eof"]
                assert any(
                    name.startswith("server_requests")
                    for name in parsed["counters"]
                )
