"""The server end to end: handshake, dispatch, limits, drain, hostility.

Integration tests run a real :class:`ServerThread` on an ephemeral port
and talk to it with the blocking :class:`Client` or a raw socket (for
the deliberately malformed traffic a Client refuses to send).
"""

import socket
import struct
import threading
import time
from collections import deque

import pytest

from repro.errors import RemoteError, SessionClosedError
from repro.obs import events, monitor, profile, slowlog, trace
from repro.obs.metrics import REGISTRY, reset_metrics
from repro.server import Client, ServerThread, protocol
from repro.server.session import Session


@pytest.fixture(autouse=True)
def clean_globals():
    reset_metrics()
    previous_journal = events.CURRENT
    previous_monitor = monitor.CURRENT
    previous_slowlog = slowlog.CURRENT
    previous_tracer = trace.CURRENT
    previous_profiler = profile.CURRENT
    yield
    events.set_journal(previous_journal)
    monitor.set_monitor(previous_monitor)
    slowlog.set_slowlog(previous_slowlog)
    trace.set_tracer(previous_tracer)
    profile.set_profiler(previous_profiler)
    reset_metrics()


class RawConn:
    """A hand-cranked connection for protocol-abuse tests."""

    def __init__(self, port, handshake=True):
        self.sock = socket.create_connection(
            ("127.0.0.1", port), timeout=5.0
        )
        self.decoder = protocol.FrameDecoder()
        self.pending = deque()
        if handshake:
            reply = self.hello()
            assert reply["type"] == "hello", reply

    def hello(self, version=protocol.PROTOCOL_VERSION):
        self.send({"type": "hello", "protocol": version, "client": "raw"})
        return self.read()

    def send(self, message):
        self.sock.sendall(protocol.encode_frame(message))

    def send_raw(self, data):
        self.sock.sendall(data)

    def read(self):
        while True:
            if self.pending:
                return self.pending.popleft()
            chunk = self.sock.recv(65536)
            self.pending.extend(self.decoder.feed(chunk))
            if not self.pending and chunk == b"":
                return None

    def close(self):
        self.sock.close()


class SlowSession(Session):
    """A session whose queries dawdle — for drain and disconnect tests."""

    delay = 0.4

    def run(self, source, mode="eval", **kwargs):
        time.sleep(self.delay)
        return super().run(source, mode, **kwargs)


class TestHandshake:
    def test_grants_session_and_limits(self):
        with ServerThread(limit=3) as server:
            with Client(server.host, server.port) as client:
                assert client.session_id == "s01"
                assert client.server == "repro-server/3"
                assert client.limits["max_frame"] == protocol.MAX_FRAME

    def test_version_mismatch_rejected(self):
        with ServerThread() as server:
            conn = RawConn(server.port, handshake=False)
            reply = conn.hello(version=99)
            assert reply["type"] == "error"
            assert reply["kind"] == "version"
            assert "server speaks 3" in reply["error"]
            conn.close()

    def test_old_v1_client_still_connects(self):
        # Protocol 2 added obs frames and trace contexts, but a v1
        # client's frames are a strict subset — the server must accept
        # it and echo the *client's* version back.
        with ServerThread() as server:
            conn = RawConn(server.port, handshake=False)
            reply = conn.hello(version=1)
            assert reply["type"] == "hello"
            assert reply["protocol"] == 1
            conn.send({"type": "run", "source": "6 * 7", "id": 1})
            assert conn.read()["value"] == "42"
            conn.close()

    def test_hello_reply_carries_clock_reading(self):
        with ServerThread() as server:
            conn = RawConn(server.port, handshake=False)
            reply = conn.hello()
            clock = reply["clock"]
            assert isinstance(clock["mono"], float)
            assert isinstance(clock["wall"], float)
            conn.close()

    def test_client_estimates_clock_offset(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                # Same process, same perf_counter: the estimate must be
                # within the handshake round-trip of zero.
                assert client.clock_offset is not None
                assert abs(client.clock_offset) < 1.0

    def test_first_frame_must_be_hello(self):
        with ServerThread() as server:
            conn = RawConn(server.port, handshake=False)
            conn.send({"type": "run", "source": "1"})
            reply = conn.read()
            assert reply["type"] == "error"
            assert "expected a hello frame" in reply["error"]
            conn.close()


class TestDispatch:
    def test_run_and_stat_round_trip(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run("let x = 6 * 7")
                assert client.run("x")["value"] == "42"
                text = client.stat("sessions")["text"]
                assert "1 active" in text

    def test_language_errors_come_back_typed(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                with pytest.raises(RemoteError) as excinfo:
                    client.run("1 + true")
                assert excinfo.value.kind == "TypeCheckError"
                # The connection survives a failed request.
                assert client.run("2")["value"] == "2"

    def test_bad_run_frame_is_an_error_not_a_hangup(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send({"type": "run", "source": 42, "id": 1})
            reply = conn.read()
            assert reply["type"] == "error"
            assert reply["id"] == 1
            conn.send({"type": "run", "source": "1", "id": 2})
            assert conn.read()["type"] == "result"
            conn.close()

    def test_unknown_frame_type_keeps_connection_open(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send({"type": "hello", "protocol": 1, "id": 5})
            reply = conn.read()
            assert reply["type"] == "error"
            assert "unknown message type" in reply["error"]
            assert reply["id"] == 5
            conn.send({"type": "run", "source": "3 * 3", "id": 6})
            assert conn.read()["value"] == "9"
            conn.close()

    def test_request_metrics_recorded(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run("1")
                client.stat("health")
        assert REGISTRY.counter("server.requests").value >= 2
        histogram = REGISTRY.histogram("server.request.seconds")
        assert histogram.count >= 2


class TestTracingOverTheWire:
    def test_client_request_id_adopted_by_server(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                reply = client.run("1 + 1")
                assert reply["request_id"] == client.last_request_id
                assert reply["request_id"].startswith(client.session_id)

    def test_v1_run_frame_without_context_gets_minted_id(self):
        with ServerThread() as server:
            conn = RawConn(server.port, handshake=False)
            conn.hello(version=1)
            conn.send({"type": "run", "source": "1", "id": 1})
            reply = conn.read()
            assert reply["request_id"]  # server minted one
            conn.close()

    def test_obs_frame_round_trip(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.stat("trace", action="on")
                client.run("2 + 3")
                reply = client.obs("spans")
                client.stat("trace", action="off")
                assert reply["type"] == "obs"
                assert reply["what"] == "spans"
                request = reply["requests"][-1]
                assert request["request_id"] == client.last_request_id
                names = [s["name"] for s in request["spans"]]
                assert "lang.run" in names

    def test_traced_reply_carries_rendered_span_tree(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.stat("trace", action="on")
                reply = client.run("6 * 7")
                client.stat("trace", action="off")
                assert "lang.run" in reply["trace"]
                assert "  lang.parse" in reply["trace"]

    def test_remote_profile_report(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.stat("profile", action="on")
                client.run(
                    'rjoin(relation([{Dept = "Sales", N = 1}]),'
                    ' relation([{Dept = "Sales", M = 2}]))'
                )
                text = client.stat("profile", action="report")["text"]
                client.stat("profile", action="off")
                assert "relation.join" in text

    def test_remote_requests_wide_events(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run("40 + 2")
                text = client.stat("requests")["text"]
                assert client.last_request_id in text
                assert "40 + 2" in text

    def test_bad_obs_kind_is_an_error_not_a_hangup(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                with pytest.raises(RemoteError):
                    client.obs("nonsense")
                assert client.run("1")["value"] == "1"


class TestProtocolAbuse:
    def test_oversized_frame_refused_and_hung_up(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send_raw(struct.pack(">I", protocol.MAX_FRAME + 1))
            reply = conn.read()
            assert reply["type"] == "error"
            assert "exceeds" in reply["error"]
            assert conn.read() is None  # server hung up
            conn.close()

    def test_truncated_frame_leaves_server_alive(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send_raw(struct.pack(">I", 100) + b'{"type":')
            conn.close()  # vanish mid-frame
            # The server shrugs it off and keeps serving.
            with Client(server.host, server.port) as client:
                assert client.run("1 + 1")["value"] == "2"

    def test_garbage_payload_answered_with_error(self):
        with ServerThread() as server:
            conn = RawConn(server.port)
            conn.send_raw(struct.pack(">I", 4) + b"{{{{")
            reply = conn.read()
            assert reply["type"] == "error"
            assert "JSON" in reply["error"]
            conn.close()

    def test_client_disconnect_mid_query_leaves_others_working(self):
        with ServerThread(session_factory=SlowSession) as server:
            victim = RawConn(server.port)
            victim.send({"type": "run", "source": "1 + 1", "id": 1})
            victim.close()  # gone before the reply exists
            with Client(server.host, server.port) as client:
                assert client.run("20 + 1")["value"] == "21"
        assert REGISTRY.counter("server.connections.lost").value >= 0


class TestIsolationOverTheWire:
    def test_private_bindings_shared_extents(self, tmp_path):
        store = str(tmp_path / "shared.log")
        with ServerThread(store=store) as server:
            with Client(server.host, server.port) as first, Client(
                server.host, server.port
            ) as second:
                assert first.session_id != second.session_id
                first.run("let secret = 41")
                first.run('extern("vault", dynamic secret);')
                with pytest.raises(RemoteError) as excinfo:
                    second.run("secret")
                assert "unbound variable" in str(excinfo.value)
                reply = second.run('coerce intern("vault") to Int + 1')
                assert reply["value"] == "42"

    def test_memory_extents_shared_without_a_store(self):
        with ServerThread() as server:
            with Client(server.host, server.port) as first, Client(
                server.host, server.port
            ) as second:
                first.run('extern("m", dynamic [1, 2, 3]);')
                reply = second.run(
                    'sum(coerce intern("m") to List[Int])'
                )
                assert reply["value"] == "6"


class TestAdmission:
    def test_connection_limit_bounces_with_busy(self):
        with ServerThread(limit=1, queue_limit=0) as server:
            first = Client(server.host, server.port)
            with pytest.raises(RemoteError) as excinfo:
                Client(server.host, server.port)
            assert excinfo.value.kind == "busy"
            assert "connection limit" in str(excinfo.value)
            first.close()
        assert REGISTRY.counter("server.connections.rejected").value == 1

    def test_queued_connection_gets_the_freed_slot(self):
        with ServerThread(limit=1, queue_limit=1) as server:
            first = Client(server.host, server.port)
            admitted = {}

            def wait_for_slot():
                with Client(server.host, server.port) as second:
                    admitted["session"] = second.session_id
                    admitted["value"] = second.run("5 * 5")["value"]

            waiter = threading.Thread(target=wait_for_slot)
            waiter.start()
            time.sleep(0.2)  # let the waiter reach the queue
            assert not admitted  # still parked, not rejected
            first.close()
            waiter.join(timeout=5.0)
            assert admitted["value"] == "25"
        assert REGISTRY.counter("server.connections.queued").value == 1

    def test_sessions_stat_counts_peers(self):
        with ServerThread(limit=4) as server:
            with Client(server.host, server.port) as first, Client(
                server.host, server.port
            ) as second:
                text = first.stat("sessions")["text"]
                assert "2 active / 4 limit" in text
                assert second.session_id in text


class TestIdleTimeout:
    def test_idle_session_gets_bye(self):
        with ServerThread(idle_timeout=0.2) as server:
            conn = RawConn(server.port)
            reply = conn.read()  # blocks until the server times us out
            assert reply == {"type": "bye", "reason": "idle"}
            conn.close()
        assert REGISTRY.counter("server.sessions.idle_closed").value == 1


class TestGracefulDrain:
    def test_in_flight_query_finishes_before_shutdown(self):
        server = ServerThread(session_factory=SlowSession).start()
        client = Client(server.host, server.port)
        finished = {}

        def slow_query():
            finished["reply"] = client.run("6 * 7")

        query = threading.Thread(target=slow_query)
        query.start()
        time.sleep(0.1)  # the run frame is in flight
        server.stop()  # drain: must deliver the result, then bye
        query.join(timeout=5.0)
        assert finished["reply"]["value"] == "42"
        # The connection was then closed by the shutdown bye.
        with pytest.raises(SessionClosedError, match="bye"):
            client.run("1")
        assert REGISTRY.counter("server.shutdown.drained").value >= 1

    def test_idle_connections_get_shutdown_bye(self):
        server = ServerThread().start()
        conn = RawConn(server.port)
        server.stop()
        assert conn.read() == {"type": "bye", "reason": "shutdown"}
        conn.close()

    def test_new_connections_refused_while_draining(self):
        server = ServerThread().start()
        server.stop()
        with pytest.raises((ConnectionError, OSError)):
            Client(server.host, server.port)


class TestHealthOverTheWire:
    def test_health_stat_includes_session_probe(self):
        with ServerThread(limit=2) as server:
            with Client(server.host, server.port) as client:
                text = client.stat("health")["text"]
                assert "server.sessions" in text
                assert "1 of 2 session(s) active" in text

    def test_metrics_stat_parses_as_openmetrics(self):
        from repro.obs.monitor import parse_openmetrics

        with ServerThread() as server:
            with Client(server.host, server.port) as client:
                client.run("1")
                parsed = parse_openmetrics(client.stat("metrics")["text"])
                assert parsed["eof"]
                assert any(
                    name.startswith("server_requests")
                    for name in parsed["counters"]
                )
