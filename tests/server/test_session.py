"""Sessions: run modes, the stat surface, and isolation over shared state."""

import pytest

from repro.errors import EvalError, SessionClosedError, TypeCheckError
from repro.obs import events, monitor, slowlog, trace
from repro.obs.metrics import reset_metrics
from repro.persistence.store import LogStore
from repro.server.session import OBS_KINDS, STAT_KINDS, Session


@pytest.fixture(autouse=True)
def clean_globals():
    reset_metrics()
    previous_journal = events.CURRENT
    previous_monitor = monitor.CURRENT
    previous_slowlog = slowlog.CURRENT
    previous_tracer = trace.CURRENT
    yield
    events.set_journal(previous_journal)
    monitor.set_monitor(previous_monitor)
    slowlog.set_slowlog(previous_slowlog)
    trace.set_tracer(previous_tracer)
    reset_metrics()


class TestRun:
    def test_eval_returns_formatted_value(self):
        session = Session()
        reply = session.run("2 + 3")
        assert reply["value"] == "5"
        assert reply["output"] == []
        assert reply["elapsed"] >= 0.0

    def test_declaration_has_no_value(self):
        session = Session()
        assert session.run("let x = 1")["value"] is None
        assert session.run("x")["value"] == "1"

    def test_output_lines_are_per_run(self):
        session = Session()
        first = session.run('print("a"); print("b"); 1')
        second = session.run('print("c"); 2')
        assert first["output"] == ['"a"', '"b"']
        assert second["output"] == ['"c"']

    def test_type_mode_does_not_commit(self):
        session = Session()
        assert session.run("let y = 1", mode="type")["value"] == "<declaration>"
        with pytest.raises(TypeCheckError):
            session.run("y")

    def test_type_mode_sees_session_bindings(self):
        session = Session()
        session.run("let n = 4")
        assert session.run("n * n", mode="type")["value"] == "Int"

    def test_ast_mode(self):
        session = Session()
        assert "1" in session.run("1 + 2", mode="ast")["value"]

    def test_unknown_mode(self):
        with pytest.raises(EvalError, match="unknown run mode"):
            Session().run("1", mode="compile")

    def test_errors_propagate(self):
        with pytest.raises(TypeCheckError):
            Session().run("1 + true")


class TestIsolation:
    def test_bindings_are_private_extents_are_shared_in_memory(self):
        shared = {}
        first = Session(session_id="a", memory_store=shared)
        second = Session(session_id="b", memory_store=shared)
        first.run("let secret = 41")
        first.run('extern("x", dynamic secret);')
        with pytest.raises(TypeCheckError):
            second.run("secret")
        reply = second.run('coerce intern("x") to Int + 1')
        assert reply["value"] == "42"

    def test_extents_are_shared_through_a_log_store(self, tmp_path):
        store = LogStore(str(tmp_path / "shared.log"))
        try:
            first = Session(store=store, session_id="a")
            second = Session(store=store, session_id="b")
            first.run('extern("n", dynamic 7);')
            assert second.run('coerce intern("n") to Int')["value"] == "7"
        finally:
            store.close()


class TestLifecycle:
    def test_closed_session_refuses(self):
        session = Session(session_id="s01")
        session.close()
        with pytest.raises(SessionClosedError, match="s01"):
            session.run("1")
        with pytest.raises(SessionClosedError):
            session.stat("health")

    def test_requests_counted(self):
        session = Session()
        session.run("1")
        session.stat("health")
        assert session.requests == 2
        assert "2 request(s)" in session.describe()

    def test_scoped_journal_tags_session(self):
        events.enable()
        session = Session(session_id="s42", publish_runs=True)
        session.run("1 + 1")
        mine = session.journal.events(10)
        assert mine, "publish_runs should journal each request"
        assert all(e.payload.get("session") == "s42" for e in mine)

    def test_local_repl_sessions_do_not_journal_runs(self):
        events.enable()
        before = len(events.CURRENT.events(100))
        Session().run("1 + 1")
        assert len(events.CURRENT.events(100)) == before


class TestStat:
    def test_unknown_kind(self):
        with pytest.raises(EvalError, match="unknown stat kind"):
            Session().stat("flamegraph")

    def test_every_declared_kind_has_a_handler(self):
        session = Session()
        for kind in STAT_KINDS:
            assert hasattr(session, "_stat_%s" % kind)

    def test_stats_reports_registry(self):
        session = Session()
        session.run("1 + 1")
        assert "lang.runs" in session.stat("stats", target="")["text"]

    def test_stats_reset(self):
        session = Session()
        assert session.stat("stats", target="reset")["text"] == "metrics reset"

    def test_analyze_then_stats(self):
        session = Session()
        session.run(
            "let emp = relation(["
            '{Name = "A", Salary = 10}, {Name = "B", Salary = 20}])'
        )
        reply = session.stat("analyze", name="emp")
        assert reply["text"] == "analyzed emp: 2 rows, 2 columns"
        assert session.stat("stats", target="emp")["text"].startswith(
            "emp: 2 rows"
        )

    def test_analyze_non_relation(self):
        session = Session()
        session.run("let n = 3")
        with pytest.raises(EvalError, match="not a relation"):
            session.stat("analyze", name="n")

    def test_explain_runs_a_plan(self):
        session = Session()
        session.run(
            "let emp = relation(["
            '{Name = "A", Salary = 10}, {Name = "B", Salary = 20}])'
        )
        text = session.stat(
            "explain", source='rmatch(emp, {Name = "A"})'
        )["text"]
        assert "Scan" in text

    def test_health_text(self):
        text = Session().stat("health")["text"]
        assert "store.integrity" in text
        assert "server.sessions" in text

    def test_metrics_round_trips_openmetrics(self):
        from repro.obs.monitor import parse_openmetrics

        session = Session()
        session.run("1")
        parsed = parse_openmetrics(session.stat("metrics")["text"])
        assert parsed["eof"]
        assert any(
            name.startswith("lang_runs") for name in parsed["counters"]
        )

    def test_watch_renders(self):
        text = Session().stat("watch", horizon=5.0)["text"]
        assert text.startswith("monitor:")

    def test_events_toggle_and_show(self):
        session = Session()
        assert session.stat("events", action="on")["text"] == "journal on"
        session.run("1")
        events.publish("INFO", "test", "ping")
        shown = session.stat("events", action="show", count=5)["text"]
        assert "ping" in shown
        assert session.stat("events", action="off")["text"] == "journal off"
        assert (
            session.stat("events", action="show")["text"]
            == "journal is off — :events on"
        )

    def test_adaptive_status(self):
        text = Session().stat("adaptive", action="status")["text"]
        assert text.startswith("adaptive estimation is")

    def test_columnar_toggle_and_status(self):
        from repro.core import columnar as _columnar

        session = Session()
        try:
            assert (
                session.stat("columnar", action="on")["text"]
                == "columnar execution on"
            )
            assert _columnar.COLUMNAR.enabled
            status = session.stat("columnar", action="status")["text"]
            assert status.startswith("columnar execution is on")
            assert "plans lowered" in status and "batches" in status
            assert (
                session.stat("columnar", action="off")["text"]
                == "columnar execution off"
            )
            assert not _columnar.COLUMNAR.enabled
        finally:
            _columnar.disable()

    def test_sessions_without_broker(self):
        text = Session(session_id="solo").stat("sessions")["text"]
        assert "single local session" in text
        assert "solo" in text

    def test_slow_toggle(self):
        session = Session()
        assert "slow-query log on" in session.stat("slow", action="on")["text"]
        assert session.stat("slow", action="off")["text"] == "slow-query log off"


class TestRequestTracking:
    def test_every_reply_carries_a_request_id(self):
        session = Session(session_id="s07")
        assert session.run("1")["request_id"] == "s07-r1"
        assert session.run("2")["request_id"] == "s07-r2"

    def test_caller_supplied_request_id_is_adopted(self):
        session = Session()
        reply = session.run("1 + 1", request_id="s01-c9")
        assert reply["request_id"] == "s01-c9"
        assert session.request_log.find("s01-c9") is not None

    def test_traced_run_harvests_spans_off_the_global_tracer(self):
        session = Session(session_id="t")
        trace.enable()
        reply = session.run("6 * 7")
        trace.disable()
        assert trace.NOOP.roots == ()
        assert "lang.run" in reply["trace"]
        event = session.request_log.find(reply["request_id"])
        assert event.spans
        root = event.spans[0]
        assert root["tags"]["request_id"] == reply["request_id"]
        assert root["tags"]["session"] == "t"

    def test_untraced_run_has_no_trace_key(self):
        session = Session()
        assert "trace" not in session.run("1")

    def test_failed_run_is_recorded_with_its_error(self):
        session = Session()
        with pytest.raises(TypeCheckError):
            session.run("1 + true")
        events_ = session.request_log.last()
        assert len(events_) == 1
        assert not events_[0].ok
        assert events_[0].error

    def test_wide_event_counts_join_work(self):
        session = Session()
        session.run(
            'let a = relation([{Dept = "Sales", N = 1}]);'
            'let b = relation([{Dept = "Sales", M = 2}]);'
        )
        reply = session.run("rjoin(a, b)")
        event = session.request_log.find(reply["request_id"])
        assert event.counters["pairs_tried"] >= 1

    def test_request_log_is_bounded(self):
        session = Session(requests_capacity=3)
        for i in range(5):
            session.run("%d" % i)
        retained = session.request_log.last(10)
        assert len(retained) == 3
        assert retained[-1].query == "4"
        assert session.request_log.total == 5


class TestObsSurface:
    def test_every_declared_kind_has_a_handler(self):
        session = Session()
        for kind in OBS_KINDS:
            assert hasattr(session, "_obs_%s" % kind), kind

    def test_unknown_obs_kind(self):
        with pytest.raises(EvalError, match="unknown obs kind"):
            Session().obs("flamegraph")

    def test_obs_spans_returns_harvested_trees(self):
        session = Session(session_id="t")
        trace.enable()
        reply = session.run("1 + 1")
        trace.disable()
        document = session.obs("spans")
        assert document["session"] == "t"
        request = document["requests"][-1]
        assert request["request_id"] == reply["request_id"]
        assert request["spans"][0]["name"] == "lang.run"
        assert isinstance(document["mono"], float)

    def test_obs_requests_returns_wide_event_dicts(self):
        session = Session()
        session.run("40 + 2")
        document = session.obs("requests")
        record = document["requests"][-1]
        assert record["query"] == "40 + 2"
        assert record["ok"] is True
        assert "spans" not in record  # flat by default

    def test_obs_profile_snapshot(self):
        from repro.obs import profile

        session = Session()
        profile.enable()
        session.run(
            'rjoin(relation([{D = 1, N = 2}]), relation([{D = 1, M = 3}]))'
        )
        document = session.obs("profile")
        profile.disable()
        assert document["enabled"] is True
        assert any(op["label"] == "relation.join" for op in document["ops"])

    def test_obs_journal_returns_session_events(self):
        journal = events.enable()
        journal.clear()
        session = Session(session_id="j", publish_runs=True)
        session.run("1")
        document = session.obs("journal")
        assert any(
            event["payload"].get("session") == "j"
            for event in document["events"]
        )


class TestStatTraceProfileRequests:
    def test_trace_toggle_flips_the_global_tracer(self):
        session = Session()
        assert session.stat("trace", action="on")["text"] == "tracing on"
        assert trace.CURRENT.enabled
        assert session.stat("trace", action="status")["text"] == "tracing is on"
        assert session.stat("trace", action="off")["text"] == "tracing off"
        assert not trace.CURRENT.enabled

    def test_requests_stat_renders_the_wide_event_table(self):
        session = Session(session_id="w")
        session.run("20 + 22")
        text = session.stat("requests")["text"]
        assert "w-r1" in text
        assert "20 + 22" in text

    def test_slowlog_entry_carries_the_exact_request_id(self):
        log = slowlog.enable(threshold_ms=0.0)
        log.clear()
        session = Session(session_id="sl")
        reply = session.run(
            "let r = relation([{N = 1}, {N = 2}]); rmatch(r, {N = 1})"
        )
        entries = log.for_request(reply["request_id"])
        assert entries, [e.request for e in log.entries()]
        assert entries[0].request == reply["request_id"]
        event = session.request_log.find(reply["request_id"])
        assert event.slow
        assert event.slow_ms is not None
