"""Unit tests for the Galileo and Pascal/R layers."""

import pytest

from repro.classes.galileo import GalileoEnvironment
from repro.classes.pascal_r import PascalRDatabase, RelationVariable
from repro.core.orders import record
from repro.errors import ClassConstructError, KeyViolationError
from repro.types.kinds import INT, STRING, record_type

PERSON_T = record_type(Name=STRING)
EMPLOYEE_T = record_type(Name=STRING, Empno=INT)


class TestGalileo:
    def test_type_then_class(self):
        env = GalileoEnvironment()
        persons = env.define_class("persons", PERSON_T)
        persons.insert(record(Name="J Doe"))
        assert len(persons) == 1

    def test_class_of_integers(self):
        """'one may, for example, construct a class of integers.'"""
        env = GalileoEnvironment()
        favourites = env.define_class("favourites", INT)
        favourites.insert(3)
        favourites.insert(7)
        assert len(favourites) == 2

    def test_one_class_per_type_restriction(self):
        """'it does not appear to be possible to construct two extents on
        the same type.'"""
        env = GalileoEnvironment()
        env.define_class("current", EMPLOYEE_T)
        with pytest.raises(ClassConstructError):
            env.define_class("former", EMPLOYEE_T)

    def test_duplicate_class_name_rejected(self):
        env = GalileoEnvironment()
        env.define_class("c", INT)
        with pytest.raises(ClassConstructError):
            env.define_class("c", STRING)

    def test_member_type_checked(self):
        env = GalileoEnvironment()
        ints = env.define_class("ints", INT)
        from repro.errors import ExtentError

        with pytest.raises(ExtentError):
            ints.insert("not an int")

    def test_subtype_members_accepted(self):
        env = GalileoEnvironment()
        persons = env.define_class("persons", PERSON_T)
        persons.insert(record(Name="E", Empno=1))  # an employee
        assert len(persons) == 1

    def test_lookup_and_contains(self):
        env = GalileoEnvironment()
        c = env.define_class("c", INT)
        assert env["c"] is c
        assert "c" in env
        with pytest.raises(ClassConstructError):
            env["nope"]

    def test_uniform_persistence(self, tmp_path):
        path = str(tmp_path / "galileo.db")
        env = GalileoEnvironment(path)
        ints = env.define_class("ints", INT)
        ints.insert(3)
        persons = env.define_class("persons", PERSON_T)
        persons.insert(record(Name="J"))
        env.save()

        fresh = GalileoEnvironment(path)
        fresh.load()
        assert list(fresh["ints"]) == [3]
        assert list(fresh["persons"]) == [record(Name="J")]

    def test_save_without_path_raises(self):
        with pytest.raises(ClassConstructError):
            GalileoEnvironment().save()


class TestPascalR:
    def _emp_rel(self):
        return RelationVariable(
            "Employees", record_type(Name=STRING, Empno=INT), key=("Empno",)
        )

    def test_insert_and_iterate(self):
        rel = self._emp_rel()
        rel.insert(Name="J Doe", Empno=1)
        rel.insert(Name="M Dee", Empno=2)
        assert len(rel) == 2
        assert {row["Name"] for row in rel} == {"J Doe", "M Dee"}

    def test_key_required(self):
        with pytest.raises(ClassConstructError):
            RelationVariable("R", record_type(A=INT), key=())

    def test_key_must_be_in_schema(self):
        with pytest.raises(ClassConstructError):
            RelationVariable("R", record_type(A=INT), key=("B",))

    def test_duplicate_key_rejected(self):
        rel = self._emp_rel()
        rel.insert(Name="J", Empno=1)
        with pytest.raises(KeyViolationError):
            rel.insert(Name="K", Empno=1)

    def test_update_and_lookup(self):
        rel = self._emp_rel()
        rel.insert(Name="J", Empno=1)
        rel.update(Name="J Doe", Empno=1)
        assert rel.lookup(Empno=1)["Name"] == "J Doe"
        assert rel.lookup(Empno=9) is None

    def test_update_missing_raises(self):
        with pytest.raises(KeyViolationError):
            self._emp_rel().update(Name="J", Empno=1)

    def test_delete(self):
        rel = self._emp_rel()
        rel.insert(Name="J", Empno=1)
        rel.delete(Empno=1)
        assert len(rel) == 0
        with pytest.raises(KeyViolationError):
            rel.delete(Empno=1)

    def test_rows_are_total_and_typed(self):
        rel = self._emp_rel()
        with pytest.raises(ClassConstructError):
            rel.insert(Name="J")  # missing Empno
        with pytest.raises(ClassConstructError):
            rel.insert(Name="J", Empno="one")
        with pytest.raises(ClassConstructError):
            rel.insert(Name="J", Empno=1, Extra=2)

    def test_to_flat_feeds_the_algebra(self):
        rel = self._emp_rel()
        rel.insert(Name="J", Empno=1)
        rel.insert(Name="K", Empno=2)
        flat = rel.to_flat()
        assert len(flat.select(lambda r: r["Empno"] > 1)) == 1

    def test_database_restriction(self, tmp_path):
        """'only relation data types can be placed in a database.'"""
        with pytest.raises(ClassConstructError):
            PascalRDatabase(
                str(tmp_path / "db"), Employees=self._emp_rel(), Count=42
            )

    def test_database_persistence_round_trip(self, tmp_path):
        path = str(tmp_path / "empdb")
        db = PascalRDatabase(path, Employees=self._emp_rel())
        db["Employees"].insert(Name="J Doe", Empno=1)
        db.save()

        fresh = PascalRDatabase(path, Employees=self._emp_rel())
        assert fresh["Employees"].lookup(Empno=1)["Name"] == "J Doe"

    def test_database_unknown_field(self, tmp_path):
        db = PascalRDatabase(str(tmp_path / "db"), Employees=self._emp_rel())
        with pytest.raises(ClassConstructError):
            db["Departments"]

    def test_load_flat(self):
        from repro.core.flat import FlatRelation

        rel = self._emp_rel()
        rel.load_flat(
            FlatRelation(("Name", "Empno"), [("J", 1), ("K", 2)])
        )
        assert len(rel) == 2
