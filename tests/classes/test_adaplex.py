"""Unit tests for the Adaplex entity-type layer."""

import pytest

from repro.classes.adaplex import AdaplexSchema
from repro.errors import ClassConstructError
from repro.types.kinds import INT, STRING, record_type


@pytest.fixture
def schema():
    s = AdaplexSchema()
    s.entity_type("Person", Name=STRING, Address=STRING)
    s.entity_type("Employee", Empno=INT, Department=STRING)
    s.include("Employee", "Person")
    return s


class TestDeclarations:
    def test_duplicate_type_rejected(self, schema):
        with pytest.raises(ClassConstructError):
            schema.entity_type("Person", Name=STRING)

    def test_include_unknown_type(self, schema):
        with pytest.raises(ClassConstructError):
            schema.include("Employee", "Robot")

    def test_include_cycle_rejected(self, schema):
        with pytest.raises(ClassConstructError):
            schema.include("Person", "Employee")

    def test_include_self_rejected(self, schema):
        with pytest.raises(ClassConstructError):
            schema.include("Person", "Person")

    def test_inherited_attributes(self, schema):
        attrs = schema.all_attributes("Employee")
        assert set(attrs) == {"Name", "Address", "Empno", "Department"}

    def test_record_type(self, schema):
        assert schema.record_type("Person") == record_type(
            Name=STRING, Address=STRING
        )


class TestNominalTyping:
    def test_same_structure_not_identical(self):
        """'In Adaplex, types with the same structure are not necessarily
        identical.'"""
        s = AdaplexSchema()
        s.entity_type("Cat", Name=STRING)
        s.entity_type("Dog", Name=STRING)
        assert s.structurally_equal_but_distinct("Cat", "Dog") is True
        # creating a Cat does not create a Dog
        s.create("Cat", Name="Felix")
        assert len(s.extent("Cat")) == 1
        assert len(s.extent("Dog")) == 0

    def test_explicit_include_relates(self):
        s = AdaplexSchema()
        s.entity_type("Cat", Name=STRING)
        s.entity_type("Animal", Name=STRING)
        s.include("Cat", "Animal")
        assert s.structurally_equal_but_distinct("Cat", "Animal") is False

    def test_structural_difference_returns_none(self, schema):
        assert schema.structurally_equal_but_distinct("Person", "Employee") is None

    def test_is_included(self, schema):
        assert schema.is_included("Employee", "Person")
        assert schema.is_included("Person", "Person")
        assert not schema.is_included("Person", "Employee")


class TestExtentInclusion:
    def test_create_employee_creates_person(self, schema):
        """'creating an instance of Employee will also create a new
        instance of Person.'"""
        e = schema.create(
            "Employee", Name="J Doe", Address="Austin", Empno=1, Department="S"
        )
        assert e in schema.extent("Employee")
        assert e in schema.extent("Person")

    def test_person_not_in_employee(self, schema):
        schema.create("Person", Name="P", Address="A")
        assert len(schema.extent("Person")) == 1
        assert len(schema.extent("Employee")) == 0

    def test_transitive_inclusion(self, schema):
        schema.entity_type("Manager", Level=INT)
        schema.include("Manager", "Employee")
        m = schema.create(
            "Manager", Name="M", Address="A", Empno=2, Department="D", Level=3
        )
        assert m in schema.extent("Person")

    def test_destroy_removes_everywhere(self, schema):
        e = schema.create(
            "Employee", Name="J", Address="A", Empno=1, Department="D"
        )
        schema.destroy(e)
        assert len(schema.extent("Employee")) == 0
        assert len(schema.extent("Person")) == 0

    def test_destroy_unknown_raises(self, schema):
        from repro.classes.adaplex import Entity, EntityType

        stray = Entity(EntityType("Ghost", {}), {})
        with pytest.raises(ClassConstructError):
            schema.destroy(stray)

    def test_missing_attributes_rejected(self, schema):
        with pytest.raises(ClassConstructError):
            schema.create("Employee", Name="J", Empno=1, Department="D")

    def test_extra_attributes_rejected(self, schema):
        with pytest.raises(ClassConstructError):
            schema.create("Person", Name="J", Address="A", Hobby="chess")

    def test_type_mismatch_rejected(self, schema):
        with pytest.raises(ClassConstructError):
            schema.create(
                "Employee", Name="J", Address="A", Empno="one", Department="D"
            )

    def test_entity_identity_not_attributes(self, schema):
        """Entities are identified by themselves: two with equal
        attributes coexist."""
        first = schema.create("Person", Name="Twin", Address="Same")
        second = schema.create("Person", Name="Twin", Address="Same")
        assert first is not second
        assert len(schema.extent("Person")) == 2

    def test_attribute_access_and_update(self, schema):
        p = schema.create("Person", Name="J", Address="A")
        assert p["Name"] == "J"
        p["Name"] = "K"
        assert p["Name"] == "K"
        with pytest.raises(ClassConstructError):
            p["Nope"]
