"""Unit tests for the Taxis class constructs."""

import pytest

from repro.classes.taxis import (
    AGGREGATE_CLASS,
    VARIABLE_CLASS,
    AggregateClass,
    VariableClass,
    instance_chain,
)
from repro.errors import ClassConstructError
from repro.types.kinds import INT, STRING, record_type


@pytest.fixture
def person():
    return VariableClass("PERSON", {"Name": STRING})


@pytest.fixture
def employee(person):
    # VARIABLE_CLASS EMPLOYEE isa PERSON with Empno: Integer; Department: ...
    return VariableClass(
        "EMPLOYEE", {"Empno": INT, "Department": STRING}, isa=(person,)
    )


class TestHierarchy:
    def test_isa_reflexive_and_transitive(self, person, employee):
        manager = VariableClass("MANAGER", {}, isa=(employee,))
        assert manager.isa(manager)
        assert manager.isa(employee)
        assert manager.isa(person)
        assert not person.isa(manager)

    def test_attributes_inherited(self, employee):
        assert set(employee.all_attributes()) == {"Name", "Empno", "Department"}

    def test_record_type_derived(self, employee):
        assert employee.record_type() == record_type(
            Name=STRING, Empno=INT, Department=STRING
        )

    def test_cycle_rejected(self):
        # Fresh construction cannot form a cycle; redeclaring a class to
        # inherit from its own descendant is the only route, and the
        # constructor's ancestor check refuses it.
        a = VariableClass("A", {})
        b = VariableClass("B", {}, isa=(a,))
        with pytest.raises(ClassConstructError):
            a.__init__("A", {}, isa=(b,))

    def test_multiple_inheritance(self, person):
        student = VariableClass("STUDENT", {"School": STRING}, isa=(person,))
        employee = VariableClass("EMPLOYEE", {"Empno": INT}, isa=(person,))
        working = VariableClass("WORKING_STUDENT", {}, isa=(student, employee))
        assert set(working.all_attributes()) == {"Name", "School", "Empno"}
        assert working.isa(person)

    def test_isa_requires_class(self):
        with pytest.raises(ClassConstructError):
            VariableClass("X", {}, isa=("nope",))  # type: ignore[arg-type]


class TestExtents:
    def test_insert_enters_super_extents(self, person, employee):
        """'every instance of EMPLOYEE will be in the extent of PERSON.'"""
        employee.insert(Name="J Doe", Empno=1, Department="Sales")
        assert len(employee) == 1
        assert len(person.extent) == 1

    def test_person_insert_not_in_employee(self, person, employee):
        person.insert(Name="P Only")
        assert len(person.extent) == 1
        assert len(employee) == 0

    def test_delete_removes_everywhere(self, person, employee):
        instance = employee.insert(Name="J", Empno=1, Department="D")
        employee.delete(instance)
        assert len(employee) == 0
        assert len(person.extent) == 0

    def test_explicit_insertion_and_deletion(self, person):
        """Extents are 'defined by explicit insertion and deletion' —
        merely constructing a valid value does not enter it."""
        agg = AggregateClass("ADDRESS", {"City": STRING})
        agg.new(City="Austin")  # no extent to enter
        assert not hasattr(agg, "extent")
        p = person.insert(Name="X")
        person.delete(p)
        assert len(person) == 0

    def test_missing_attribute_rejected(self, employee):
        with pytest.raises(ClassConstructError):
            employee.insert(Name="J Doe", Empno=1)  # Department missing

    def test_extra_attribute_rejected(self, person):
        with pytest.raises(ClassConstructError):
            person.insert(Name="J", Nickname="JJ")

    def test_wrong_type_rejected(self, employee):
        with pytest.raises(ClassConstructError):
            employee.insert(Name="J", Empno="one", Department="D")

    def test_instance_attribute_update_checked(self, person):
        instance = person.insert(Name="J")
        instance["Name"] = "K"
        assert instance["Name"] == "K"
        with pytest.raises(ClassConstructError):
            instance["Name"] = 3
        with pytest.raises(ClassConstructError):
            instance["Nope"] = 1

    def test_instance_missing_attribute_read(self, person):
        instance = person.insert(Name="J")
        with pytest.raises(ClassConstructError):
            instance["Nope"]


class TestMetaClasses:
    def test_classes_are_instances_of_metaclasses(self, person):
        assert person.metaclass is VARIABLE_CLASS
        assert AggregateClass("A", {}).metaclass is AGGREGATE_CLASS

    def test_variable_class_has_extent_aggregate_does_not(self, person):
        assert VARIABLE_CLASS.has_extent
        assert not AGGREGATE_CLASS.has_extent
        assert hasattr(person, "extent")
        assert not hasattr(AggregateClass("A", {}), "extent")

    def test_instance_chain_three_levels(self, person):
        """Taxis' 'limited three-level framework':
        value → class → metaclass."""
        instance = person.insert(Name="J")
        chain = instance_chain(instance)
        assert chain == [instance, person, VARIABLE_CLASS]

    def test_instance_chain_from_class(self, person):
        assert instance_chain(person) == [person, VARIABLE_CLASS]

    def test_instance_chain_plain_value(self):
        assert instance_chain(42) == [42]
