"""Negative-path tests: the checker and evaluator reject bad programs
with informative errors, and never half-execute them."""

import pytest

from repro.errors import (
    EvalError,
    ParseError,
    TypeCheckError,
    UnknownTypeError,
)
from repro.lang.eval import Interpreter, run_program


def rejects_statically(source, needle=None):
    with pytest.raises((TypeCheckError, UnknownTypeError)) as excinfo:
        run_program(source)
    if needle:
        assert needle in str(excinfo.value)


def fails_at_runtime(source, needle=None):
    with pytest.raises(EvalError) as excinfo:
        run_program(source)
    if needle:
        assert needle in str(excinfo.value)


class TestCheckerErrors:
    def test_with_on_non_record(self):
        rejects_statically("3 with {a = 1}", "records")

    def test_apply_non_function(self):
        rejects_statically("3(4)", "non-function")

    def test_arity_mismatch(self):
        rejects_statically(
            "fun f(x: Int): Int = x\nf(1, 2)", "expected 1 arguments"
        )

    def test_lambda_param_type_unknown(self):
        rejects_statically("fn(x: Mystery) => x", "unknown type")

    def test_coerce_to_unknown_type(self):
        rejects_statically("coerce (dynamic 1) to Mystery", "unknown type")

    def test_duplicate_record_type_field(self):
        rejects_statically("type T = {a: Int, a: String}", "duplicate")

    def test_type_with_on_non_record_type(self):
        rejects_statically("type T = Int with {a: Int}", "record types")

    def test_type_with_contradiction(self):
        rejects_statically(
            "type A = {x: Int}\ntype B = A with {x: String}", "contradicts"
        )

    def test_error_carries_position(self):
        try:
            run_program("let x = 1;\nx + true")
        except TypeCheckError as exc:
            assert "line 2" in str(exc)
        else:
            raise AssertionError("should have raised")

    def test_polymorphic_over_instantiation(self):
        rejects_statically(
            "fun id[t](x: t): t = x\nid[Int, Int](3)", "not polymorphic"
        )

    def test_bound_violation_reported(self):
        rejects_statically(
            "fun f[t <= Int](x: t): t = x\nf[String]", "bound"
        )

    def test_inference_reports_explicit_alternative(self):
        rejects_statically("map(3, [1])")


class TestRuntimeErrors:
    def test_join_conflict_message_names_field(self):
        fails_at_runtime(
            '{Name = "A"} with {Name = "B"}', "Name"
        )

    def test_coercion_failure_names_types(self):
        fails_at_runtime(
            "coerce (dynamic 3) to String", "not a subtype"
        )

    def test_remove_absent_value(self):
        with pytest.raises(Exception):
            run_program("let db = newdb();\nremove(db, dynamic 1)")

    def test_erased_type_parameter_in_get(self):
        """get[t] inside a polymorphic function cannot resolve t at run
        time (type erasure); the error says so instead of misbehaving."""
        fails_at_runtime(
            """
            fun extract[t](db: Database): List[t] =
              map(fn(x: t) => x, get[t](db))
            let db = newdb();
            extract[Int](db)
            """,
            "erased",
        )

    def test_relation_member_with_function_field(self):
        # statically a record of function type is a fine record; the
        # relational boundary rejects it at run time
        with pytest.raises((EvalError, TypeCheckError)):
            run_program("relation([{f = fn(x: Int) => x}])")


class TestSessionIsolation:
    def test_failed_program_leaves_session_usable(self):
        interp = Interpreter()
        interp.run("let x = 1;")
        with pytest.raises(TypeCheckError):
            interp.run("let y = x + true;")
        # y must not be bound; x still is
        with pytest.raises(TypeCheckError):
            interp.run("y")
        assert interp.run("x").value == 1

    def test_runtime_failure_after_partial_effects(self):
        """Effects before the failing expression do happen (no
        transactional rollback in the language) — documented behaviour."""
        interp = Interpreter()
        with pytest.raises(EvalError):
            interp.run('print("before"); 1 / 0; print("after")')
        assert interp.output == ['"before"']

    def test_parse_error_does_not_pollute(self):
        interp = Interpreter()
        with pytest.raises(ParseError):
            interp.run("let = =")
        assert interp.run("2").value == 2


class TestCheckerSessionConsistency:
    def test_checker_binding_precedes_eval_failure(self):
        """A checked `let` whose evaluation raises leaves the *checker*
        binding in place but no runtime binding — the next use fails at
        run time, not silently."""
        interp = Interpreter()
        with pytest.raises(EvalError):
            interp.run("let x = 1 / 0;")
        with pytest.raises(EvalError):
            interp.run("x")
