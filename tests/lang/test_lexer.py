"""Unit tests for the DBPL lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import (
    EOF,
    FLOAT_LIT,
    IDENT,
    INT_LIT,
    KEYWORD,
    OP,
    STRING_LIT,
)


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty(self):
        assert kinds("") == [EOF]

    def test_whitespace_only(self):
        assert kinds("  \n\t  ") == [EOF]

    def test_identifiers_and_keywords(self):
        tokens = tokenize("let person Person typeX")
        assert tokens[0].kind == KEYWORD
        assert tokens[1].kind == IDENT
        assert tokens[2].kind == IDENT
        assert tokens[3].kind == IDENT  # 'typeX' is not the keyword 'type'

    def test_all_keywords(self):
        for word in ("type", "fun", "if", "then", "else", "fn", "with",
                     "dynamic", "coerce", "to", "typeof", "in", "and",
                     "or", "not", "true", "false", "unit"):
            assert tokenize(word)[0].kind == KEYWORD

    def test_numbers(self):
        tokens = tokenize("42 3.25")
        assert tokens[0].kind == INT_LIT
        assert tokens[0].text == "42"
        assert tokens[1].kind == FLOAT_LIT
        assert tokens[1].text == "3.25"

    def test_int_followed_by_dot_field(self):
        # '3.x' lexes as INT '.' IDENT, not a float
        assert kinds("3.x")[:3] == [INT_LIT, OP, IDENT]

    def test_strings(self):
        token = tokenize('"J Doe"')[0]
        assert token.kind == STRING_LIT
        assert token.text == "J Doe"

    def test_string_escapes(self):
        assert tokenize(r'"a\nb\t\"\\"')[0].text == 'a\nb\t"\\'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')

    def test_unknown_escape(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')

    def test_operators_greedy(self):
        assert texts("<= < == = => - ->") == ["<=", "<", "==", "=", "=>", "-", "->"]

    def test_unknown_character(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("let x = @")
        assert excinfo.value.line == 1

    def test_comments_skipped(self):
        assert texts("1 -- a comment\n2") == ["1", "2"]

    def test_comment_at_eof(self):
        assert kinds("-- nothing else") == [EOF]


class TestPositions:
    def test_line_and_column(self):
        tokens = tokenize("let x =\n  42")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (1, 5)
        assert (tokens[3].line, tokens[3].column) == (2, 3)

    def test_error_position_after_newlines(self):
        with pytest.raises(LexError) as excinfo:
            tokenize("ok\nok\n  @")
        assert excinfo.value.line == 3
        assert excinfo.value.column == 3
