"""The REPL as a thin client: ``:connect`` / ``:disconnect``."""

import pytest

from repro.lang.repl import Repl
from repro.obs import events, monitor, slowlog
from repro.obs.metrics import reset_metrics
from repro.server import ServerThread


@pytest.fixture(autouse=True)
def clean_globals():
    reset_metrics()
    previous_journal = events.CURRENT
    previous_monitor = monitor.CURRENT
    previous_slowlog = slowlog.CURRENT
    yield
    events.set_journal(previous_journal)
    monitor.set_monitor(previous_monitor)
    slowlog.set_slowlog(previous_slowlog)
    reset_metrics()


@pytest.fixture
def server():
    with ServerThread(limit=4) as running:
        yield running


@pytest.fixture
def repl(server):
    lines = []
    instance = Repl(writer=lines.append)
    yield instance, lines, server
    if instance.connected:
        instance._remote.close()


def connect(repl_fixture):
    instance, lines, server = repl_fixture
    instance.handle(":connect %s" % server.address)
    assert instance.connected, lines[-1]
    return instance, lines


class TestConnect:
    def test_connect_reports_session(self, repl):
        instance, lines = connect(repl)
        assert lines[-1].startswith("connected to")
        assert "session s01" in lines[-1]

    def test_remote_evaluation(self, repl):
        instance, lines = connect(repl)
        instance.handle("let x = 6 * 7")
        instance.handle("x")
        assert lines[-1] == "42"

    def test_remote_errors_print_like_local_ones(self, repl):
        instance, lines = connect(repl)
        instance.handle("1 + true")
        assert lines[-1].startswith("error: ")

    def test_type_and_ast_route_remotely(self, repl):
        instance, lines = connect(repl)
        instance.handle("let n = 3")
        instance.handle(":type n + 1")
        assert lines[-1] == "Int"
        instance.handle(":ast 1 + 2")
        assert "1" in lines[-1]

    def test_bad_address(self, repl):
        instance, lines, __ = repl
        instance.handle(":connect nowhere:eleventy")
        assert lines[-1].startswith("error: bad port")
        assert not instance.connected

    def test_connection_refused(self, repl):
        instance, lines, __ = repl
        instance.handle(":connect 127.0.0.1:1")
        assert lines[-1].startswith("error: cannot connect")
        assert not instance.connected

    def test_double_connect_refused(self, repl):
        instance, lines = connect(repl)
        instance.handle(":connect 127.0.0.1:9999")
        assert "already connected" in lines[-1]


class TestDisconnect:
    def test_disconnect_returns_to_local_session(self, repl):
        instance, lines = connect(repl)
        instance.handle("let remote_only = 1")
        instance.handle(":disconnect")
        assert lines[-1].startswith("disconnected from")
        assert not instance.connected
        # Back on the local session: the remote binding is invisible.
        instance.handle("remote_only")
        assert lines[-1].startswith("error: ")

    def test_disconnect_when_local(self, repl):
        instance, lines, __ = repl
        instance.handle(":disconnect")
        assert lines[-1] == "not connected (local session)"

    def test_local_bindings_survive_a_remote_excursion(self, repl):
        instance, lines, server = repl
        instance.handle("let keep = 5")
        instance.handle(":connect %s" % server.address)
        instance.handle(":disconnect")
        instance.handle("keep")
        assert lines[-1] == "5"


class TestRemoteObservability:
    def test_stats_round_trip(self, repl):
        instance, lines = connect(repl)
        instance.handle("1 + 1")
        instance.handle(":stats")
        assert "server.requests" in lines[-1]

    def test_sessions_lists_remote_peers(self, repl):
        instance, lines = connect(repl)
        instance.handle(":sessions")
        assert "1 active / 4 limit" in lines[-1]

    def test_health_includes_server_probe(self, repl):
        instance, lines = connect(repl)
        instance.handle(":health")
        assert "server.sessions" in lines[-1]

    def test_watch_uses_injected_sleep(self, repl):
        instance, lines = connect(repl)
        naps = []
        instance._sleep = naps.append
        instance.handle(":watch 2")
        assert naps == [1.0, 1.0]
        assert lines[-3] == "watching for 2s (Ctrl-C stops early)"
        assert lines[-1].startswith("monitor:")

    def test_metrics_to_file(self, repl, tmp_path):
        instance, lines = connect(repl)
        instance.handle("1 + 1")
        path = tmp_path / "remote.om"
        instance.handle(":metrics %s" % path)
        assert lines[-1] == "wrote %s" % path
        assert "# EOF" in path.read_text()

    def test_analyze_and_explain_remotely(self, repl):
        instance, lines = connect(repl)
        instance.handle(
            'let emp = relation([{Name = "A", Salary = 10},'
            ' {Name = "B", Salary = 20}])'
        )
        instance.handle(":analyze emp")
        assert lines[-1] == "analyzed emp: 2 rows, 2 columns"
        instance.handle(':explain rmatch(emp, {Name = "A"})')
        assert "Scan" in lines[-1]

    def test_local_only_commands_refuse(self, repl):
        instance, lines = connect(repl)
        for command in (":trace on", ":profile on", ":export /tmp/x.json"):
            instance.handle(command)
            assert "local-only" in lines[-1], command


class TestTwoRepls:
    def test_isolated_bindings_shared_extents(self, server):
        first_lines, second_lines = [], []
        first = Repl(writer=first_lines.append)
        second = Repl(writer=second_lines.append)
        first.handle(":connect %s" % server.address)
        second.handle(":connect %s" % server.address)
        try:
            first.handle("let secret = 41")
            first.handle('extern("vault", dynamic secret);')
            second.handle("secret")
            assert second_lines[-1].startswith("error: unbound variable")
            second.handle('coerce intern("vault") to Int + 1')
            assert second_lines[-1] == "42"
        finally:
            first.handle(":disconnect")
            second.handle(":disconnect")

    def test_lost_connection_falls_back_to_local(self):
        lines = []
        instance = Repl(writer=lines.append)
        server = ServerThread().start()
        instance.handle(":connect %s" % server.address)
        assert instance.connected
        server.stop()
        instance.handle("1 + 1")
        assert lines[-2].startswith("error: ")
        assert lines[-1] == "(connection lost — back to the local session)"
        assert not instance.connected
        instance.handle("1 + 1")
        assert lines[-1] == "2"
