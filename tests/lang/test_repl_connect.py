"""The REPL as a thin client: ``:connect`` / ``:disconnect``."""

import json

import pytest

from repro.lang.repl import Repl
from repro.obs import events, export, monitor, profile, slowlog, trace
from repro.obs.metrics import reset_metrics
from repro.server import ServerThread


@pytest.fixture(autouse=True)
def clean_globals():
    reset_metrics()
    previous_journal = events.CURRENT
    previous_monitor = monitor.CURRENT
    previous_slowlog = slowlog.CURRENT
    previous_tracer = trace.CURRENT
    previous_profiler = profile.CURRENT
    yield
    events.set_journal(previous_journal)
    monitor.set_monitor(previous_monitor)
    slowlog.set_slowlog(previous_slowlog)
    trace.set_tracer(previous_tracer)
    profile.set_profiler(previous_profiler)
    reset_metrics()


@pytest.fixture
def server():
    with ServerThread(limit=4) as running:
        yield running


@pytest.fixture
def repl(server):
    lines = []
    instance = Repl(writer=lines.append)
    yield instance, lines, server
    if instance.connected:
        instance._remote.close()


def connect(repl_fixture):
    instance, lines, server = repl_fixture
    instance.handle(":connect %s" % server.address)
    assert instance.connected, lines[-1]
    return instance, lines


class TestConnect:
    def test_connect_reports_session(self, repl):
        instance, lines = connect(repl)
        assert lines[-1].startswith("connected to")
        assert "session s01" in lines[-1]

    def test_remote_evaluation(self, repl):
        instance, lines = connect(repl)
        instance.handle("let x = 6 * 7")
        instance.handle("x")
        assert lines[-1] == "42"

    def test_remote_errors_print_like_local_ones(self, repl):
        instance, lines = connect(repl)
        instance.handle("1 + true")
        assert lines[-1].startswith("error: ")

    def test_type_and_ast_route_remotely(self, repl):
        instance, lines = connect(repl)
        instance.handle("let n = 3")
        instance.handle(":type n + 1")
        assert lines[-1] == "Int"
        instance.handle(":ast 1 + 2")
        assert "1" in lines[-1]

    def test_bad_address(self, repl):
        instance, lines, __ = repl
        instance.handle(":connect nowhere:eleventy")
        assert lines[-1].startswith("error: bad port")
        assert not instance.connected

    def test_connection_refused(self, repl):
        instance, lines, __ = repl
        instance.handle(":connect 127.0.0.1:1")
        assert lines[-1].startswith("error: cannot connect")
        assert not instance.connected

    def test_double_connect_refused(self, repl):
        instance, lines = connect(repl)
        instance.handle(":connect 127.0.0.1:9999")
        assert "already connected" in lines[-1]


class TestDisconnect:
    def test_disconnect_returns_to_local_session(self, repl):
        instance, lines = connect(repl)
        instance.handle("let remote_only = 1")
        instance.handle(":disconnect")
        assert lines[-1].startswith("disconnected from")
        assert not instance.connected
        # Back on the local session: the remote binding is invisible.
        instance.handle("remote_only")
        assert lines[-1].startswith("error: ")

    def test_disconnect_when_local(self, repl):
        instance, lines, __ = repl
        instance.handle(":disconnect")
        assert lines[-1] == "not connected (local session)"

    def test_local_bindings_survive_a_remote_excursion(self, repl):
        instance, lines, server = repl
        instance.handle("let keep = 5")
        instance.handle(":connect %s" % server.address)
        instance.handle(":disconnect")
        instance.handle("keep")
        assert lines[-1] == "5"


class TestRemoteObservability:
    def test_stats_round_trip(self, repl):
        instance, lines = connect(repl)
        instance.handle("1 + 1")
        instance.handle(":stats")
        assert "server.requests" in lines[-1]

    def test_sessions_lists_remote_peers(self, repl):
        instance, lines = connect(repl)
        instance.handle(":sessions")
        assert "1 active / 4 limit" in lines[-1]

    def test_health_includes_server_probe(self, repl):
        instance, lines = connect(repl)
        instance.handle(":health")
        assert "server.sessions" in lines[-1]

    def test_watch_uses_injected_sleep(self, repl):
        instance, lines = connect(repl)
        naps = []
        instance._sleep = naps.append
        instance.handle(":watch 2")
        assert naps == [1.0, 1.0]
        assert lines[-3] == "watching for 2s (Ctrl-C stops early)"
        assert lines[-1].startswith("monitor:")

    def test_metrics_to_file(self, repl, tmp_path):
        instance, lines = connect(repl)
        instance.handle("1 + 1")
        path = tmp_path / "remote.om"
        instance.handle(":metrics %s" % path)
        assert lines[-1] == "wrote %s" % path
        assert "# EOF" in path.read_text()

    def test_analyze_and_explain_remotely(self, repl):
        instance, lines = connect(repl)
        instance.handle(
            'let emp = relation([{Name = "A", Salary = 10},'
            ' {Name = "B", Salary = 20}])'
        )
        instance.handle(":analyze emp")
        assert lines[-1] == "analyzed emp: 2 rows, 2 columns"
        instance.handle(':explain rmatch(emp, {Name = "A"})')
        assert "Scan" in lines[-1]

    def test_remote_trace_prints_server_span_tree(self, repl):
        instance, lines = connect(repl)
        instance.handle(":trace on")
        assert lines[-1] == "tracing on"
        instance.handle("6 * 7")
        instance.handle(":trace off")
        assert lines[-1] == "tracing off"
        text = "\n".join(lines)
        assert "42" in lines
        assert "lang.run" in text
        assert any(
            line.startswith("  lang.parse") for line in text.splitlines()
        )

    def test_remote_trace_toggle_mirrors_the_local_tracer(self, repl):
        # In a real deployment the server is another *process*: its
        # stat("trace") cannot flip this process's tracer, and without
        # the client lane a merged :export has no client.run spans.
        # A fake backend (whose stat touches no globals, unlike the
        # in-process ServerThread) proves the REPL mirrors the toggle.
        instance, lines, __ = repl

        class FakeRemote:
            _closed = False

            def stat(self, kind, **args):
                return {"text": "tracing %s" % args["action"]}

        trace.disable()
        instance._remote = FakeRemote()
        try:
            instance.handle(":trace on")
            assert trace.CURRENT.enabled
            instance.handle(":trace off")
            assert not trace.CURRENT.enabled
        finally:
            instance._remote = None

    def test_remote_profile_renders_server_rows(self, repl):
        instance, lines = connect(repl)
        instance.handle(":profile on")
        assert lines[-1] == "profiling on"
        instance.handle(
            'rjoin(relation([{Dept = "Sales", N = 1}]),'
            ' relation([{Dept = "Sales", M = 2}]))'
        )
        instance.handle(":profile")
        assert "relation.join" in lines[-1]
        instance.handle(":profile off")
        assert lines[-1] == "profiling off"

    def test_requests_lists_remote_wide_events(self, repl):
        instance, lines = connect(repl)
        instance.handle("40 + 2")
        request_id = instance._remote.last_request_id
        instance.handle(":requests")
        assert request_id in lines[-1]
        assert "40 + 2" in lines[-1]

    def test_export_merges_client_and_server_onto_one_timeline(
        self, repl, tmp_path
    ):
        # The acceptance scenario: :trace on, two queries, :export —
        # the file must hold the client-side round-trip span AND the
        # server-side span tree for the same request id, on lanes the
        # viewer labels as separate processes.
        instance, lines = connect(repl)
        instance.handle(":trace on")
        instance.handle("let x = 6 * 7")
        instance.handle("x")
        request_id = instance._remote.last_request_id
        path = str(tmp_path / "merged.trace.json")
        instance.handle(":export %s" % path)
        instance.handle(":trace off")
        assert "exported %s" % path in "\n".join(lines)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        frames = document["traceEvents"]
        process_names = {
            e["args"]["name"]: e["pid"]
            for e in frames
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert process_names == {
            "client": export.CLIENT_PID,
            "server": export.BACKEND_PID,
        }
        client_spans = [
            e for e in frames
            if e.get("ph") == "X" and e["pid"] == export.CLIENT_PID
            and e["name"] == "client.run"
        ]
        server_spans = [
            e for e in frames
            if e.get("ph") == "X" and e["pid"] == export.BACKEND_PID
        ]
        client_ids = {e["args"].get("request_id") for e in client_spans}
        server_ids = {
            e["args"]["request_id"]
            for e in server_spans
            if "request_id" in e.get("args", {})
        }
        assert request_id in client_ids
        assert request_id in server_ids
        # One timeline: the server's work for the request sits inside
        # the client's round-trip span (the in-process server shares
        # the clock, so the offset estimate error is sub-millisecond).
        client_span = next(
            e for e in client_spans if e["args"].get("request_id") == request_id
        )
        server_root = next(
            e for e in server_spans
            if e.get("args", {}).get("request_id") == request_id
        )
        tolerance_us = 5000.0
        assert server_root["ts"] >= client_span["ts"] - tolerance_us
        assert (
            server_root["ts"] + server_root["dur"]
            <= client_span["ts"] + client_span["dur"] + tolerance_us
        )
        assert document["otherData"]["clock_offset_seconds"] == (
            instance._remote.clock_offset
        )


class TestTwoRepls:
    def test_isolated_bindings_shared_extents(self, server):
        first_lines, second_lines = [], []
        first = Repl(writer=first_lines.append)
        second = Repl(writer=second_lines.append)
        first.handle(":connect %s" % server.address)
        second.handle(":connect %s" % server.address)
        try:
            first.handle("let secret = 41")
            first.handle('extern("vault", dynamic secret);')
            second.handle("secret")
            assert second_lines[-1].startswith("error: unbound variable")
            second.handle('coerce intern("vault") to Int + 1')
            assert second_lines[-1] == "42"
        finally:
            first.handle(":disconnect")
            second.handle(":disconnect")

    def test_lost_connection_falls_back_to_local(self):
        lines = []
        instance = Repl(writer=lines.append)
        server = ServerThread().start()
        instance.handle(":connect %s" % server.address)
        assert instance.connected
        server.stop()
        instance.handle("1 + 1")
        assert lines[-2].startswith("error: ")
        assert lines[-1] == "(connection lost — back to the local session)"
        assert not instance.connected
        instance.handle("1 + 1")
        assert lines[-1] == "2"
