"""Unit tests for the DBPL REPL (driven through an injected writer)."""

import pytest

from repro.lang.repl import Repl


@pytest.fixture
def repl_session():
    lines = []
    repl = Repl(writer=lines.append)
    return repl, lines


class TestEvaluation:
    def test_expression_prints_value(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 + 2")
        assert lines == ["3"]

    def test_declarations_accumulate(self, repl_session):
        repl, lines = repl_session
        repl.handle("let x = 40;")
        repl.handle("x + 2")
        assert lines[-1] == "42"

    def test_fun_then_call(self, repl_session):
        repl, lines = repl_session
        repl.handle("fun f(n: Int): Int = n * n")
        repl.handle("f(9)")
        assert lines[-1] == "81"

    def test_print_output_forwarded(self, repl_session):
        repl, lines = repl_session
        repl.handle('print("hi")')
        assert '"hi"' in lines

    def test_unit_result_not_echoed(self, repl_session):
        repl, lines = repl_session
        repl.handle("let x = 1;")
        assert lines == []

    def test_type_error_reported_not_raised(self, repl_session):
        repl, lines = repl_session
        repl.handle('1 + "a"')
        assert any(line.startswith("error:") for line in lines)

    def test_parse_error_reported(self, repl_session):
        repl, lines = repl_session
        repl.handle("let = 3")
        assert any("error" in line for line in lines)

    def test_runtime_error_reported(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 / 0")
        assert any("division" in line for line in lines)

    def test_blank_line_ignored(self, repl_session):
        repl, lines = repl_session
        repl.handle("   ")
        assert lines == []

    def test_session_survives_errors(self, repl_session):
        repl, lines = repl_session
        repl.handle("nonsense +")
        repl.handle("2 + 2")
        assert lines[-1] == "4"


class TestCommands:
    def test_quit(self, repl_session):
        repl, __ = repl_session
        assert not repl.done
        repl.handle(":quit")
        assert repl.done

    def test_type_command(self, repl_session):
        repl, lines = repl_session
        repl.handle(":type 1 + 1")
        assert lines == ["Int"]

    def test_type_does_not_evaluate_or_commit(self, repl_session):
        repl, lines = repl_session
        repl.handle(":type let x = 1; x")
        repl.handle("x")  # x must NOT be bound by :type
        assert any("error" in line for line in lines)

    def test_type_of_declaration(self, repl_session):
        repl, lines = repl_session
        repl.handle(":type type P = {N: Int}")
        assert lines == ["<declaration>"]

    def test_type_usage_message(self, repl_session):
        repl, lines = repl_session
        repl.handle(":type")
        assert "usage" in lines[0]

    def test_ast_command(self, repl_session):
        repl, lines = repl_session
        repl.handle(":ast 1+2*3")
        assert lines == ["1 + 2 * 3;"]

    def test_ast_error(self, repl_session):
        repl, lines = repl_session
        repl.handle(":ast let")
        assert "error" in lines[0]

    def test_unknown_command(self, repl_session):
        repl, lines = repl_session
        repl.handle(":frobnicate")
        assert "unknown command" in lines[0]

    def test_load(self, tmp_path):
        lines = []
        repl = Repl(writer=lines.append)
        source = tmp_path / "prog.dbpl"
        source.write_text("let x = 6;\nprint(x * 7);\n")
        repl.handle(":load %s" % source)
        assert "42" in lines

    def test_load_missing_file(self, repl_session):
        repl, lines = repl_session
        repl.handle(":load /no/such/file.dbpl")
        assert "error" in lines[0]

    def test_load_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":load")
        assert "usage" in lines[0]


class TestStoreBackedRepl:
    def test_persistence_across_repls(self, tmp_path):
        path = str(tmp_path / "repl.log")
        first_lines = []
        first = Repl(path, writer=first_lines.append)
        first.handle('extern("x", dynamic 41);')

        second_lines = []
        second = Repl(path, writer=second_lines.append)
        second.handle('coerce intern("x") to Int + 1')
        assert second_lines[-1] == "42"


EMP_SOURCE = (
    'let emp = relation(['
    '{Emp = "Smith", Dept = "Sales", Salary = 40}, '
    '{Emp = "Jones", Dept = "Sales", Salary = 50}, '
    '{Emp = "Brown", Dept = "Manuf", Salary = 40}, '
    '{Emp = "Green", Dept = "Manuf", Salary = 60}, '
    '{Emp = "White", Dept = "Admin", Salary = 55}]);'
)
DEPT_SOURCE = (
    'let dept = relation(['
    '{Dept = "Sales", City = "Glasgow"}, '
    '{Dept = "Manuf", City = "Lochgilphead"}, '
    '{Dept = "Admin", City = "Glasgow"}]);'
)


class TestAnalyzeCommand:
    def test_analyze_then_stats(self, repl_session):
        repl, lines = repl_session
        repl.handle(EMP_SOURCE)
        repl.handle(":analyze emp")
        assert lines[-1] == "analyzed emp: 5 rows, 3 columns"
        repl.handle(":stats emp")
        assert lines[-1].startswith("emp: 5 rows, 3 columns")
        assert "Dept" in lines[-1]
        assert "'Manuf' 40%" in lines[-1]

    def test_stats_without_analyze(self, repl_session):
        repl, lines = repl_session
        repl.handle(":stats nothere")
        assert "run :analyze nothere first" in lines[0]

    def test_stats_registry_and_reset_still_work(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 + 1")
        repl.handle(":stats")
        assert any("lang.runs" in line for line in lines)
        repl.handle(":stats reset")
        assert lines[-1] == "metrics reset"

    def test_analyze_unbound_name(self, repl_session):
        repl, lines = repl_session
        repl.handle(":analyze ghost")
        assert lines[0].startswith("error:")

    def test_analyze_non_relation(self, repl_session):
        repl, lines = repl_session
        repl.handle("let x = 42;")
        repl.handle(":analyze x")
        assert "not a relation" in lines[-1]

    def test_analyze_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":analyze")
        assert "usage" in lines[0]


class TestExplainCommand:
    def test_explain_select_over_relation(self, repl_session):
        repl, lines = repl_session
        repl.handle(EMP_SOURCE)
        repl.handle(':explain rmatch(emp, {Dept = "Manuf"})')
        text = "\n".join(lines)
        assert "Select[Dept == 'Manuf']" in text
        assert "Scan(emp)" in text
        assert "drift: max=" in lines[-1]

    def test_explain_join_project(self, repl_session):
        repl, lines = repl_session
        repl.handle(EMP_SOURCE)
        repl.handle(DEPT_SOURCE)
        repl.handle(
            ':explain rproject(rmatch(rjoin(emp, dept),'
            ' {Dept = "Manuf"}), ["Emp", "City"])'
        )
        text = "\n".join(lines)
        assert "Join" in text
        assert "rows=2" in text

    def test_explain_estimates_improve_after_analyze(self, repl_session):
        repl, lines = repl_session
        repl.handle(EMP_SOURCE)
        repl.handle(':explain rmatch(emp, {Dept = "Manuf"})')
        before = next(l for l in lines if "Select" in l)
        assert "(estimate=1.0)" in before
        lines.clear()
        repl.handle(":analyze emp")
        repl.handle(':explain rmatch(emp, {Dept = "Manuf"})')
        after = next(l for l in lines if "Select" in l)
        assert "(estimate=2.0)" in after
        assert "drift=1.00x" in after

    def test_explain_unbound_relation(self, repl_session):
        repl, lines = repl_session
        repl.handle(":explain ghost")
        assert lines[0].startswith("error:")

    def test_explain_unsupported_expression(self, repl_session):
        repl, lines = repl_session
        repl.handle(":explain 1 + 2")
        assert lines[0].startswith("error:")
        assert "rjoin" in lines[0]

    def test_explain_non_literal_pattern(self, repl_session):
        repl, lines = repl_session
        repl.handle(EMP_SOURCE)
        repl.handle("let target = \"Manuf\";")
        repl.handle(":explain rmatch(emp, {Dept = target})")
        assert lines[-1].startswith("error:")
        assert "literal" in lines[-1]

    def test_explain_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":explain")
        assert "usage" in lines[0]
