"""Unit tests for the DBPL REPL (driven through an injected writer)."""

import pytest

from repro.lang.repl import Repl


@pytest.fixture
def repl_session():
    lines = []
    repl = Repl(writer=lines.append)
    return repl, lines


class TestEvaluation:
    def test_expression_prints_value(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 + 2")
        assert lines == ["3"]

    def test_declarations_accumulate(self, repl_session):
        repl, lines = repl_session
        repl.handle("let x = 40;")
        repl.handle("x + 2")
        assert lines[-1] == "42"

    def test_fun_then_call(self, repl_session):
        repl, lines = repl_session
        repl.handle("fun f(n: Int): Int = n * n")
        repl.handle("f(9)")
        assert lines[-1] == "81"

    def test_print_output_forwarded(self, repl_session):
        repl, lines = repl_session
        repl.handle('print("hi")')
        assert '"hi"' in lines

    def test_unit_result_not_echoed(self, repl_session):
        repl, lines = repl_session
        repl.handle("let x = 1;")
        assert lines == []

    def test_type_error_reported_not_raised(self, repl_session):
        repl, lines = repl_session
        repl.handle('1 + "a"')
        assert any(line.startswith("error:") for line in lines)

    def test_parse_error_reported(self, repl_session):
        repl, lines = repl_session
        repl.handle("let = 3")
        assert any("error" in line for line in lines)

    def test_runtime_error_reported(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 / 0")
        assert any("division" in line for line in lines)

    def test_blank_line_ignored(self, repl_session):
        repl, lines = repl_session
        repl.handle("   ")
        assert lines == []

    def test_session_survives_errors(self, repl_session):
        repl, lines = repl_session
        repl.handle("nonsense +")
        repl.handle("2 + 2")
        assert lines[-1] == "4"


class TestCommands:
    def test_quit(self, repl_session):
        repl, __ = repl_session
        assert not repl.done
        repl.handle(":quit")
        assert repl.done

    def test_type_command(self, repl_session):
        repl, lines = repl_session
        repl.handle(":type 1 + 1")
        assert lines == ["Int"]

    def test_type_does_not_evaluate_or_commit(self, repl_session):
        repl, lines = repl_session
        repl.handle(":type let x = 1; x")
        repl.handle("x")  # x must NOT be bound by :type
        assert any("error" in line for line in lines)

    def test_type_of_declaration(self, repl_session):
        repl, lines = repl_session
        repl.handle(":type type P = {N: Int}")
        assert lines == ["<declaration>"]

    def test_type_usage_message(self, repl_session):
        repl, lines = repl_session
        repl.handle(":type")
        assert "usage" in lines[0]

    def test_ast_command(self, repl_session):
        repl, lines = repl_session
        repl.handle(":ast 1+2*3")
        assert lines == ["1 + 2 * 3;"]

    def test_ast_error(self, repl_session):
        repl, lines = repl_session
        repl.handle(":ast let")
        assert "error" in lines[0]

    def test_unknown_command(self, repl_session):
        repl, lines = repl_session
        repl.handle(":frobnicate")
        assert "unknown command" in lines[0]

    def test_load(self, tmp_path):
        lines = []
        repl = Repl(writer=lines.append)
        source = tmp_path / "prog.dbpl"
        source.write_text("let x = 6;\nprint(x * 7);\n")
        repl.handle(":load %s" % source)
        assert "42" in lines

    def test_load_missing_file(self, repl_session):
        repl, lines = repl_session
        repl.handle(":load /no/such/file.dbpl")
        assert "error" in lines[0]

    def test_load_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":load")
        assert "usage" in lines[0]


class TestStoreBackedRepl:
    def test_persistence_across_repls(self, tmp_path):
        path = str(tmp_path / "repl.log")
        first_lines = []
        first = Repl(path, writer=first_lines.append)
        first.handle('extern("x", dynamic 41);')

        second_lines = []
        second = Repl(path, writer=second_lines.append)
        second.handle('coerce intern("x") to Int + 1')
        assert second_lines[-1] == "42"
