"""Unit tests for the DBPL static checker."""

import pytest

from repro.errors import TypeCheckError, UnknownTypeError
from repro.lang.checker import CheckEnv, check_program
from repro.lang.parser import parse_program
from repro.types.kinds import (
    BOOL,
    DYNAMIC,
    FLOAT,
    INT,
    STRING,
    TYPE,
    UNIT,
    Exists,
    ListType,
    record_type,
)


def type_of(source):
    t, __ = check_program(parse_program(source), CheckEnv.initial())
    return t


def rejects(source, needle=None):
    with pytest.raises((TypeCheckError, UnknownTypeError)) as excinfo:
        type_of(source)
    if needle is not None:
        assert needle in str(excinfo.value)
    return excinfo.value


class TestLiteralsAndOperators:
    def test_literals(self):
        assert type_of("1") == INT
        assert type_of("1.5") == FLOAT
        assert type_of('"s"') == STRING
        assert type_of("true") == BOOL
        assert type_of("unit") == UNIT

    def test_arithmetic(self):
        assert type_of("1 + 2") == INT
        assert type_of("1 + 2.0") == FLOAT
        assert type_of("1 * 2 - 3") == INT

    def test_string_concat(self):
        assert type_of('"a" + "b"') == STRING

    def test_arithmetic_on_strings_rejected(self):
        rejects('"a" - "b"')

    def test_comparisons(self):
        assert type_of("1 < 2") == BOOL
        assert type_of('"a" < "b"') == BOOL
        assert type_of("1 == 2") == BOOL

    def test_comparing_unrelated_types_rejected(self):
        rejects('1 == "a"', "unrelated")

    def test_comparing_consistent_records_allowed(self):
        assert (
            type_of('{Name = "a"} == {Name = "a", Age = 3}') == BOOL
        )

    def test_boolean_operators(self):
        assert type_of("true and false or not true") == BOOL

    def test_and_needs_bool(self):
        rejects("1 and true")

    def test_negation(self):
        assert type_of("-3") == INT
        assert type_of("-3.5") == FLOAT
        rejects('-"x"')

    def test_division_is_int_on_ints(self):
        assert type_of("7 / 2") == INT
        assert type_of("7.0 / 2") == FLOAT


class TestRecordsAndSubtyping:
    def test_record_literal(self):
        assert type_of('{Name = "J", Age = 3}') == record_type(
            Name=STRING, Age=INT
        )

    def test_duplicate_field_rejected(self):
        rejects("{x = 1, x = 2}", "duplicate")

    def test_field_access(self):
        assert type_of('{Name = "J"}.Name') == STRING

    def test_missing_field_rejected(self):
        rejects('{Name = "J"}.Age', "no field")

    def test_field_on_non_record_rejected(self):
        rejects("(3).Name")

    def test_with_meets_types(self):
        assert type_of('{Name = "J"} with {Age = 3}') == record_type(
            Name=STRING, Age=INT
        )

    def test_with_inconsistent_rejected(self):
        rejects('{Name = "J"} with {Name = 3}', "inconsistent")

    def test_with_agreeing_overlap_allowed(self):
        assert type_of('{Name = "J"} with {Name = "K"}') == record_type(
            Name=STRING
        )  # statically fine; runtime join may still fail

    def test_subsumption_at_application(self):
        source = """
        fun name(p: {Name: String}): String = p.Name
        name({Name = "J", Age = 3})
        """
        assert type_of(source) == STRING

    def test_supertype_argument_rejected(self):
        rejects(
            """
            fun emp(e: {Name: String, Empno: Int}): Int = e.Empno
            emp({Name = "J"})
            """
        )


class TestListsAndIf:
    def test_list_join(self):
        assert type_of("[1, 2]") == ListType(INT)
        assert type_of("[1, 2.0]") == ListType(FLOAT)

    def test_list_of_records_joins(self):
        t = type_of('[{Name = "a", Age = 1}, {Name = "b"}]')
        assert t == ListType(record_type(Name=STRING))

    def test_if_joins_branches(self):
        assert type_of("if true then 1 else 2") == INT
        assert type_of("if true then 1 else 2.0") == FLOAT
        t = type_of('if true then {Name = "a", Age = 1} else {Name = "b"}')
        assert t == record_type(Name=STRING)

    def test_if_condition_must_be_bool(self):
        rejects("if 1 then 2 else 3", "Bool")


class TestDeclarations:
    def test_type_alias(self):
        assert type_of(
            """
            type Person = {Name: String}
            fun f(p: Person): String = p.Name
            f({Name = "J"})
            """
        ) == STRING

    def test_type_with_extension(self):
        assert type_of(
            """
            type Person = {Name: String}
            type Employee = Person with {Empno: Int}
            fun f(e: Employee): Int = e.Empno
            f({Name = "J", Empno = 1})
            """
        ) == INT

    def test_unknown_type_rejected(self):
        rejects("let x: Mystery = 1", "unknown type")

    def test_builtin_type_not_redefinable(self):
        rejects("type Int = {x: Int}", "builtin")

    def test_let_annotation_checked(self):
        rejects("let x: String = 1")

    def test_let_annotation_seals_supertype(self):
        assert type_of(
            """
            type Person = {Name: String}
            let p: Person = {Name = "J", Age = 3};
            p
            """
        ) == record_type(Name=STRING)

    def test_unbound_variable(self):
        rejects("nope", "unbound")

    def test_fun_body_checked_against_result(self):
        rejects('fun f(x: Int): String = x')

    def test_recursion(self):
        assert type_of(
            """
            fun fact(n: Int): Int = if n <= 1 then 1 else n * fact(n - 1)
            fact(5)
            """
        ) == INT

    def test_let_in_scoping(self):
        rejects("(let x = 1 in x) + x", "unbound")


class TestPolymorphism:
    def test_identity(self):
        assert type_of("fun id[t](x: t): t = x\nid[Int](3)") == INT

    def test_explicit_instantiation_checked_against_bound(self):
        rejects(
            """
            fun name[t <= {Name: String}](x: t): String = x.Name
            name[Int]
            """,
            "bound",
        )

    def test_bounded_param_usable_at_bound(self):
        assert type_of(
            """
            fun name[t <= {Name: String}](x: t): String = x.Name
            name[{Name: String, Age: Int}]({Name = "J", Age = 3})
            """
        ) == STRING

    def test_instantiating_monomorphic_rejected(self):
        rejects("fun f(x: Int): Int = x\nf[Int]", "not polymorphic")

    def test_inference_for_map(self):
        assert type_of(
            "map(fn(x: Int) => x * 2, [1, 2, 3])"
        ) == ListType(INT)

    def test_inference_for_fold(self):
        assert type_of(
            "fold(fn(acc: Int, x: Int) => acc + x, 0, [1, 2])"
        ) == INT

    def test_inference_failure_reports(self):
        rejects("head(3)")  # not a list at all — no instantiation works


class TestDynamicChecking:
    def test_dynamic_has_type_dynamic(self):
        assert type_of("dynamic 3") == DYNAMIC

    def test_integer_operation_on_dynamic_is_static_error(self):
        """The paper: 'any attempt to use an integer operation such as
        addition on d is a (static) type error.'"""
        rejects("let d = dynamic 3; d + 1")

    def test_coerce_type(self):
        assert type_of("coerce (dynamic 3) to Int") == INT

    def test_coerce_needs_dynamic(self):
        rejects("coerce 3 to Int")

    def test_typeof(self):
        assert type_of("typeof (dynamic 3)") == TYPE

    def test_typeof_needs_dynamic(self):
        rejects("typeof 3")


class TestDatabaseTyping:
    def test_get_instantiated(self):
        t = type_of(
            """
            type Employee = {Name: String, Empno: Int}
            let db = newdb();
            get[Employee](db)
            """
        )
        assert isinstance(t, ListType)
        assert isinstance(t.element, Exists)

    def test_get_result_usable_at_query_type(self):
        assert type_of(
            """
            type Employee = {Name: String, Empno: Int}
            let db = newdb();
            map(fn(e: Employee) => e.Name, get[Employee](db))
            """
        ) == ListType(STRING)

    def test_insert_requires_dynamic(self):
        rejects(
            """
            let db = newdb();
            insert(db, {Name = "J"})
            """
        )

    def test_extern_requires_dynamic(self):
        rejects('extern("h", 3)')

    def test_intern_returns_dynamic(self):
        assert type_of('intern("h")') == DYNAMIC

    def test_sum_accepts_int_list_via_subtyping(self):
        assert type_of("sum([1, 2, 3])") == FLOAT
