"""Unit tests for the DBPL evaluator."""

import pytest

from repro.errors import EvalError, TypeCheckError
from repro.lang.eval import Interpreter, RuntimeRecord, format_value, run_program
from repro.types.dynamic import Dynamic
from repro.types.kinds import INT, record_type


def value_of(source, store=None):
    return run_program(source, store).value


class TestBasics:
    def test_arithmetic(self):
        assert value_of("1 + 2 * 3") == 7
        assert value_of("7 / 2") == 3
        assert value_of("7.0 / 2") == 3.5
        assert value_of("-(3 - 5)") == 2

    def test_division_by_zero(self):
        with pytest.raises(EvalError):
            value_of("1 / 0")

    def test_strings(self):
        assert value_of('"a" + "b"') == "ab"
        assert value_of('"a" < "b"') is True

    def test_comparisons_and_booleans(self):
        assert value_of("1 < 2 and 2 <= 2") is True
        assert value_of("not (1 == 2)") is True
        assert value_of("1 != 2") is True

    def test_short_circuit(self):
        # 'or' must not evaluate the right side when left is true:
        # the right side would divide by zero.
        assert value_of("fun boom(x: Int): Bool = 1 / x > 0\n"
                        "true or boom(0)") is True

    def test_if(self):
        assert value_of("if 1 < 2 then 10 else 20") == 10

    def test_let_in(self):
        assert value_of("let x = 3 in x * x") == 9

    def test_records(self):
        result = value_of('{Name = "J", Age = 3}')
        assert isinstance(result, RuntimeRecord)
        assert result.get("Name") == "J"

    def test_field_access(self):
        assert value_of('{Addr = {City = "Austin"}}.Addr.City') == "Austin"

    def test_lists(self):
        assert value_of("[1, 2, 3]") == [1, 2, 3]

    def test_unit(self):
        assert value_of("unit") is None


class TestFunctions:
    def test_lambda_and_apply(self):
        assert value_of("(fn(x: Int) => x * 2)(21)") == 42

    def test_closure_captures(self):
        assert value_of(
            "let y = 10 in (fn(x: Int) => x + y)(5)"
        ) == 15

    def test_recursion(self):
        assert value_of(
            "fun fact(n: Int): Int = if n <= 1 then 1 else n * fact(n - 1)\n"
            "fact(6)"
        ) == 720

    def test_forward_reference_is_static_error(self):
        # Declarations scope sequentially; mutual recursion needs a
        # higher-order encoding.  The forward reference never runs.
        with pytest.raises(TypeCheckError):
            value_of(
                """
                fun even(n: Int): Bool = if n == 0 then true else odd(n - 1)
                fun odd(n: Int): Bool = if n == 0 then false else even(n - 1)
                even(10)
                """
            )

    def test_higher_order(self):
        assert value_of(
            "fun twice(f: Int -> Int, x: Int): Int = f(f(x))\n"
            "twice(fn(n: Int) => n + 3, 1)"
        ) == 7

    def test_polymorphic_identity_erased(self):
        assert value_of("fun id[t](x: t): t = x\nid[Int](3)") == 3

    def test_builtin_lists(self):
        assert value_of("map(fn(x: Int) => x * x, [1, 2, 3])") == [1, 4, 9]
        assert value_of("filter(fn(x: Int) => x > 1, [1, 2, 3])") == [2, 3]
        assert value_of("fold(fn(a: Int, x: Int) => a + x, 0, [1, 2, 3])") == 6
        assert value_of("append([1], [2, 3])") == [1, 2, 3]
        assert value_of("cons(0, [1])") == [0, 1]
        assert value_of("head([1, 2])") == 1
        assert value_of("tail([1, 2])") == [2]
        assert value_of("isEmpty([])") is True
        assert value_of("length([1, 2, 3])") == 3
        assert value_of("sum([1, 2, 3])") == 6
        assert value_of("intToFloat(3) / 2") == 1.5

    def test_head_of_empty_raises(self):
        with pytest.raises(EvalError):
            value_of("head([])")


class TestWithJoin:
    def test_with_adds_fields(self):
        result = value_of('{Name = "J"} with {Empno = 1}')
        assert result.get("Empno") == 1

    def test_with_joins_nested(self):
        result = value_of(
            '{Addr = {City = "Austin"}} with {Addr = {Zip = 78759}}'
        )
        assert result.get("Addr").get("City") == "Austin"
        assert result.get("Addr").get("Zip") == 78759

    def test_with_agreeing_values_ok(self):
        result = value_of('{Name = "J"} with {Name = "J", Age = 1}')
        assert result.get("Age") == 1

    def test_with_conflict_raises_at_runtime(self):
        """The K Smith case: statically fine (types agree), but the
        values disagree — join fails at run time."""
        with pytest.raises(EvalError):
            value_of('{Name = "J Doe"} with {Name = "K Smith"}')


class TestDynamicsAtRuntime:
    def test_dynamic_carries_inferred_type(self):
        from repro.types.kinds import STRING

        d = value_of('dynamic {Name = "J"}')
        assert isinstance(d, Dynamic)
        assert d.carried == record_type(Name=STRING)

    def test_coerce_success(self):
        assert value_of("coerce (dynamic 3) to Int") == 3

    def test_coerce_failure_is_runtime(self):
        """'the subsequent line will raise a run-time exception.'"""
        with pytest.raises(EvalError):
            value_of("coerce (dynamic 3) to String")

    def test_coerce_to_supertype(self):
        assert value_of(
            """
            type Person = {Name: String}
            let d = dynamic {Name = "J", Age = 3};
            (coerce d to Person).Name
            """
        ) == "J"

    def test_typeof_returns_type_value(self):
        assert value_of("typeof (dynamic 3)") == INT

    def test_functions_cannot_be_dynamic(self):
        with pytest.raises(EvalError):
            value_of("dynamic (fn(x: Int) => x)")


class TestDatabases:
    SETUP = """
    type Person = {Name: String}
    type Employee = Person with {Empno: Int}
    let db = newdb();
    insert(db, dynamic {Name = "P"});
    insert(db, dynamic {Name = "E", Empno = 1});
    """

    def test_insert_and_size(self):
        assert value_of(self.SETUP + "size(db)") == 2

    def test_get_filters_by_subtype(self):
        assert value_of(self.SETUP + "length(get[Person](db))") == 2
        assert value_of(self.SETUP + "length(get[Employee](db))") == 1

    def test_get_without_instantiation_returns_all(self):
        assert value_of(self.SETUP + "length(get(db))") == 2

    def test_get_values_usable(self):
        assert value_of(
            self.SETUP + "map(fn(e: Employee) => e.Empno, get[Employee](db))"
        ) == [1]

    def test_remove(self):
        assert value_of(
            self.SETUP
            + 'remove(db, dynamic {Name = "P"});\nsize(db)'
        ) == 1


class TestPersistenceBuiltins:
    def test_extern_intern_memory(self):
        assert value_of(
            """
            extern("h", dynamic {Name = "J", Empno = 1});
            let back = coerce intern("h") to {Name: String, Empno: Int};
            back.Empno
            """
        ) == 1

    def test_intern_unknown_handle(self):
        with pytest.raises(EvalError):
            value_of('intern("nothing")')

    def test_coerce_interned_at_wrong_type(self):
        with pytest.raises(EvalError):
            value_of(
                'extern("h", dynamic 3);\n'
                'coerce intern("h") to String'
            )

    def test_file_backed_store(self, tmp_path):
        path = str(tmp_path / "dbpl.log")
        first = Interpreter(path)
        first.run('extern("DBFile", dynamic [1, 2, 3]);')
        second = Interpreter(path)
        result = second.run('sum(coerce intern("DBFile") to List[Int])')
        assert result.value == 6

    def test_replication_semantics(self):
        """Interned values are copies: mutating via one program's view
        (impossible here — records are immutable) aside, re-externing is
        required for changes to be seen, as in the paper."""
        interp = Interpreter()
        interp.run('extern("h", dynamic {N = 1});')
        interp.run(
            'let x = coerce intern("h") to {N: Int};\n'
            'extern("h", dynamic (x with {M = 2}));'
        )
        result = interp.run('coerce intern("h") to {N: Int, M: Int}')
        assert result.value.get("M") == 2


class TestSessionsAndOutput:
    def test_session_accumulates(self):
        interp = Interpreter()
        interp.run("let x = 40;")
        assert interp.run("x + 2").value == 42

    def test_print_output(self):
        result = run_program('print(1); print("two"); print([3])')
        assert result.output == ["1", '"two"', "[3]"]

    def test_show(self):
        assert value_of('show({A = 1})') == "{A = 1}"

    def test_format_value_forms(self):
        from repro.extents.database import Database

        assert format_value(None) == "unit"
        assert format_value(True) == "true"
        assert format_value(3.5) == "3.5"
        assert "database" in format_value(Database())

    def test_ill_typed_never_runs(self):
        interp = Interpreter()
        with pytest.raises(TypeCheckError):
            interp.run('print(1 + "a")')
        assert interp.output == []  # nothing executed

    def test_result_reports_type(self):
        result = run_program("1 + 1")
        assert result.type == INT
