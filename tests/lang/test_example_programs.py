"""The shipped .dbpl example programs run and produce pinned results."""

import os

import pytest

from repro.lang.eval import Interpreter

PROGRAMS = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "examples",
    "programs",
)


def run_file(name):
    with open(os.path.join(PROGRAMS, name), "r", encoding="utf-8") as handle:
        source = handle.read()
    interp = Interpreter()
    return interp.run(source)


class TestPayroll:
    def test_runs(self):
        result = run_file("payroll.dbpl")
        assert '"headcount:"' in result.output
        assert "3" in result.output

    def test_payroll_total(self):
        output = run_file("payroll.dbpl").output
        index = output.index('"total payroll:"')
        assert output[index + 1] == "113.75"

    def test_departments_projected(self):
        output = run_file("payroll.dbpl").output
        assert '{Dept = "Manuf"}' in output
        assert '{Dept = "Sales"}' in output


class TestBillOfMaterials:
    def test_costs(self):
        output = run_file("bill_of_materials.dbpl").output
        values = [output[output.index(label) + 1] for label in (
            '"bolt cost:"', '"wheel cost:"', '"bike cost:"',
            '"fleet of ten:"',
        )]
        assert values == ["0.5", "9.0", "208.0", "2080.0"]

    def test_costs_are_consistent(self):
        # bike = 40 + frame(150) + 2 × wheel(5 + 8 × 0.5)
        assert 40 + 150 + 2 * (5 + 8 * 0.5) == pytest.approx(208.0)


def test_all_shipped_programs_run():
    for name in sorted(os.listdir(PROGRAMS)):
        if name.endswith(".dbpl"):
            result = run_file(name)
            assert result.output  # every program prints something
