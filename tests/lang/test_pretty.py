"""Pretty-printer tests: fixed cases plus print→parse round-trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast
from repro.lang.parser import (
    parse_expression,
    parse_program,
    parse_type_expression,
)
from repro.lang.pretty import (
    pretty_decl,
    pretty_expr,
    pretty_program,
    pretty_type,
)


def round_trips_expr(source: str) -> bool:
    """print(parse(src)) reaches a fixpoint after one step."""
    printed = pretty_expr(parse_expression(source))
    return pretty_expr(parse_expression(printed)) == printed


class TestFixedCases:
    def test_literals(self):
        assert pretty_expr(parse_expression("42")) == "42"
        assert pretty_expr(parse_expression("3.5")) == "3.5"
        assert pretty_expr(parse_expression('"a\\"b"')) == '"a\\"b"'
        assert pretty_expr(parse_expression("true")) == "true"
        assert pretty_expr(parse_expression("unit")) == "unit"

    def test_float_always_has_point(self):
        assert pretty_expr(ast.FloatLit(3.0)) == "3.0"

    def test_precedence_preserved(self):
        assert pretty_expr(parse_expression("(1 + 2) * 3")) == "(1 + 2) * 3"
        assert pretty_expr(parse_expression("1 + 2 * 3")) == "1 + 2 * 3"

    def test_left_associativity_no_extra_parens(self):
        assert pretty_expr(parse_expression("1 - 2 - 3")) == "1 - 2 - 3"

    def test_unary_in_binary(self):
        assert pretty_expr(parse_expression("-x + 1")) == "-x + 1"
        assert pretty_expr(parse_expression("-(x + 1)")) == "-(x + 1)"

    def test_postfix_chain(self):
        assert pretty_expr(parse_expression("f(1)(2).a")) == "f(1)(2).a"
        assert pretty_expr(parse_expression("get[Int](db)")) == "get[Int](db)"

    def test_with_chain(self):
        source = "p with {a = 1} with {b = 2}"
        assert pretty_expr(parse_expression(source)) == source

    def test_dynamic_of_application(self):
        assert pretty_expr(parse_expression("dynamic f(x)")) == "dynamic f(x)"

    def test_comparison_not_associative(self):
        # comparisons are non-associative: nested ones need parens
        printed = pretty_expr(
            ast.BinOp("==", ast.BinOp("<", ast.Var("a"), ast.Var("b")),
                      ast.Var("c"))
        )
        assert printed == "(a < b) == c"
        parse_expression(printed)

    def test_types(self):
        cases = [
            "Int",
            "{Age: Int, Name: String}",
            "List[List[Int]]",
            "Int -> Bool",
            "(Int, String) -> Bool",
            "(Int -> Int) -> Int",
            "Person with {Empno: Int}",
        ]
        for source in cases:
            printed = pretty_type(parse_type_expression(source))
            again = pretty_type(parse_type_expression(printed))
            assert printed == again

    def test_declarations(self):
        cases = [
            "type Person = {Name: String};",
            "let x = 1;",
            "let x: Int = 1;",
            "fun f(x: Int): Int = x * 2;",
            "fun id[t](x: t): t = x;",
            "fun get2[t <= {Name: String}](x: t): String = x.Name;",
            "1 + 1;",
        ]
        for source in cases:
            program = parse_program(source)
            printed = pretty_program(program)
            again = pretty_program(parse_program(printed))
            assert printed == again

    def test_let_in_and_if_and_fn(self):
        for source in (
            "let x = 1 in x + 1",
            "if a then 1 else 2",
            "fn(x: Int) => x",
            "coerce d to Int",
        ):
            assert round_trips_expr(source)

    def test_decl_forms_reparse(self):
        program = parse_program(
            "type E = {N: String} with {I: Int}\n"
            "fun f[a, b <= Int](x: a, y: b): Int = y\n"
            "let r = {A = [1, 2], B = {C = true}};\n"
        )
        printed = pretty_program(program)
        assert pretty_program(parse_program(printed)) == printed


# -- property-based round trips ------------------------------------------------

names = st.sampled_from(["x", "y", "foo", "rec"])
labels = st.sampled_from(["A", "B", "C"])

simple_types = st.recursive(
    st.sampled_from(
        [ast.TypeName("Int"), ast.TypeName("String"), ast.TypeName("Bool")]
    ),
    lambda children: st.one_of(
        children.map(ast.TypeList),
        st.dictionaries(labels, children, max_size=2).map(
            lambda fields: ast.TypeRecord(tuple(sorted(fields.items())))
        ),
        st.tuples(children, children).map(
            lambda pair: ast.TypeFun((pair[0],), pair[1])
        ),
    ),
    max_leaves=4,
)

atoms = st.one_of(
    st.integers(min_value=0, max_value=99).map(ast.IntLit),
    st.sampled_from(["a", "b c", 'quo"te']).map(ast.StringLit),
    st.booleans().map(ast.BoolLit),
    names.map(ast.Var),
)


def _binop(children):
    return st.tuples(
        st.sampled_from(["+", "-", "*", "/", "and", "or"]),
        children,
        children,
    ).map(lambda t: ast.BinOp(t[0], t[1], t[2]))


def _case(children):
    return st.tuples(
        children,
        st.lists(
            st.tuples(st.sampled_from(["some", "none", "ok"]), names, children),
            min_size=1,
            max_size=2,
            unique_by=lambda arm: arm[0],
        ),
    ).map(
        lambda t: ast.CaseExpr(
            t[0],
            tuple(ast.CaseArm(label, binder, body) for label, binder, body in t[1]),
        )
    )


expressions = st.recursive(
    atoms,
    lambda children: st.one_of(
        _binop(children),
        st.tuples(st.sampled_from(["some", "ok"]), children).map(
            lambda t: ast.TagExpr(t[0], t[1])
        ),
        _case(children),
        children.map(lambda e: ast.UnaryOp("-", e)),
        children.map(lambda e: ast.UnaryOp("not", e)),
        children.map(lambda e: ast.DynamicExpr(e)),
        st.tuples(children, labels).map(
            lambda t: ast.FieldAccess(t[0], t[1])
        ),
        st.tuples(children, st.lists(children, max_size=2)).map(
            lambda t: ast.Apply(t[0], tuple(t[1]))
        ),
        st.tuples(children, children, children).map(
            lambda t: ast.If(t[0], t[1], t[2])
        ),
        st.dictionaries(labels, children, max_size=2).map(
            lambda fields: ast.RecordLit(tuple(sorted(fields.items())))
        ),
        st.lists(children, max_size=2).map(
            lambda items: ast.ListLit(tuple(items))
        ),
        st.tuples(names, children, children).map(
            lambda t: ast.LetIn(t[0], None, t[1], t[2])
        ),
        st.tuples(
            st.lists(st.tuples(names, simple_types), max_size=2), children
        ).map(lambda t: ast.Lambda(tuple(t[0]), t[1])),
        st.tuples(children, simple_types).map(
            lambda t: ast.CoerceExpr(t[0], t[1])
        ),
    ),
    max_leaves=10,
)


class TestRoundTripProperties:
    @given(expressions)
    @settings(max_examples=300, deadline=None)
    def test_print_parse_print_fixpoint(self, expr):
        printed = pretty_expr(expr)
        reparsed = parse_expression(printed)
        assert pretty_expr(reparsed) == printed

    @given(simple_types)
    @settings(max_examples=200, deadline=None)
    def test_type_print_parse_print_fixpoint(self, type_expr):
        printed = pretty_type(type_expr)
        reparsed = parse_type_expression(printed)
        assert pretty_type(reparsed) == printed
