"""Unit tests for generalized relations as first-class DBPL values."""

import pytest

from repro.errors import EvalError, TypeCheckError
from repro.lang.eval import run_program


def value_of(source):
    return run_program(source).value


FIGURE1 = """
let r1 = relation([
  {Name = "J Doe", Dept = "Sales", Addr = {City = "Moose"}},
  {Name = "M Dee", Dept = "Manuf"},
  {Name = "N Bug", Addr = {State = "MT"}}
]);
let r2 = relation([
  {Dept = "Sales", Addr = {State = "WY"}},
  {Dept = "Admin", Addr = {City = "Billings"}},
  {Dept = "Manuf", Addr = {State = "MT"}}
]);
let joined = rjoin(r1, r2);
"""


class TestFigure1InDbpl:
    def test_join_has_four_members(self):
        assert value_of(FIGURE1 + "rcount(joined)") == 4

    def test_n_bug_in_two_departments(self):
        assert (
            value_of(
                FIGURE1
                + 'rcount(rmatch(joined, {Name = "N Bug"}))'
            )
            == 2
        )

    def test_no_n_bug_in_sales(self):
        assert (
            value_of(
                FIGURE1
                + 'rcount(rmatch(joined, {Name = "N Bug", Dept = "Sales"}))'
            )
            == 0
        )

    def test_members_readable_as_records(self):
        names = value_of(
            FIGURE1
            + "map(fn(o: {}) => show(o), rmembers(joined))"
        )
        assert len(names) == 4
        assert any("Billings" in n for n in names)

    def test_projection(self):
        assert value_of(FIGURE1 + 'rcount(rproject(joined, ["Dept"]))') == 3

    def test_relation_order(self):
        assert value_of(FIGURE1 + "rleq(r1, joined)") is True
        assert value_of(FIGURE1 + "rleq(joined, r1)") is False


class TestRelationSemantics:
    def test_subsumption_on_construction(self):
        assert (
            value_of(
                'rcount(relation([{N = "a"}, {N = "a", D = "x"}]))'
            )
            == 1
        )

    def test_rinsert_subsumes(self):
        assert (
            value_of(
                'let r = relation([{N = "a"}]);\n'
                'rcount(rinsert(r, {N = "a", D = "x"}))'
            )
            == 1
        )

    def test_rinsert_is_functional(self):
        assert (
            value_of(
                'let r = relation([{N = "a"}]);\n'
                'let r2 = rinsert(r, {M = "b"});\n'
                "[rcount(r), rcount(r2)]"
            )
            == [1, 2]
        )

    def test_empty_relation(self):
        assert value_of("rcount(relation([]))") == 0

    def test_rmatch_empty_pattern_matches_all(self):
        assert (
            value_of('rcount(rmatch(relation([{A = 1}, {B = 2}]), {}))') == 2
        )

    def test_nested_records_allowed(self):
        assert (
            value_of(
                'rcount(relation([{Addr = {City = "X", Zip = 1}}]))'
            )
            == 1
        )

    def test_round_trip_members(self):
        member = value_of(
            'head(rmembers(relation([{A = 1, B = {C = true}}])))'
        )
        assert member.get("A") == 1
        assert member.get("B").get("C") is True

    def test_relation_is_dynamic_sealable(self):
        assert (
            str(value_of("typeof (dynamic relation([]))")) == "Relation"
        )


class TestRelationErrors:
    def test_members_must_be_records(self):
        with pytest.raises(TypeCheckError):
            value_of("relation([1, 2])")

    def test_list_valued_fields_rejected_at_runtime(self):
        with pytest.raises(EvalError):
            value_of("relation([{A = [1, 2]}])")

    def test_relations_not_externable(self):
        with pytest.raises(EvalError):
            value_of('extern("r", dynamic relation([]))')

    def test_static_typing_still_guards(self):
        with pytest.raises(TypeCheckError):
            value_of("rjoin(relation([]), 3)")
        with pytest.raises(TypeCheckError):
            value_of("rcount(3)")
        with pytest.raises(TypeCheckError):
            value_of('rproject(relation([]), [1])')
