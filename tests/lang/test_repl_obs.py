"""REPL observability commands: ``:stats``, ``:trace``, ``:events``,
``:export``, and ``:profile``."""

import json
import os
import subprocess
import sys

import pytest

from repro.lang.repl import Repl
from repro.obs import events, profile, trace
from repro.obs.metrics import REGISTRY
from repro.stats import feedback as _feedback


@pytest.fixture
def repl_session():
    lines = []
    repl = Repl(writer=lines.append)
    return repl, lines


@pytest.fixture(autouse=True)
def restore_global_tracer():
    previous = trace.CURRENT
    yield
    trace.set_tracer(previous)


@pytest.fixture(autouse=True)
def restore_global_journal_and_profiler():
    previous_journal = events.CURRENT
    previous_profiler = profile.CURRENT
    yield
    events.set_journal(previous_journal)
    profile.set_profiler(previous_profiler)


class TestStatsCommand:
    def test_stats_prints_registry_table(self, repl_session):
        repl, lines = repl_session
        repl.handle("2 + 2")  # records lang.runs
        repl.handle(":stats")
        text = "\n".join(lines)
        assert "counters:" in text
        assert "lang.runs" in text

    def test_stats_reset_zeroes_registry(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 + 1")
        assert REGISTRY.counter("lang.runs").value > 0
        repl.handle(":stats reset")
        assert "metrics reset" in lines
        assert REGISTRY.counter("lang.runs").value == 0

    def test_stats_with_unanalyzed_name_points_at_analyze(
        self, repl_session
    ):
        # A non-reset argument now names a relation; without collected
        # statistics the REPL points at :analyze.
        repl, lines = repl_session
        repl.handle(":stats everything")
        assert lines[-1] == (
            "no statistics for 'everything' — run :analyze everything first"
        )


class TestTraceCommand:
    def test_trace_status_when_off(self, repl_session):
        trace.disable()
        repl, lines = repl_session
        repl.handle(":trace")
        assert lines[-1] == "tracing is off"

    def test_trace_on_flips_the_global_switch(self, repl_session):
        trace.disable()
        repl, lines = repl_session
        repl.handle(":trace on")
        assert lines[-1] == "tracing on"
        assert trace.CURRENT.enabled
        repl.handle(":trace")
        assert lines[-1] == "tracing is on"

    def test_trace_off(self, repl_session):
        repl, lines = repl_session
        repl.handle(":trace on")
        repl.handle(":trace off")
        assert lines[-1] == "tracing off"
        assert not trace.CURRENT.enabled

    def test_trace_usage_on_junk_argument(self, repl_session):
        repl, lines = repl_session
        repl.handle(":trace sideways")
        assert lines[-1] == "usage: :trace on|off"

    def test_evaluation_prints_span_tree_while_tracing(self, repl_session):
        repl, lines = repl_session
        repl.handle(":trace on")
        repl.handle("6 * 7")
        text = "\n".join(lines)
        assert "42" in lines
        assert "lang.run" in text
        assert "lang.parse" in text
        assert "lang.eval" in text
        # Nested spans render indented under their root.
        assert any(line.startswith("  lang.parse") for line in text.splitlines())

    def test_tracer_cleared_between_evaluations(self, repl_session):
        repl, __ = repl_session
        repl.handle(":trace on")
        repl.handle("1 + 1")
        # The REPL drains the tracer after printing, so a long session
        # does not accumulate span trees.
        assert trace.CURRENT.roots == []

    def test_no_span_output_when_tracing_off(self, repl_session):
        trace.disable()
        repl, lines = repl_session
        repl.handle("6 * 7")
        assert lines == ["42"]


class TestEventsCommand:
    def test_events_off_points_at_the_switch(self, repl_session):
        events.disable()
        repl, lines = repl_session
        repl.handle(":events")
        assert lines[-1] == "journal is off — :events on"

    def test_events_on_off_round_trip(self, repl_session):
        events.disable()
        repl, lines = repl_session
        repl.handle(":events on")
        assert lines[-1] == "journal on"
        assert events.CURRENT.enabled
        repl.handle(":events off")
        assert lines[-1] == "journal off"
        assert not events.CURRENT.enabled

    def test_events_prints_recent_journal_lines(self, repl_session):
        repl, lines = repl_session
        repl.handle(":events on")
        events.publish("WARN", "store", "torn_record", line=7)
        repl.handle(":events")
        assert any("torn_record" in line and "WARN" in line
                   for line in lines)

    def test_events_n_limits_output(self, repl_session):
        repl, lines = repl_session
        repl.handle(":events on")
        for i in range(5):
            events.publish("INFO", "test", "tick%d" % i)
        before = len(lines)
        repl.handle(":events 2")
        printed = lines[before:]
        assert len(printed) == 2
        assert "tick4" in printed[-1]

    def test_events_junk_argument_prints_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":events on")
        repl.handle(":events sideways")
        assert lines[-1] == "usage: :events [n] | :events on|off"

    def test_events_empty_journal(self, repl_session):
        events.disable()
        repl, lines = repl_session
        repl.handle(":events on")
        repl.handle(":events")
        assert lines[-1] == "(journal is empty)"


class TestExportCommand:
    def test_export_without_path_prints_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":export")
        assert lines[-1] == "usage: :export <path>"

    def test_export_writes_a_loadable_trace_file(
        self, repl_session, tmp_path
    ):
        repl, lines = repl_session
        repl.handle(":events on")
        events.publish("INFO", "test", "from_repl")
        path = str(tmp_path / "session.trace.json")
        repl.handle(":export %s" % path)
        assert lines[-1].startswith("exported %s" % path)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert any(
            e["name"] == "test.from_repl" for e in document["traceEvents"]
        )

    def test_export_to_bad_path_reports_the_error(self, repl_session):
        repl, lines = repl_session
        repl.handle(":export /nonexistent-dir/x.json")
        assert lines[-1].startswith("error:")


class TestProfileCommand:
    def test_profile_on_off_round_trip(self, repl_session):
        profile.disable()
        repl, lines = repl_session
        repl.handle(":profile on")
        assert lines[-1] == "profiling on"
        assert profile.CURRENT.enabled
        repl.handle(":profile off")
        assert lines[-1] == "profiling off"
        assert not profile.CURRENT.enabled

    def test_profile_prints_report(self, repl_session):
        repl, lines = repl_session
        repl.handle(":profile on")
        profile.CURRENT.record("plan.join", 0.001, rows_out=3)
        repl.handle(":profile")
        assert any("plan.join" in line for line in lines)

    def test_profile_off_report_points_at_the_switch(self, repl_session):
        profile.disable()
        repl, lines = repl_session
        repl.handle(":profile")
        assert lines[-1] == "(profiler is off — :profile on)"

    def test_profile_junk_argument_prints_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":profile sideways")
        assert lines[-1] == "usage: :profile on|off"


class TestRequestsCommand:
    def test_requests_lists_wide_events(self, repl_session):
        repl, lines = repl_session
        repl.handle("20 + 22")
        repl.handle(":requests")
        text = lines[-1]
        assert "request" in text  # the header row
        assert "local-r" in text  # locally-minted request ids
        assert "20 + 22" in text

    def test_requests_empty_session(self, repl_session):
        repl, lines = repl_session
        repl.handle(":requests")
        assert lines[-1] == "(no requests recorded)"

    def test_requests_n_limits_output(self, repl_session):
        repl, lines = repl_session
        for i in range(4):
            repl.handle("%d + 1" % i)
        repl.handle(":requests 2")
        body = [
            line for line in lines[-1].splitlines()[1:] if line.strip()
        ]
        assert len(body) == 2
        assert "3 + 1" in body[-1]

    def test_requests_junk_argument_prints_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":requests sideways")
        assert lines[-1] == "usage: :requests [n]"

    def test_failed_evaluation_still_recorded(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 + true")
        assert lines[-1].startswith("error:")
        repl.handle(":requests")
        assert "ERR" in lines[-1]


class TestLocalExportParity:
    def test_local_export_carries_harvested_request_spans(
        self, repl_session, tmp_path
    ):
        # Local mode mirrors connected mode: the session harvests its
        # span trees per request, and :export renders them on the
        # backend lane of the merged timeline.
        from repro.obs import export as _export

        repl, lines = repl_session
        repl.handle(":trace on")
        repl.handle("6 * 7")
        path = str(tmp_path / "local.trace.json")
        repl.handle(":export %s" % path)
        repl.handle(":trace off")
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        backend_spans = [
            e for e in document["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == _export.BACKEND_PID
        ]
        assert any(e["name"] == "lang.run" for e in backend_spans)
        roots = [
            e for e in backend_spans if "request_id" in e.get("args", {})
        ]
        assert roots and all(
            r["args"]["request_id"].startswith("local-r") for r in roots
        )


class TestJournalOnFromStartup:
    def test_replay_anomalies_of_the_session_store_are_journaled(
        self, tmp_path
    ):
        """``main()`` must enable the journal *before* opening the
        session store, so a corrupt log's replay WARNs land in
        ``:events`` — the flight recorder's whole point."""
        from repro.persistence.store import LogStore

        path = str(tmp_path / "session.log")
        with LogStore(path) as store:
            store.put("k", {"v": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("9999:123:{\"k\"")  # torn final record
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "src"
        )
        env["PYTHONPATH"] = os.path.abspath(src)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.lang.repl", path],
            input=":events 10\n:quit\n",
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )
        assert completed.returncode == 0
        assert "truncated_tail" in completed.stdout
        assert "WARN" in completed.stdout


class TestStatsFeedback:
    def test_stats_feedback_lists_recent_observations(self, repl_session):
        _feedback.clear()
        _feedback.record("Salary == 42", estimate=30.0, rows_in=500,
                         rows_out=4, relation="emp")
        repl, lines = repl_session
        repl.handle(":stats feedback")
        text = "\n".join(lines)
        assert "predicate" in text  # the header row
        assert "Salary == 42" in text
        assert "emp" in text
        _feedback.clear()

    def test_stats_feedback_when_empty(self, repl_session):
        _feedback.clear()
        repl, lines = repl_session
        repl.handle(":stats feedback")
        assert lines[-1] == (
            "(no feedback recorded — run :explain on a selection)"
        )
