"""REPL observability commands: ``:stats`` and ``:trace on|off``."""

import pytest

from repro.lang.repl import Repl
from repro.obs import trace
from repro.obs.metrics import REGISTRY


@pytest.fixture
def repl_session():
    lines = []
    repl = Repl(writer=lines.append)
    return repl, lines


@pytest.fixture(autouse=True)
def restore_global_tracer():
    previous = trace.CURRENT
    yield
    trace.set_tracer(previous)


class TestStatsCommand:
    def test_stats_prints_registry_table(self, repl_session):
        repl, lines = repl_session
        repl.handle("2 + 2")  # records lang.runs
        repl.handle(":stats")
        text = "\n".join(lines)
        assert "counters:" in text
        assert "lang.runs" in text

    def test_stats_reset_zeroes_registry(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 + 1")
        assert REGISTRY.counter("lang.runs").value > 0
        repl.handle(":stats reset")
        assert "metrics reset" in lines
        assert REGISTRY.counter("lang.runs").value == 0

    def test_stats_with_unanalyzed_name_points_at_analyze(
        self, repl_session
    ):
        # A non-reset argument now names a relation; without collected
        # statistics the REPL points at :analyze.
        repl, lines = repl_session
        repl.handle(":stats everything")
        assert lines[-1] == (
            "no statistics for 'everything' — run :analyze everything first"
        )


class TestTraceCommand:
    def test_trace_status_when_off(self, repl_session):
        trace.disable()
        repl, lines = repl_session
        repl.handle(":trace")
        assert lines[-1] == "tracing is off"

    def test_trace_on_flips_the_global_switch(self, repl_session):
        trace.disable()
        repl, lines = repl_session
        repl.handle(":trace on")
        assert lines[-1] == "tracing on"
        assert trace.CURRENT.enabled
        repl.handle(":trace")
        assert lines[-1] == "tracing is on"

    def test_trace_off(self, repl_session):
        repl, lines = repl_session
        repl.handle(":trace on")
        repl.handle(":trace off")
        assert lines[-1] == "tracing off"
        assert not trace.CURRENT.enabled

    def test_trace_usage_on_junk_argument(self, repl_session):
        repl, lines = repl_session
        repl.handle(":trace sideways")
        assert lines[-1] == "usage: :trace on|off"

    def test_evaluation_prints_span_tree_while_tracing(self, repl_session):
        repl, lines = repl_session
        repl.handle(":trace on")
        repl.handle("6 * 7")
        text = "\n".join(lines)
        assert "42" in lines
        assert "lang.run" in text
        assert "lang.parse" in text
        assert "lang.eval" in text
        # Nested spans render indented under their root.
        assert any(line.startswith("  lang.parse") for line in text.splitlines())

    def test_tracer_cleared_between_evaluations(self, repl_session):
        repl, __ = repl_session
        repl.handle(":trace on")
        repl.handle("1 + 1")
        # The REPL drains the tracer after printing, so a long session
        # does not accumulate span trees.
        assert trace.CURRENT.roots == []

    def test_no_span_output_when_tracing_off(self, repl_session):
        trace.disable()
        repl, lines = repl_session
        repl.handle("6 * 7")
        assert lines == ["42"]
