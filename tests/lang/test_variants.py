"""Unit tests for variant types and case analysis in DBPL."""

import pytest

from repro.errors import EvalError, TypeCheckError
from repro.lang.eval import Interpreter, VariantValue, run_program
from repro.lang.parser import parse_expression, parse_program
from repro.lang.pretty import pretty_expr, pretty_program


def value_of(source):
    return run_program(source).value


MAYBE = "type MaybeInt = [none: Unit | some: Int]\n"

INTLIST = (
    "type IntList = [nil: Unit | cons: {Head: Int, Tail: IntList}]\n"
    "fun listSum(xs: IntList): Int =\n"
    "  case xs of nil u => 0 | cons c => c.Head + listSum(c.Tail)\n"
)


class TestInjectionsAndCase:
    def test_injection_value(self):
        result = value_of("tag some(3)")
        assert isinstance(result, VariantValue)
        assert result.label == "some"
        assert result.payload == 3

    def test_nullary_injection_payload_is_unit(self):
        result = value_of("tag none()")
        assert result.payload is None

    def test_case_dispatch(self):
        assert value_of(
            MAYBE + "case tag some(42) of some n => n | none u => 0"
        ) == 42
        assert value_of(
            MAYBE + "case tag none() of some n => n | none u => 7"
        ) == 7

    def test_case_on_widened_singleton(self):
        """tag some(3) : [some: Int] flows into MaybeInt by width
        subtyping — no annotation anywhere."""
        assert value_of(
            MAYBE
            + "fun get(m: MaybeInt): Int = case m of some n => n | none u => 0\n"
            + "get(tag some(3))"
        ) == 3

    def test_result_type_joins_arms(self):
        from repro.types.kinds import FLOAT

        result = run_program(
            MAYBE + "case tag some(1) of some n => 1 | none u => 2.0"
        )
        assert result.type == FLOAT

    def test_binder_scoped_to_arm(self):
        with pytest.raises(TypeCheckError):
            value_of(
                MAYBE
                + "(case tag some(1) of some n => n | none u => 0) + n"
            )

    def test_variant_equality(self):
        assert value_of("tag some(3) == tag some(3)") is True
        assert value_of("tag some(3) == tag some(4)") is False

    def test_show_format(self):
        assert value_of("show(tag some(3))") == "some(3)"
        assert value_of("show(tag none())") == "none()"


class TestRecursiveVariants:
    def test_list_sum(self):
        assert value_of(
            INTLIST
            + "listSum(tag cons({Head = 1, Tail = tag cons({Head = 2,"
            "  Tail = tag nil()})}))"
        ) == 3

    def test_empty_list(self):
        assert value_of(INTLIST + "listSum(tag nil())") == 0

    def test_deep_list(self):
        source = INTLIST + "let l0 = tag nil();\n"
        for i in range(1, 20):
            source += (
                "let l%d = tag cons({Head = %d, Tail = l%d});\n"
                % (i, i, i - 1)
            )
        assert value_of(source + "listSum(l19)") == sum(range(20))


class TestStaticChecks:
    def test_non_exhaustive_rejected(self):
        with pytest.raises(TypeCheckError) as excinfo:
            value_of(MAYBE + "fun f(m: MaybeInt): Int =\n"
                     "  case m of some n => n\nf(tag some(1))")
        assert "exhaustive" in str(excinfo.value)

    def test_extra_arms_are_dead_but_legal(self):
        # The subject is the singleton [some: Int]; the 'other' arm can
        # never fire but remains well-typed (binder at Bottom).
        assert value_of(
            "case tag some(1) of some n => n | other x => 0"
        ) == 1

    def test_duplicate_arm_rejected(self):
        with pytest.raises(TypeCheckError):
            value_of("case tag some(1) of some n => n | some m => m")

    def test_case_on_non_variant_rejected(self):
        with pytest.raises(TypeCheckError):
            value_of("case 3 of some n => n")

    def test_duplicate_case_in_type_rejected(self):
        with pytest.raises(TypeCheckError):
            value_of("type Bad = [a: Int | a: String]\n1")

    def test_variant_subtyping_direction(self):
        """A function taking the wide variant accepts narrow values,
        not vice versa."""
        with pytest.raises(TypeCheckError):
            value_of(
                MAYBE
                + "fun onlySome(m: [some: Int]): Int = case m of some n => n\n"
                + "let wide: MaybeInt = tag some(1);\n"
                + "onlySome(wide)"
            )


class TestVariantsAtBoundaries:
    def test_dynamic_carries_singleton_variant_type(self):
        from repro.types.kinds import INT, VariantType

        result = run_program("typeof (dynamic tag some(3))")
        assert result.value == VariantType({"some": INT})

    def test_coerce_dynamic_variant(self):
        assert value_of(
            MAYBE
            + "let d = dynamic tag some(3);\n"
            "case (coerce d to MaybeInt) of some n => n | none u => 0"
        ) == 3

    def test_extern_intern_variant(self):
        interp = Interpreter()
        interp.run(MAYBE + 'extern("m", dynamic tag some(41));')
        result = interp.run(
            MAYBE
            + 'case (coerce intern("m") to MaybeInt) of\n'
            "  some n => n + 1 | none u => 0"
        )
        assert result.value == 42

    def test_reserved_field_guard(self):
        """The wire encoding reserves one field name; DBPL identifiers
        cannot collide with it (it contains '$'), and the Python-level
        guard rejects hand-built records that do."""
        from repro.lang.eval import RuntimeRecord, _to_portable

        with pytest.raises(EvalError):
            _to_portable(RuntimeRecord({"variant$label": "x"}))

    def test_variants_in_database(self):
        assert value_of(
            MAYBE
            + """
            let db = newdb();
            insert(db, dynamic tag some(1));
            insert(db, dynamic tag none());
            insert(db, dynamic tag some(2));
            length(get[MaybeInt](db))
            """
        ) == 3


class TestPrettyVariants:
    def test_type_round_trip(self):
        program = parse_program(MAYBE + "1")
        printed = pretty_program(program)
        assert "[none: Unit | some: Int]" in printed
        assert pretty_program(parse_program(printed)) == printed

    def test_expr_round_trip(self):
        for source in (
            "tag some(3)",
            "tag none()",
            "case m of some n => n | none u => 0",
        ):
            printed = pretty_expr(parse_expression(source))
            assert pretty_expr(parse_expression(printed)) == printed
