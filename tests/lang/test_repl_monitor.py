"""REPL monitoring commands: ``:health``, ``:slow``, ``:watch``, and
``:metrics``."""

import pytest

from repro.lang.repl import Repl
from repro.obs import events, monitor, slowlog, trace
from repro.obs.monitor import parse_openmetrics


@pytest.fixture
def repl_session():
    lines = []
    repl = Repl(writer=lines.append)
    return repl, lines


@pytest.fixture(autouse=True)
def restore_globals():
    previous_tracer = trace.CURRENT
    previous_journal = events.CURRENT
    previous_monitor = monitor.CURRENT
    previous_log = slowlog.CURRENT
    yield
    trace.set_tracer(previous_tracer)
    events.set_journal(previous_journal)
    monitor.set_monitor(previous_monitor)
    slowlog.set_slowlog(previous_log)


EMP_SOURCE = (
    'let emp = relation(['
    '{Emp = "Smith", Dept = "Sales", Salary = 40}, '
    '{Emp = "Jones", Dept = "Sales", Salary = 50}, '
    '{Emp = "Brown", Dept = "Manuf", Salary = 40}, '
    '{Emp = "Green", Dept = "Manuf", Salary = 60}, '
    '{Emp = "White", Dept = "Admin", Salary = 55}]);'
)


class TestColumnarCommand:
    def test_toggle_and_status(self, repl_session):
        from repro.core import columnar as _columnar

        repl, lines = repl_session
        try:
            repl.handle(":columnar on")
            assert lines[-1] == "columnar execution on"
            assert _columnar.COLUMNAR.enabled
            repl.handle(":columnar")
            assert lines[-1].startswith("columnar execution is on")
            repl.handle(":columnar off")
            assert lines[-1] == "columnar execution off"
            assert not _columnar.COLUMNAR.enabled
        finally:
            _columnar.disable()

    def test_rejects_garbage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":columnar sideways")
        assert lines[-1] == "usage: :columnar on|off"


class TestHealthCommand:
    def test_health_prints_verdict_and_probe_rows(self, repl_session):
        repl, lines = repl_session
        repl.handle(":health")
        text = lines[-1]
        assert text.startswith("health: ")
        assert "store.integrity" in text
        assert "journal.drops" in text
        assert "stats.adaptive_hits" in text

    def test_health_rejects_arguments(self, repl_session):
        repl, lines = repl_session
        repl.handle(":health everything")
        assert lines[-1] == "usage: :health"

    def test_health_degrades_on_injected_journal_drops(self, repl_session):
        """Acceptance: flood a tiny journal ring, then ``:health``
        reports the drop-rate probe as degraded."""
        events.disable()
        events.enable(capacity=4)
        for i in range(16):
            events.publish("INFO", "test", "tick%d" % i)
        repl, lines = repl_session
        repl.handle(":health")
        drops_row = next(
            line for line in lines[-1].splitlines()
            if "journal.drops" in line
        )
        assert "degraded" in drops_row
        assert "evicted" in drops_row


class TestSlowCommand:
    def test_slow_when_off_points_at_the_switch(self, repl_session):
        slowlog.disable()
        repl, lines = repl_session
        repl.handle(":slow")
        assert lines[-1] == "(slow-query log is off — :slow on)"

    def test_slow_on_off_round_trip(self, repl_session):
        slowlog.disable()
        repl, lines = repl_session
        repl.handle(":slow on")
        assert lines[-1] == "slow-query log on (threshold 100.0ms)"
        assert slowlog.CURRENT.enabled
        repl.handle(":slow off")
        assert lines[-1] == "slow-query log off"
        assert not slowlog.CURRENT.enabled

    def test_slow_threshold_enables_and_applies(self, repl_session):
        slowlog.disable()
        repl, lines = repl_session
        repl.handle(":slow threshold 25")
        assert lines[-1] == "slow threshold 25.0ms"
        assert slowlog.CURRENT.enabled
        assert slowlog.CURRENT.threshold_ms == 25.0

    def test_slow_threshold_without_number_prints_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":slow threshold")
        assert lines[-1] == "usage: :slow threshold <ms>"

    def test_slow_junk_argument_prints_usage(self, repl_session):
        repl, lines = repl_session
        repl.handle(":slow sideways")
        assert lines[-1] == (
            "usage: :slow [n] | :slow on|off | :slow threshold <ms>"
        )

    def test_forced_slow_query_lands_in_the_report(self, repl_session):
        """Acceptance: with the threshold at zero every evaluation is
        slow, and ``:slow`` shows it."""
        slowlog.disable()
        repl, lines = repl_session
        repl.handle(":slow threshold 0")
        repl.handle("6 * 7")
        repl.handle(":slow")
        report = lines[-1]
        assert "slow queries (threshold 0.0ms" in report
        assert "lang" in report
        assert "6 * 7" in report

    def test_explain_entry_carries_plan_drift(self, repl_session):
        """Acceptance: a forced-slow ``:explain`` records an entry whose
        drift column shows the estimate-vs-actual ratio."""
        slowlog.disable()
        repl, lines = repl_session
        repl.handle(EMP_SOURCE)
        repl.handle(":analyze emp")
        repl.handle(":slow threshold 0")
        repl.handle(':explain rmatch(emp, {Dept = "Manuf"})')
        explains = [
            e for e in slowlog.CURRENT.entries() if e.kind == "explain"
        ]
        assert len(explains) == 1
        assert explains[0].drift == pytest.approx(1.0)
        repl.handle(":slow")
        report_rows = [
            line for line in lines[-1].splitlines() if "explain" in line
        ]
        assert len(report_rows) == 1
        assert "1.00" in report_rows[0]

    def test_slow_n_limits_the_table(self, repl_session):
        slowlog.disable()
        repl, lines = repl_session
        repl.handle(":slow threshold 0")
        for i in range(5):
            repl.handle("%d + %d" % (i, i))
        repl.handle(":slow 2")
        report = lines[-1]
        # Header plus exactly two entry rows.
        assert "showing 2 of" in report
        assert "4 + 4" in report
        assert "0 + 0" not in report


class TestWatchCommand:
    def test_watch_samples_one_window_per_second(self, repl_session):
        monitor.disable()
        repl, lines = repl_session
        slept = []
        repl._sleep = slept.append
        repl.handle(":watch 3")
        assert lines[0] == "watching for 3s (Ctrl-C stops early)"
        assert slept == [1.0, 1.0, 1.0]
        assert monitor.CURRENT.enabled
        assert len(monitor.CURRENT.windows()) == 3
        views = [line for line in lines if line.startswith("monitor:")]
        assert len(views) == 3

    def test_watch_defaults_to_five_seconds(self, repl_session):
        repl, lines = repl_session
        repl._sleep = lambda seconds: None
        repl.handle(":watch")
        assert lines[0] == "watching for 5s (Ctrl-C stops early)"

    def test_watch_rejects_junk_and_nonpositive(self, repl_session):
        repl, lines = repl_session
        repl.handle(":watch sideways")
        assert lines[-1] == "usage: :watch <seconds>"
        repl.handle(":watch 0")
        assert lines[-1] == "usage: :watch <seconds>"

    def test_watch_ctrl_c_stops_early(self, repl_session):
        repl, lines = repl_session

        def interrupted(seconds):
            raise KeyboardInterrupt

        repl._sleep = interrupted
        repl.handle(":watch 30")
        assert lines[-1] == "(watch interrupted)"


class TestMetricsCommand:
    def test_metrics_dumps_openmetrics_text(self, repl_session):
        repl, lines = repl_session
        repl.handle("1 + 1")  # records lang.runs
        repl.handle(":metrics")
        text = lines[-1]
        assert "# TYPE" in text
        assert "lang_runs_total" in text
        parsed = parse_openmetrics(text + "\n")
        assert parsed["eof"]
        assert parsed["counters"]["lang_runs"] >= 1

    def test_metrics_path_writes_a_snapshot_file(
        self, repl_session, tmp_path
    ):
        repl, lines = repl_session
        repl.handle("1 + 1")
        path = str(tmp_path / "repl.openmetrics")
        repl.handle(":metrics %s" % path)
        assert lines[-1] == "wrote %s" % path
        with open(path, "r", encoding="utf-8") as handle:
            parsed = parse_openmetrics(handle.read())
        assert parsed["eof"]
        assert "lang_runs" in parsed["counters"]

    def test_metrics_to_bad_path_reports_the_error(self, repl_session):
        repl, lines = repl_session
        repl.handle(":metrics /nonexistent-dir/x.openmetrics")
        assert lines[-1].startswith("error:")
