"""The paper's programs, transcribed into DBPL and executed.

Each test corresponds to a program fragment printed in the paper; the
comments quote the original.  These are the integration tests that tie
the language, type system, extents, and persistence together.
"""

import pytest

from repro.errors import EvalError, TypeCheckError
from repro.lang.eval import Interpreter, run_program


class TestAmberDynamicFragment:
    """let d = dynamic 3;
       let i = coerce d to Int;
       let s = coerce d to String;"""

    def test_the_fragment(self):
        interp = Interpreter()
        interp.run("let d = dynamic 3;")
        assert interp.run("let i = coerce d to Int; i").value == 3
        # "the subsequent line will raise a run-time exception because
        # the type associated with d is not string"
        with pytest.raises(EvalError):
            interp.run("let s = coerce d to String; s")

    def test_d_is_not_an_integer(self):
        """'d is not an integer, and any attempt to use an integer
        operation such as addition on d is a (static) type error.'"""
        interp = Interpreter()
        interp.run("let d = dynamic 3;")
        with pytest.raises(TypeCheckError):
            interp.run("d + 1")


class TestGetPersonsGetEmployees:
    """function getPersons(d: Database): PersonList
       function getEmployees(d: Database): EmployeeList
       ... getPersons will always return a larger list than getEmployees"""

    PROGRAM = """
    type Person = {Name: String, Address: {City: String}}
    type Employee = Person with {Empno: Int, Dept: String}
    type Student = Person with {School: String}

    let db = newdb();
    insert(db, dynamic {Name = "P One", Address = {City = "Austin"}});
    insert(db, dynamic {Name = "E One", Address = {City = "Moose"},
                        Empno = 1, Dept = "Sales"});
    insert(db, dynamic {Name = "S One", Address = {City = "Philly"},
                        School = "Penn"});
    insert(db, dynamic {Name = "WS One", Address = {City = "Glasgow"},
                        Empno = 2, Dept = "Manuf", School = "Glasgow"});

    fun getPersons(d: Database): List[Person] =
      map(fn(p: Person) => p, get[Person](d))
    fun getEmployees(d: Database): List[Employee] =
      map(fn(e: Employee) => e, get[Employee](d))
    """

    def test_persons_larger_than_employees(self):
        result = run_program(
            self.PROGRAM
            + "[length(getPersons(db)), length(getEmployees(db))]"
        )
        persons, employees = result.value
        assert persons == 4
        assert employees == 2
        assert persons > employees

    def test_projecting_employees_appear_in_persons(self):
        """'those records obtained by projecting the Employee records
        will always appear in the result of getPersons.'"""
        result = run_program(
            self.PROGRAM
            + """
            let employee_names = map(fn(e: Employee) => e.Name,
                                     getEmployees(db));
            let person_names = map(fn(p: Person) => p.Name,
                                   getPersons(db));
            fold(fn(acc: Bool, n: String) =>
                   acc and fold(fn(a: Bool, m: String) => a or m == n,
                                false, person_names),
                 true, employee_names)
            """
        )
        assert result.value is True

    def test_subtype_member_extracted_at_employee(self):
        """The working student 'may also be of type Student' yet comes
        back from Get[Employee]."""
        result = run_program(
            self.PROGRAM
            + 'length(filter(fn(e: Employee) => e.Name == "WS One",'
            "               getEmployees(db)))"
        )
        assert result.value == 1


class TestAmberExternIntern:
    """type database = ...
       var d: database = ...
       extern('DBFile', dynamic d)
       -- and in a subsequent program
       var x = intern 'DBFile'
       var d = coerce x to database"""

    def test_the_fragment(self, tmp_path):
        path = str(tmp_path / "amber.log")
        first = Interpreter(path)
        first.run(
            """
            type database = {Employees: List[{Name: String, Empno: Int}]}
            let d = {Employees = [{Name = "J Doe", Empno = 1}]};
            extern("DBFile", dynamic d);
            """
        )
        second = Interpreter(path)
        result = second.run(
            """
            type database = {Employees: List[{Name: String, Empno: Int}]}
            let x = intern("DBFile");
            let d = coerce x to database;
            length(d.Employees)
            """
        )
        assert result.value == 1

    def test_coerce_fails_if_type_changed(self, tmp_path):
        path = str(tmp_path / "amber.log")
        Interpreter(path).run('extern("DBFile", dynamic 3);')
        second = Interpreter(path)
        with pytest.raises(EvalError):
            second.run(
                "type database = {Employees: List[Int]}\n"
                'coerce intern("DBFile") to database'
            )

    def test_modifications_do_not_survive_reintern(self):
        """'the modifications to x will not survive the second intern
        operation.'  DBPL records are immutable, so the anomaly shows as
        a stale re-read: deriving a new value from x and NOT re-externing
        leaves the store unchanged."""
        interp = Interpreter()
        interp.run('extern("DBFile", dynamic {N = 1});')
        result = interp.run(
            """
            let x = coerce intern("DBFile") to {N: Int};
            let modified = x with {M = 2};     -- "code that modifies x"
            let x2 = coerce intern("DBFile") to {N: Int};
            x2
            """
        )
        assert not result.value.has("M")


class TestTotalCostRecursive:
    """The paper's TotalCost over the *recursive* Part type::

         type Part = {IsBase: Bool, ..., Components: List[{SubPart: Part, ...}]}

    resolved to a μ-type; the checker compares it coinductively and the
    finite part values (which bottom out at List[Bottom]) inhabit it."""

    PROGRAM = """
    type Part = {IsBase: Bool, PurchasePrice: Float,
                 ManufacturingCost: Float,
                 Components: List[{SubPart: Part, Qty: Int}]}

    fun totalCost(p: Part): Float =
      if p.IsBase then p.PurchasePrice
      else p.ManufacturingCost +
           sum(map(fn(q: {SubPart: Part, Qty: Int}) =>
                     totalCost(q.SubPart) * intToFloat(q.Qty),
                   p.Components))

    let bolt = {IsBase = true, PurchasePrice = 0.5,
                ManufacturingCost = 0.0, Components = []};
    let plate = {IsBase = false, PurchasePrice = 0.0,
                 ManufacturingCost = 2.0,
                 Components = [{SubPart = bolt, Qty = 4}]};
    let frame = {IsBase = false, PurchasePrice = 0.0,
                 ManufacturingCost = 10.0,
                 Components = [{SubPart = plate, Qty = 2},
                               {SubPart = bolt, Qty = 8}]};
    """

    def test_recursive_total_cost(self):
        result = run_program(self.PROGRAM + "totalCost(frame)")
        # 10 + 2*(2 + 4*0.5) + 8*0.5
        assert result.value == pytest.approx(22.0)

    def test_shared_subpart_recomputed_naively(self):
        """bolt participates through plate AND directly — the naive
        recursion visits it repeatedly, as the paper complains."""
        result = run_program(
            self.PROGRAM
            + """
            let dag = {IsBase = false, PurchasePrice = 0.0,
                       ManufacturingCost = 0.0,
                       Components = [{SubPart = plate, Qty = 1},
                                     {SubPart = plate, Qty = 1}]};
            totalCost(dag)
            """
        )
        assert result.value == pytest.approx(8.0)

    def test_depth_beyond_any_fixed_inlining(self):
        source = self.PROGRAM + "let p0 = bolt;\n"
        for level in range(1, 12):
            source += (
                "let p%d = {IsBase = false, PurchasePrice = 0.0, "
                "ManufacturingCost = 1.0, "
                "Components = [{SubPart = p%d, Qty = 1}]};\n" % (level, level - 1)
            )
        result = run_program(source + "totalCost(p11)")
        assert result.value == pytest.approx(11 + 0.5)

    def test_ill_typed_component_rejected(self):
        with pytest.raises(TypeCheckError):
            run_program(
                self.PROGRAM
                + """
                totalCost({IsBase = false, PurchasePrice = 0.0,
                           ManufacturingCost = 1.0,
                           Components = [{SubPart = 42, Qty = 1}]})
                """
            )


class TestTotalCost:
    """The pre-recursive encoding kept as a regression test: assemblies
    inlined two levels deep, per the original bounded transcription."""

    PROGRAM = """
    type BasePart = {IsBase: Bool, PurchasePrice: Float}

    fun baseCost(p: BasePart): Float =
      if p.IsBase then p.PurchasePrice else 0.0

    type Assembly = {IsBase: Bool, ManufacturingCost: Float,
                     Components: List[{SubPart: BasePart, Qty: Int}]}

    fun totalCost(p: Assembly): Float =
      if p.IsBase then 0.0
      else p.ManufacturingCost +
           sum(map(fn(q: {SubPart: BasePart, Qty: Int}) =>
                     baseCost(q.SubPart) * intToFloat(q.Qty),
                   p.Components))

    let frame = {IsBase = true, PurchasePrice = 100.0};
    let wheel = {IsBase = true, PurchasePrice = 25.0};
    let bike = {IsBase = false, ManufacturingCost = 10.0,
                Components = [{SubPart = frame, Qty = 1},
                              {SubPart = wheel, Qty = 2}]};
    """

    def test_total_cost(self):
        result = run_program(self.PROGRAM + "totalCost(bike)")
        assert result.value == pytest.approx(10.0 + 100.0 + 2 * 25.0)

    def test_shared_subpart_recomputed(self):
        """The paper's complaint: with a shared subpart the cost 'will be
        needlessly recomputed' — visible here as the same baseCost value
        contributing through both components."""
        result = run_program(
            self.PROGRAM
            + """
            let two_wheelers = {IsBase = false, ManufacturingCost = 0.0,
                                Components = [{SubPart = wheel, Qty = 1},
                                              {SubPart = wheel, Qty = 1}]};
            totalCost(two_wheelers)
            """
        )
        assert result.value == pytest.approx(50.0)


class TestPersonToEmployeePromotion:
    """'Suppose we create an object o of type Person ... and at some
    later time wish to extend this object so that it becomes an Employee
    object o'.'  In Amber 'the only way would be to delete the less
    informative record and add a new one'; with the object-level join,
    `with` does it directly."""

    def test_promotion_via_with(self):
        result = run_program(
            """
            type Person = {Name: String}
            type Employee = Person with {Empno: Int}
            let o = {Name = "J Doe"};
            let o2 = o with {Empno = 1234};
            fun useEmployee(e: Employee): Int = e.Empno
            useEmployee(o2)
            """
        )
        assert result.value == 1234

    def test_join_conflict_is_the_k_smith_case(self):
        with pytest.raises(EvalError):
            run_program(
                'let o = {Name = "J Doe"};\n'
                'o with {Name = "K Smith"}'
            )


class TestGenericExtentsInTheLanguage:
    """'it is also a straightforward matter to construct a generic set
    type in PS-algol to define extents' — the same construction in DBPL:
    extents as a polymorphic list library, written in the language."""

    LIBRARY = """
    fun emptyExtent[t](x: t): List[t] = tail([x])  -- [] at type List[t]
    fun insertInto[t](ext: List[t], x: t): List[t] = cons(x, ext)
    fun extentSize[t](ext: List[t]): Int = length(ext)
    fun deleteFrom[t](ext: List[t], victim: t): List[t] =
      filter(fn(x: t) => not (x == victim), ext)
    """

    def test_generic_extents(self):
        result = run_program(
            self.LIBRARY
            + """
            type Person = {Name: String}
            let e0 = emptyExtent[Person]({Name = "seed"});
            let e1 = insertInto[Person](e0, {Name = "A"});
            let e2 = insertInto[Person](e1, {Name = "B"});
            let e3 = deleteFrom[Person](e2, {Name = "A"});
            [extentSize[Person](e2), extentSize[Person](e3)]
            """
        )
        assert result.value == [2, 1]

    def test_multiple_extents_same_type(self):
        """The separation: two independent extents of one type, no class
        construct anywhere."""
        result = run_program(
            self.LIBRARY
            + """
            type Person = {Name: String}
            let current = insertInto[Person](
                emptyExtent[Person]({Name = "s"}), {Name = "A"});
            let former = insertInto[Person](
                emptyExtent[Person]({Name = "s"}), {Name = "B"});
            [extentSize[Person](current), extentSize[Person](former)]
            """
        )
        assert result.value == [1, 1]

    def test_integer_extents(self):
        """'we might well want to create a set of integers, but this set
        would certainly not contain all the integers created during
        execution.'"""
        result = run_program(
            self.LIBRARY
            + """
            let favourites = insertInto[Int](
                insertInto[Int](emptyExtent[Int](0), 3), 7);
            let unrelated = 42;
            extentSize[Int](favourites)
            """
        )
        assert result.value == 2


class TestDerivingClassHierarchy:
    """'the class hierarchy can be derived from the type hierarchy':
    a full end-to-end census over a three-level hierarchy."""

    def test_census(self):
        result = run_program(
            """
            type Person = {Name: String}
            type Employee = Person with {Empno: Int}
            type Manager = Employee with {Level: Int}

            let db = newdb();
            insert(db, dynamic {Name = "p"});
            insert(db, dynamic {Name = "e", Empno = 1});
            insert(db, dynamic {Name = "m", Empno = 2, Level = 3});

            [length(get[Person](db)),
             length(get[Employee](db)),
             length(get[Manager](db))]
            """
        )
        assert result.value == [3, 2, 1]
