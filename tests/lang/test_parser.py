"""Unit tests for the DBPL parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast
from repro.lang.parser import (
    parse_expression,
    parse_program,
    parse_type_expression,
)


class TestTypeExpressions:
    def test_name(self):
        t = parse_type_expression("Int")
        assert isinstance(t, ast.TypeName)
        assert t.name == "Int"

    def test_record(self):
        t = parse_type_expression("{Name: String, Age: Int}")
        assert isinstance(t, ast.TypeRecord)
        assert [label for label, __ in t.fields] == ["Name", "Age"]

    def test_empty_record(self):
        t = parse_type_expression("{}")
        assert isinstance(t, ast.TypeRecord)
        assert t.fields == ()

    def test_nested_record(self):
        t = parse_type_expression("{Addr: {City: String}}")
        assert isinstance(t.fields[0][1], ast.TypeRecord)

    def test_list(self):
        t = parse_type_expression("List[Int]")
        assert isinstance(t, ast.TypeList)

    def test_nested_list(self):
        t = parse_type_expression("List[List[Int]]")
        assert isinstance(t.element, ast.TypeList)

    def test_with(self):
        t = parse_type_expression("Person with {Empno: Int}")
        assert isinstance(t, ast.TypeWith)

    def test_chained_with(self):
        t = parse_type_expression("A with {x: Int} with {y: Int}")
        assert isinstance(t, ast.TypeWith)
        assert isinstance(t.base, ast.TypeWith)

    def test_arrow(self):
        t = parse_type_expression("Int -> Bool")
        assert isinstance(t, ast.TypeFun)
        assert len(t.params) == 1

    def test_arrow_right_assoc(self):
        t = parse_type_expression("Int -> Int -> Int")
        assert isinstance(t.result, ast.TypeFun)

    def test_multi_param_function(self):
        t = parse_type_expression("(Int, String) -> Bool")
        assert isinstance(t, ast.TypeFun)
        assert len(t.params) == 2

    def test_parenthesized_type(self):
        t = parse_type_expression("(Int)")
        assert isinstance(t, ast.TypeName)

    def test_paren_list_needs_arrow(self):
        with pytest.raises(ParseError):
            parse_type_expression("(Int, String)")


class TestExpressions:
    def test_literals(self):
        assert isinstance(parse_expression("42"), ast.IntLit)
        assert isinstance(parse_expression("3.5"), ast.FloatLit)
        assert isinstance(parse_expression('"hi"'), ast.StringLit)
        assert parse_expression("true").value is True
        assert isinstance(parse_expression("unit"), ast.UnitLit)

    def test_record_literal(self):
        e = parse_expression('{Name = "J", Age = 30}')
        assert isinstance(e, ast.RecordLit)
        assert len(e.fields) == 2

    def test_list_literal(self):
        e = parse_expression("[1, 2, 3]")
        assert isinstance(e, ast.ListLit)
        assert len(e.elements) == 3

    def test_empty_list(self):
        assert parse_expression("[]").elements == ()

    def test_field_access_chain(self):
        e = parse_expression("p.Addr.City")
        assert isinstance(e, ast.FieldAccess)
        assert e.label == "City"
        assert isinstance(e.subject, ast.FieldAccess)

    def test_application(self):
        e = parse_expression("f(1, 2)")
        assert isinstance(e, ast.Apply)
        assert len(e.arguments) == 2

    def test_type_application(self):
        e = parse_expression("get[Employee](db)")
        assert isinstance(e, ast.Apply)
        assert isinstance(e.function, ast.TypeApply)

    def test_with_expression(self):
        e = parse_expression("p with {Empno = 1}")
        assert isinstance(e, ast.WithExpr)

    def test_if(self):
        e = parse_expression("if x then 1 else 2")
        assert isinstance(e, ast.If)

    def test_let_in(self):
        e = parse_expression("let x = 1 in x + 1")
        assert isinstance(e, ast.LetIn)
        assert e.annotation is None

    def test_let_in_annotated(self):
        e = parse_expression("let x: Int = 1 in x")
        assert e.annotation is not None

    def test_lambda(self):
        e = parse_expression("fn(x: Int) => x * 2")
        assert isinstance(e, ast.Lambda)
        assert e.params[0][0] == "x"

    def test_lambda_no_params(self):
        assert parse_expression("fn() => 1").params == ()

    def test_dynamic_coerce_typeof(self):
        assert isinstance(parse_expression("dynamic 3"), ast.DynamicExpr)
        e = parse_expression("coerce d to Int")
        assert isinstance(e, ast.CoerceExpr)
        assert isinstance(parse_expression("typeof d"), ast.TypeOfExpr)

    def test_precedence_arithmetic(self):
        e = parse_expression("1 + 2 * 3")
        assert isinstance(e, ast.BinOp)
        assert e.op == "+"
        assert isinstance(e.right, ast.BinOp)

    def test_precedence_comparison_vs_bool(self):
        e = parse_expression("a < b and c < d")
        assert e.op == "and"

    def test_unary_minus(self):
        e = parse_expression("-x + 1")
        assert e.op == "+"
        assert isinstance(e.left, ast.UnaryOp)

    def test_not(self):
        e = parse_expression("not a or b")
        assert e.op == "or"

    def test_parens_override(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"

    def test_dynamic_binds_tight(self):
        # dynamic e.f === dynamic (e.f); dynamic f(x) === dynamic (f(x))
        e = parse_expression("dynamic p.Name")
        assert isinstance(e.operand, ast.FieldAccess)

    def test_trailing_input_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 1")

    def test_missing_expression(self):
        with pytest.raises(ParseError):
            parse_expression("")


class TestDeclarations:
    def test_type_decl(self):
        program = parse_program("type Person = {Name: String}")
        assert isinstance(program.declarations[0], ast.TypeDecl)

    def test_let_decl(self):
        program = parse_program("let x = 1;")
        decl = program.declarations[0]
        assert isinstance(decl, ast.LetDecl)
        assert decl.annotation is None

    def test_let_decl_annotated(self):
        program = parse_program("let x: Int = 1")
        assert program.declarations[0].annotation is not None

    def test_top_level_let_in_is_expression(self):
        program = parse_program("let x = 1 in x + 1")
        decl = program.declarations[0]
        assert isinstance(decl, ast.ExprStmt)
        assert isinstance(decl.expr, ast.LetIn)

    def test_fun_decl(self):
        program = parse_program("fun f(x: Int): Int = x")
        decl = program.declarations[0]
        assert isinstance(decl, ast.FunDecl)
        assert decl.type_params == ()

    def test_polymorphic_fun(self):
        program = parse_program("fun id[t](x: t): t = x")
        decl = program.declarations[0]
        assert decl.type_params[0].name == "t"
        assert decl.type_params[0].bound is None

    def test_bounded_polymorphic_fun(self):
        program = parse_program(
            "fun name[t <= {Name: String}](x: t): String = x.Name"
        )
        assert program.declarations[0].type_params[0].bound is not None

    def test_multiple_declarations(self):
        program = parse_program("let x = 1; let y = 2; x + y")
        assert len(program.declarations) == 3
        assert isinstance(program.declarations[2], ast.ExprStmt)

    def test_semicolons_optional(self):
        program = parse_program("let x = 1\nlet y = 2")
        assert len(program.declarations) == 2

    def test_parse_errors_carry_position(self):
        with pytest.raises(ParseError):
            parse_program("fun f(x Int): Int = x")  # missing ':'
