"""Unit tests for the bill-of-materials application."""

import pytest

from repro.apps.bom import (
    TOTAL_COST,
    TOTAL_MASS,
    clear_memos,
    components_of,
    explosion_size,
    is_tree_explosion,
    make_assembly,
    make_base_part,
    roll_up_memoized,
    roll_up_naive,
    total_cost,
    total_cost_memoized,
    total_mass,
)
from repro.errors import ReproError
from repro.persistence.intrinsic import PersistentHeap


def tree_explosion():
    """bike = frame + 2 wheels, all distinct objects: a tree."""
    frame = make_base_part("frame", 100.0, mass=3.0)
    wheel_a = make_base_part("wheel", 25.0, mass=1.5)
    wheel_b = make_base_part("wheel", 25.0, mass=1.5)
    return make_assembly(
        "bike", 10.0, [(frame, 1), (wheel_a, 1), (wheel_b, 1)], assembly_mass=0.5
    )


def dag_explosion(depth=6):
    """A ladder DAG: each level uses the previous level *twice*.

    Naive costing visits 2^depth leaves; memoized visits depth+1 parts.
    """
    part = make_base_part("bolt", 1.0, mass=0.1)
    for level in range(depth):
        part = make_assembly("asm%d" % level, 0.0, [(part, 1), (part, 1)])
    return part


class TestConstruction:
    def test_base_part_fields(self):
        bolt = make_base_part("bolt", 0.5, mass=0.01)
        assert bolt["IsBase"]
        assert bolt["PurchasePrice"] == 0.5
        assert components_of(bolt) == []

    def test_assembly_components(self):
        bolt = make_base_part("bolt", 0.5)
        plate = make_assembly("plate", 2.0, [(bolt, 4)])
        assert not plate["IsBase"]
        assert components_of(plate) == [(bolt, 4)]

    def test_bad_component_rejected(self):
        with pytest.raises(ReproError):
            make_assembly("x", 1.0, [("not a part", 1)])

    def test_nonpositive_qty_rejected(self):
        bolt = make_base_part("bolt", 0.5)
        with pytest.raises(ReproError):
            make_assembly("x", 1.0, [(bolt, 0)])


class TestCosting:
    def test_paper_recursion_on_tree(self):
        bike = tree_explosion()
        assert total_cost(bike) == 10.0 + 100.0 + 25.0 + 25.0

    def test_quantities_multiply(self):
        bolt = make_base_part("bolt", 0.5)
        plate = make_assembly("plate", 2.0, [(bolt, 4)])
        assert total_cost(plate) == 2.0 + 4 * 0.5

    def test_memoized_equals_naive(self):
        for explosion in (tree_explosion(), dag_explosion(5)):
            naive = total_cost(explosion)
            clear_memos(explosion)
            assert total_cost_memoized(explosion) == naive

    def test_naive_visits_explode_on_dag(self):
        """'the total cost will be needlessly recomputed' — visit counts
        grow with paths (2^depth), not parts (depth+1)."""
        part = dag_explosion(depth=8)
        naive = roll_up_naive(part, TOTAL_COST)
        clear_memos(part)
        memo = roll_up_memoized(part, TOTAL_COST)
        assert naive.value == memo.value
        assert naive.visits == 2 ** 9 - 1     # every path
        assert memo.visits == 9               # every part once

    def test_tree_explosion_gains_nothing(self):
        bike = tree_explosion()
        naive = roll_up_naive(bike, TOTAL_COST)
        clear_memos(bike)
        memo = roll_up_memoized(bike, TOTAL_COST)
        assert naive.visits == memo.visits == explosion_size(bike)

    def test_total_mass(self):
        bike = tree_explosion()
        assert total_mass(bike) == pytest.approx(0.5 + 3.0 + 1.5 + 1.5)

    def test_mass_and_cost_memos_independent(self):
        part = dag_explosion(4)
        roll_up_memoized(part, TOTAL_COST)
        mass = roll_up_memoized(part, TOTAL_MASS)
        assert mass.visits == 5  # cost memo does not shadow mass memo


class TestTransientMemo:
    def test_memo_fields_marked_transient(self):
        part = dag_explosion(3)
        roll_up_memoized(part, TOTAL_COST)
        assert "_TotalCost" in part
        assert "_TotalCost" in part.transient_fields

    def test_clear_memos(self):
        part = dag_explosion(3)
        roll_up_memoized(part, TOTAL_COST)
        cleared = clear_memos(part, TOTAL_COST)
        assert cleared == explosion_size(part)
        assert "_TotalCost" not in part

    def test_memo_not_persisted(self, tmp_path):
        """'there is no need for the additional information to persist':
        committing after a memoized run writes no memo fields."""
        path = str(tmp_path / "parts.log")
        heap = PersistentHeap(path)
        part = dag_explosion(4)
        heap.root("catalog", part)
        heap.commit()
        roll_up_memoized(part, TOTAL_COST)
        stats = heap.commit()
        # Parts already persisted and memos are transient: nothing changed.
        assert stats.objects_written == 0
        heap.close()
        reopened = PersistentHeap(path).get_root("catalog")
        assert "_TotalCost" not in reopened

    def test_persistent_parts_survive_with_costs_recomputable(self, tmp_path):
        path = str(tmp_path / "parts.log")
        heap = PersistentHeap(path)
        part = dag_explosion(4)
        expected = total_cost_memoized(part)
        heap.root("catalog", part)
        heap.commit()
        heap.close()
        back = PersistentHeap(path).get_root("catalog")
        assert total_cost_memoized(back) == expected


class TestShapeDiagnostics:
    def test_tree_detected(self):
        assert is_tree_explosion(tree_explosion())

    def test_dag_detected(self):
        assert not is_tree_explosion(dag_explosion(2))

    def test_explosion_size(self):
        assert explosion_size(tree_explosion()) == 4
        assert explosion_size(dag_explosion(6)) == 7
