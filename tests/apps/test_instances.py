"""Unit tests for the instance-hierarchy scenarios."""

import pytest

from repro.apps.instances import (
    Catalog,
    MakeAndModel,
    ParkingLot,
    register_product,
)
from repro.errors import ReproError

NOVA = "Chevvy", "Nova"


def nova():
    return MakeAndModel("Chevvy", "Nova", length=4.5, weight=3000.0)


class TestParkingLot:
    def test_car_is_instance_of_make_and_model(self):
        model = nova()
        lot = ParkingLot(capacity_metres=100)
        car = lot.admit(model, tag="ABC-123")
        # The car references the model object; no attribute copying.
        assert car["MakeModel"] is model.obj

    def test_charge_derived_from_model(self):
        model = nova()
        lot = ParkingLot(capacity_metres=100, rate_per_metre=2.0)
        car = lot.admit(model)
        assert lot.charge_for(car) == pytest.approx(9.0)

    def test_model_change_propagates_to_instances(self):
        """Level switching: updating the class-level Length reprices
        every instance."""
        model = nova()
        lot = ParkingLot(capacity_metres=100, rate_per_metre=1.0)
        car = lot.admit(model)
        model.obj["Length"] = 5.0
        assert lot.charge_for(car) == pytest.approx(5.0)

    def test_two_identical_cars_coexist(self):
        """Without tags 'one could then have two identical cars in the
        database' — object identity keeps them apart."""
        model = nova()
        lot = ParkingLot(capacity_metres=100)
        first = lot.admit(model)
        second = lot.admit(model)
        assert first is not second
        assert len(lot) == 2
        assert len(lot.cars_of(model)) == 2

    def test_release_by_identity(self):
        model = nova()
        lot = ParkingLot(capacity_metres=100)
        first = lot.admit(model)
        lot.admit(model)
        lot.release(first)
        assert len(lot) == 1

    def test_release_unknown_raises(self):
        lot = ParkingLot(capacity_metres=100)
        with pytest.raises(ReproError):
            lot.release(nova().obj)

    def test_capacity_enforced_via_model_length(self):
        """'availability of space is derived from the make-and-model.'"""
        model = nova()  # 4.5 m
        lot = ParkingLot(capacity_metres=9.0)
        lot.admit(model)
        lot.admit(model)
        with pytest.raises(ReproError):
            lot.admit(model)
        assert lot.available_metres() == pytest.approx(0.0)

    def test_occupied_metres(self):
        lot = ParkingLot(capacity_metres=100)
        lot.admit(nova())
        assert lot.occupied_metres() == pytest.approx(4.5)


class TestPriceDependentLevel:
    def test_expensive_product_is_individual(self):
        catalog = Catalog(threshold=1000.0)
        product = register_product(
            catalog, "turbine", price=50000.0, weight=900.0,
            completed="1986-05-01",
        )
        assert product.kind == "Product"
        assert product["Completed"] == "1986-05-01"
        assert catalog.individuals() == [product]

    def test_cheap_product_is_class_level(self):
        catalog = Catalog(threshold=1000.0)
        line = register_product(
            catalog, "bracket", price=10.0, weight=0.5, quantity=200
        )
        assert line.kind == "ProductLine"
        assert line["InStock"] == 200
        assert catalog.lines() == [line]

    def test_restocking_accumulates(self):
        catalog = Catalog()
        register_product(catalog, "bracket", 10.0, 0.5, quantity=100)
        register_product(catalog, "bracket", 10.0, 0.5, quantity=50)
        assert catalog.stock_of("bracket") == 150
        assert len(catalog.lines()) == 1

    def test_individual_needs_completion_date(self):
        catalog = Catalog()
        with pytest.raises(ReproError):
            register_product(catalog, "turbine", 50000.0, 900.0)

    def test_individuals_registered_singly(self):
        catalog = Catalog()
        with pytest.raises(ReproError):
            register_product(
                catalog, "turbine", 50000.0, 900.0,
                completed="1986-05-01", quantity=2,
            )

    def test_stock_query_spans_levels(self):
        catalog = Catalog(threshold=1000.0)
        register_product(
            catalog, "engine", 2000.0, 300.0, completed="1986-01-01"
        )
        register_product(
            catalog, "engine", 2000.0, 300.0, completed="1986-02-01"
        )
        register_product(catalog, "bracket", 10.0, 0.5, quantity=7)
        assert catalog.stock_of("engine") == 2
        assert catalog.stock_of("bracket") == 7
        assert catalog.stock_of("unknown") == 0

    def test_total_weight_spans_levels(self):
        catalog = Catalog(threshold=1000.0)
        register_product(
            catalog, "engine", 2000.0, 300.0, completed="1986-01-01"
        )
        register_product(catalog, "bracket", 10.0, 0.5, quantity=10)
        assert catalog.total_weight() == pytest.approx(300.0 + 5.0)

    def test_threshold_boundary(self):
        catalog = Catalog(threshold=1000.0)
        at = register_product(catalog, "edge", 1000.0, 1.0, quantity=1)
        assert at.kind == "ProductLine"  # at the threshold: class level
        above = register_product(
            catalog, "edge2", 1000.01, 1.0, completed="1986-06-01"
        )
        assert above.kind == "Product"
