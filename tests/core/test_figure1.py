"""Pin down the paper's Figure 1: a join of generalized relations.

Figure 1 of the paper gives two generalized relations R1 and R2 and their
join R1 ⋈ R2.  This test constructs the inputs exactly as printed and
asserts the output matches the printed result, object for object.
"""

from repro.core.orders import record
from repro.core.relation import GeneralizedRelation

R1 = GeneralizedRelation(
    [
        record(Name="J Doe", Dept="Sales", Addr={"City": "Moose"}),
        record(Name="M Dee", Dept="Manuf"),
        record(Name="N Bug", Addr={"State": "MT"}),
    ]
)

R2 = GeneralizedRelation(
    [
        record(Dept="Sales", Addr={"State": "WY"}),
        record(Dept="Admin", Addr={"City": "Billings"}),
        record(Dept="Manuf", Addr={"State": "MT"}),
    ]
)

EXPECTED = GeneralizedRelation(
    [
        record(
            Name="J Doe",
            Dept="Sales",
            Addr={"City": "Moose", "State": "WY"},
        ),
        record(Name="M Dee", Dept="Manuf", Addr={"State": "MT"}),
        record(Name="N Bug", Dept="Manuf", Addr={"State": "MT"}),
        record(
            Name="N Bug",
            Dept="Admin",
            Addr={"City": "Billings", "State": "MT"},
        ),
    ]
)


class TestFigure1:
    def test_inputs_are_cochains(self):
        R1.check_cochain()
        R2.check_cochain()
        assert len(R1) == 3
        assert len(R2) == 3

    def test_join_matches_paper_exactly(self):
        assert R1.join(R2) == EXPECTED

    def test_join_has_four_objects(self):
        assert len(R1.join(R2)) == 4

    def test_join_commutes(self):
        assert R2.join(R1) == EXPECTED

    def test_result_is_cochain(self):
        R1.join(R2).check_cochain()

    def test_each_result_object_dominates_a_source_pair(self):
        for obj in R1.join(R2):
            assert any(
                a.leq(obj) and b.leq(obj) for a in R1 for b in R2
            )

    def test_join_is_upper_bound_in_relation_order(self):
        joined = R1.join(R2)
        assert R1.leq(joined)
        assert R2.leq(joined)

    def test_n_bug_appears_twice(self):
        """N Bug joins consistently with both Manuf and Admin (the figure's
        most interesting rows): the partial Addr={State=MT} is compatible
        with Admin's Billings City but not with Sales' WY State."""
        n_bug_rows = [
            obj for obj in R1.join(R2) if obj.get("Name") == record(Name="N Bug")["Name"]
        ]
        assert len(n_bug_rows) == 2
        depts = {obj["Dept"].payload for obj in n_bug_rows}
        assert depts == {"Manuf", "Admin"}

    def test_sales_wy_conflict_excluded(self):
        """{State=MT} vs {State=WY} disagree, so no N-Bug-in-Sales row."""
        for obj in R1.join(R2):
            if obj.get("Name") is not None and obj["Name"].payload == "N Bug":
                assert obj["Dept"].payload != "Sales"
