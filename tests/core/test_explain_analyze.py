"""EXPLAIN ANALYZE: per-node actual rows and timing beside estimates.

The workloads are the paper's two running examples — employees joined
with their departments (Figure 1) and parts with their suppliers —
small enough that every cardinality below is checkable by hand.
"""

import re

import pytest

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import (
    analyze,
    eq,
    explain,
    explain_analyze,
    optimize,
    scan,
)
from repro.obs.metrics import REGISTRY

EMP = FlatRelation(
    ("Emp", "Dept", "Salary"),
    [
        ("Smith", "Sales", 40),
        ("Jones", "Sales", 50),
        ("Brown", "Manuf", 40),
        ("Green", "Manuf", 60),
        ("White", "Admin", 55),
    ],
)
DEPT = FlatRelation(
    ("Dept", "City"),
    [("Sales", "Glasgow"), ("Manuf", "Lochgilphead"), ("Admin", "Glasgow")],
)
PART = FlatRelation(
    ("Part", "Supplier", "Weight"),
    [
        ("bolt", "acme", 1),
        ("nut", "acme", 1),
        ("plate", "forge", 9),
        ("beam", "forge", 40),
    ],
)
SUPPLIER = FlatRelation(
    ("Supplier", "City"),
    [("acme", "Glasgow"), ("forge", "Penn")],
)

EMPLOYEES_CATALOG = {"emp": EMP, "dept": DEPT}
PARTS_CATALOG = {"part": PART, "supplier": SUPPLIER}

# One line per node: label, the optimizer's estimate, then the measured
# rows, wall-clock (operator-only and subtree-total), and estimate drift.
# Nodes that enumerated join pairs append the kernel's pruning ratio.
LINE = re.compile(
    r"^\s*\S.*\(estimate=\d+(\.\d+)?\)"
    r"\s+\(actual (rows_in=\d+(\+\d+)*\s+)?rows=\d+"
    r" self=\d+\.\d{3}ms total=\d+\.\d{3}ms drift=\d+\.\d{2}x\)"
    r"(\s+\(pairs tried=\d+ pruned=\d+ \d+%\))?$"
)
# The trailing summary: worst offender, mean, node count.
SUMMARY = re.compile(
    r"^drift: max=\d+\.\d{2}x \(.+\) mean=\d+\.\d{2}x over \d+ nodes$"
)


def employees_query():
    return (
        scan("emp")
        .join(scan("dept"))
        .where(eq("Dept", "Manuf"))
        .project(["Emp", "City"])
    )


def parts_query():
    return (
        scan("part")
        .join(scan("supplier"))
        .where(eq("City", "Glasgow"))
        .project(["Part", "City"])
    )


@pytest.mark.parametrize(
    "plan_factory, catalog",
    [(employees_query, EMPLOYEES_CATALOG), (parts_query, PARTS_CATALOG)],
)
def test_every_node_shows_estimate_and_actuals(plan_factory, catalog):
    plan = optimize(plan_factory(), catalog)
    text = explain_analyze(plan, catalog)
    *lines, summary = text.splitlines()
    assert lines  # non-empty plan
    for line in lines:
        assert LINE.match(line), "malformed explain_analyze line: %r" % line
    assert SUMMARY.match(summary), "malformed drift summary: %r" % summary
    # One output line per plan node, in the same order as explain().
    assert len(lines) == len(explain(plan, 0).splitlines())
    for analyzed, plain in zip(lines, explain(plan, 0).splitlines()):
        assert analyzed.startswith(plain)


def test_root_actual_rows_match_execution():
    catalog = EMPLOYEES_CATALOG
    plan = optimize(employees_query(), catalog)
    result, stats = analyze(plan, catalog)
    assert result == plan.execute(catalog)
    assert stats.rows_out == len(result)
    first_line = explain_analyze(plan, catalog).splitlines()[0]
    assert "rows=%d " % len(result) in first_line


def test_analyze_isolates_self_cost_from_subtree_total():
    catalog = PARTS_CATALOG
    __, stats = analyze(optimize(parts_query(), catalog), catalog)
    for node in stats.walk():
        assert node.self_seconds >= 0.0
        assert node.total_seconds >= node.self_seconds
        assert node.total_seconds == pytest.approx(
            node.self_seconds + sum(c.total_seconds for c in node.children)
        )
        assert node.rows_in == tuple(c.rows_out for c in node.children)


def test_drift_exposes_estimate_vs_actual():
    catalog = EMPLOYEES_CATALOG
    __, stats = analyze(optimize(employees_query(), catalog), catalog)
    selects = [n for n in stats.walk() if n.label.startswith("Select")]
    assert selects
    # Without statistics the fixed 0.1 equality selectivity guesses
    # 0.5 rows for the Manuf filter, which the cost model floors to the
    # 1-row minimum; actually 2 of 5 employees match — a 2x underestimate.
    manuf = selects[0]
    assert manuf.rows_out == 2
    assert manuf.estimate == pytest.approx(1.0)
    assert manuf.drift == pytest.approx(2.0)
    assert manuf.drift_ratio == pytest.approx(2.0)


def test_drift_ratio_is_symmetric_and_never_infinite():
    catalog = EMPLOYEES_CATALOG
    plan = optimize(
        scan("emp").where(eq("Emp", "Nobody")), catalog
    )
    __, stats = analyze(plan, catalog)
    select = next(n for n in stats.walk() if n.label.startswith("Select"))
    # Zero actual rows against the floored 1-row estimate: the old code
    # divided by a 0.5-row estimate and could report inf; both drift and
    # the symmetric ratio must stay finite and >= 1.
    assert select.rows_out == 0
    assert select.estimate >= 1.0
    assert select.drift == pytest.approx(0.0)
    assert select.drift_ratio >= 1.0
    assert select.drift_ratio != float("inf")


def test_index_scan_plan_reports_actuals():
    catalog = Catalog(dict(EMPLOYEES_CATALOG))
    catalog.create_index("emp", "Salary")
    plan = optimize(
        scan("emp").join(scan("dept")).where(eq("Salary", 40)), catalog
    )
    text = explain_analyze(plan, catalog)
    assert "IndexScan(emp)[Salary == 40]" in text
    index_line = next(
        line for line in text.splitlines() if "IndexScan" in line
    )
    assert "rows=2" in index_line  # Smith and Brown earn 40
    assert LINE.match(index_line)


def test_join_nodes_report_pairs_tried_and_pruned():
    catalog = EMPLOYEES_CATALOG
    plan = optimize(employees_query(), catalog)
    __, stats = analyze(plan, catalog)
    join = next(n for n in stats.walk() if n.label.startswith("Join"))
    # The hash join partitions 2 matching emps against 3 depts: it only
    # materializes bucket-matched pairs; the rest count as pruned.
    assert join.pairs_tried >= 1
    assert join.pairs_tried + join.pairs_pruned > 0
    assert 0.0 <= join.pruning_ratio <= 1.0
    # Non-join nodes enumerate no pairs and render no pairs suffix.
    for node in stats.walk():
        if not node.label.startswith("Join"):
            assert node.pairs_tried == 0
            assert node.pairs_pruned == 0


def test_pairs_render_only_on_joining_lines():
    catalog = EMPLOYEES_CATALOG
    plan = optimize(employees_query(), catalog)
    text = explain_analyze(plan, catalog)
    join_lines = [l for l in text.splitlines() if l.lstrip().startswith("Join")]
    assert join_lines
    for line in join_lines:
        assert re.search(r"\(pairs tried=\d+ pruned=\d+ \d+%\)", line)
    for line in text.splitlines():
        if "Scan" in line and "Join" not in line:
            assert "pairs" not in line


def test_pruning_ratio_definition():
    catalog = PARTS_CATALOG
    __, stats = analyze(optimize(parts_query(), catalog), catalog)
    join = next(n for n in stats.walk() if n.label.startswith("Join"))
    logical = join.pairs_tried + join.pairs_pruned
    assert join.pruning_ratio == pytest.approx(
        join.pairs_pruned / logical if logical else 0.0
    )


def test_analyze_records_node_metrics():
    catalog = EMPLOYEES_CATALOG
    plan = optimize(employees_query(), catalog)
    nodes_before = REGISTRY.counter("query.nodes").value
    rows_before = REGISTRY.counter("query.rows_out").value
    timings_before = REGISTRY.histogram("query.node.seconds").count
    result, stats = analyze(plan, catalog)
    node_count = len(list(stats.walk()))
    assert REGISTRY.counter("query.nodes").value == nodes_before + node_count
    assert (
        REGISTRY.counter("query.rows_out").value
        == rows_before + sum(n.rows_out for n in stats.walk())
    )
    assert (
        REGISTRY.histogram("query.node.seconds").count
        == timings_before + node_count
    )
    assert len(result) == 2
