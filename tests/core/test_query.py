"""Unit and property tests for query plans and the optimizer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flat import FlatRelation
from repro.core.query import (
    Join,
    Project,
    Scan,
    Select,
    attr_eq,
    eq,
    explain,
    ge,
    gt,
    le,
    lt,
    ne,
    optimize,
    scan,
)
from repro.errors import RelationError

EMP = FlatRelation(
    ("Name", "Dept", "Salary"),
    [
        ("J Doe", "Sales", 30),
        ("M Dee", "Manuf", 40),
        ("N Bug", "Manuf", 20),
        ("A One", "Admin", 50),
    ],
)

DEPT = FlatRelation(
    ("Dept", "City"),
    [
        ("Sales", "Moose"),
        ("Manuf", "Billings"),
        ("Admin", "Helena"),
    ],
)

CATALOG = {"emp": EMP, "dept": DEPT}


class TestExecution:
    def test_scan(self):
        assert scan("emp").execute(CATALOG) == EMP

    def test_missing_relation(self):
        with pytest.raises(RelationError):
            scan("ghost").execute(CATALOG)

    def test_select(self):
        result = scan("emp").where(eq("Dept", "Manuf")).execute(CATALOG)
        assert len(result) == 2

    def test_select_operators(self):
        assert len(scan("emp").where(lt("Salary", 30)).execute(CATALOG)) == 1
        assert len(scan("emp").where(le("Salary", 30)).execute(CATALOG)) == 2
        assert len(scan("emp").where(gt("Salary", 40)).execute(CATALOG)) == 1
        assert len(scan("emp").where(ge("Salary", 40)).execute(CATALOG)) == 2
        assert len(scan("emp").where(ne("Dept", "Manuf")).execute(CATALOG)) == 2

    def test_attr_eq(self):
        twin = FlatRelation(("A", "B"), [(1, 1), (1, 2)])
        result = scan("t").where(attr_eq("A", "B")).execute({"t": twin})
        assert len(result) == 1

    def test_conjunction_via_where(self):
        result = (
            scan("emp")
            .where(eq("Dept", "Manuf"), gt("Salary", 25))
            .execute(CATALOG)
        )
        assert len(result) == 1

    def test_project(self):
        result = scan("emp").project(["Dept"]).execute(CATALOG)
        assert result.schema == ("Dept",)
        assert len(result) == 3

    def test_join(self):
        result = scan("emp").join(scan("dept")).execute(CATALOG)
        assert len(result) == 4
        assert set(result.schema) == {"Name", "Dept", "Salary", "City"}

    def test_selection_on_missing_attribute(self):
        with pytest.raises(RelationError):
            scan("dept").where(eq("Salary", 1)).execute(CATALOG)

    def test_projection_on_missing_attribute(self):
        with pytest.raises(RelationError):
            scan("dept").project(["Salary"]).execute(CATALOG)


class TestOptimizerRewrites:
    def test_selection_pushed_below_join(self):
        plan = scan("emp").join(scan("dept")).where(eq("Salary", 30))
        optimized = optimize(plan, CATALOG)
        # The selection must now sit below the join, on the emp side.
        assert isinstance(optimized, Join)
        text = explain(optimized)
        assert text.index("Select") > text.index("Join")

    def test_cross_side_selection_stays_on_top(self):
        plan = (
            scan("emp")
            .join(scan("dept"))
            .where(attr_eq("Name", "City"))  # needs both sides
        )
        optimized = optimize(plan, CATALOG)
        assert isinstance(optimized, Select)

    def test_projection_pushed_into_join(self):
        plan = scan("emp").join(scan("dept")).project(["Name", "City"])
        optimized = optimize(plan, CATALOG)
        text = explain(optimized)
        # Some projection now sits under the join (pruning Salary early).
        join_pos = text.index("Join")
        assert "Project" in text[join_pos:]

    def test_join_ordered_smaller_first(self):
        plan = scan("emp").join(scan("dept"))
        optimized = optimize(plan, CATALOG)
        assert isinstance(optimized, Join)
        assert isinstance(optimized.left, Scan)
        assert optimized.left.name == "dept"  # 3 rows < 4 rows

    def test_explain_renders_tree(self):
        plan = scan("emp").where(eq("Dept", "Sales")).project(["Name"])
        text = explain(plan)
        assert "Project" in text and "Select" in text and "Scan(emp)" in text


class TestEquivalenceFixed:
    PLANS = [
        scan("emp"),
        scan("emp").where(eq("Dept", "Manuf")),
        scan("emp").join(scan("dept")),
        scan("emp").join(scan("dept")).where(eq("City", "Moose")),
        scan("emp").join(scan("dept")).where(gt("Salary", 25)).project(
            ["Name", "City"]
        ),
        scan("emp")
        .where(gt("Salary", 20))
        .join(scan("dept").where(ne("City", "Helena")))
        .project(["Name"]),
    ]

    @pytest.mark.parametrize("index", range(len(PLANS)))
    def test_optimized_equals_naive(self, index):
        plan = self.PLANS[index]
        naive = plan.execute(CATALOG)
        optimized = optimize(plan, CATALOG).execute(CATALOG)
        assert optimized == naive


# -- property: optimize preserves semantics on random plans -------------------


@st.composite
def random_plan(draw):
    base = draw(st.sampled_from(["emp", "dept"]))
    plan = scan(base)
    for __ in range(draw(st.integers(min_value=0, max_value=3))):
        action = draw(st.sampled_from(["select", "join", "project"]))
        if action == "select":
            # choose an attribute valid for the current schema
            schema = plan.schema(CATALOG)
            attribute = draw(st.sampled_from(sorted(schema)))
            if attribute == "Salary":
                plan = plan.where(
                    draw(
                        st.sampled_from(
                            [lt("Salary", 35), ge("Salary", 30), eq("Salary", 40)]
                        )
                    )
                )
            elif attribute == "Dept":
                plan = plan.where(eq("Dept", draw(st.sampled_from(
                    ["Sales", "Manuf", "Admin", "Ghost"]))))
            elif attribute == "City":
                plan = plan.where(ne("City", "Moose"))
            else:
                plan = plan.where(ne(attribute, "nobody"))
        elif action == "join":
            other = draw(st.sampled_from(["emp", "dept"]))
            plan = plan.join(scan(other))
        else:
            schema = sorted(plan.schema(CATALOG))
            keep = draw(
                st.lists(
                    st.sampled_from(schema),
                    min_size=1,
                    max_size=len(schema),
                    unique=True,
                )
            )
            plan = plan.project(keep)
    return plan


class TestEquivalenceProperty:
    @given(random_plan())
    @settings(max_examples=150, deadline=None)
    def test_optimize_preserves_results(self, plan):
        naive = plan.execute(CATALOG)
        optimized = optimize(plan, CATALOG)
        assert optimized.execute(CATALOG) == naive
