"""Property-based tests: the order-theoretic laws the paper relies on.

The paper's formal claims — objects form a partial order under ⊑ with a
join operation ⊔; relations (cochains) form a partial order with a join
generalizing the natural join — are checked here on randomly generated
values via hypothesis.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cpo
from repro.core.orders import join, leq, meet, try_join
from repro.core.relation import GeneralizedRelation
from repro.errors import NoMeetError

from tests.strategies import flat_records, records, values


class TestValuePartialOrder:
    @given(values)
    def test_reflexive(self, a):
        assert leq(a, a)

    @given(values, values)
    def test_antisymmetric(self, a, b):
        if leq(a, b) and leq(b, a):
            assert a == b

    @given(values, values, values)
    @settings(max_examples=300)
    def test_transitive(self, a, b, c):
        if leq(a, b) and leq(b, c):
            assert leq(a, c)


class TestJoinLaws:
    @given(values)
    def test_idempotent(self, a):
        assert try_join(a, a) == a

    @given(values, values)
    def test_commutative(self, a, b):
        assert try_join(a, b) == try_join(b, a)

    @given(values, values, values)
    @settings(max_examples=300)
    def test_associative_where_defined(self, a, b, c):
        ab = try_join(a, b)
        bc = try_join(b, c)
        if ab is not None and bc is not None:
            left = try_join(ab, c)
            right = try_join(a, bc)
            # bounded completeness: if both sides are defined they agree
            if left is not None and right is not None:
                assert left == right

    @given(values, values)
    def test_join_is_upper_bound(self, a, b):
        combined = try_join(a, b)
        if combined is not None:
            assert leq(a, combined)
            assert leq(b, combined)

    @given(values, values, values)
    @settings(max_examples=300)
    def test_join_is_least_upper_bound(self, a, b, witness):
        """Any other upper bound dominates the join (leastness)."""
        combined = try_join(a, b)
        if combined is not None and leq(a, witness) and leq(b, witness):
            assert leq(combined, witness)

    @given(values, values)
    def test_comparable_join_is_greater(self, a, b):
        if leq(a, b):
            assert try_join(a, b) == b

    @given(values, values)
    def test_consistency_iff_join_defined(self, a, b):
        assert a.consistent(b) == (try_join(a, b) is not None)


class TestMeetLaws:
    @given(records, records)
    def test_meet_of_records_always_defined(self, a, b):
        # The record part of the domain has a bottom ({}), so meets exist.
        low = meet(a, b)
        assert leq(low, a)
        assert leq(low, b)

    @given(records, records, records)
    @settings(max_examples=300)
    def test_meet_is_greatest_lower_bound(self, a, b, witness):
        low = meet(a, b)
        if leq(witness, a) and leq(witness, b):
            assert leq(witness, low)

    @given(records)
    def test_meet_idempotent(self, a):
        assert meet(a, a) == a

    @given(records, records)
    def test_meet_commutative(self, a, b):
        assert meet(a, b) == meet(b, a)

    @given(values, values)
    def test_meet_raises_only_without_lower_bound(self, a, b):
        try:
            low = meet(a, b)
        except NoMeetError:
            return
        assert leq(low, a) and leq(low, b)


class TestLawCheckers:
    @given(st.lists(values, max_size=6))
    def test_check_partial_order_passes(self, sample):
        assert cpo.check_partial_order(sample, leq) == []

    @given(st.lists(st.tuples(values, values), max_size=6))
    def test_check_join_laws_pass(self, pairs):
        assert cpo.check_join_laws(pairs, try_join, leq) == []

    @given(st.lists(values, max_size=8))
    def test_maximal_elements_form_antichain(self, sample):
        reduced = cpo.maximal_elements(sample, leq)
        assert cpo.is_antichain(reduced, leq)
        # everything in the sample is dominated by something kept
        for element in sample:
            assert any(leq(element, kept) for kept in reduced)

    @given(st.lists(values, max_size=8))
    def test_minimal_elements_form_antichain(self, sample):
        reduced = cpo.minimal_elements(sample, leq)
        assert cpo.is_antichain(reduced, leq)
        for element in sample:
            assert any(leq(kept, element) for kept in reduced)


class TestRelationLaws:
    @given(st.lists(flat_records, max_size=8))
    def test_construction_yields_cochain(self, objects):
        GeneralizedRelation(objects).check_cochain()

    @given(st.lists(flat_records, max_size=6), flat_records)
    def test_insert_preserves_cochain(self, objects, extra):
        relation = GeneralizedRelation(objects).insert(extra)
        relation.check_cochain()

    @given(st.lists(flat_records, max_size=6), flat_records)
    def test_insert_monotone_in_relation_order(self, objects, extra):
        relation = GeneralizedRelation(objects)
        inserted = relation.insert(extra)
        # inserting can only make the relation *more* informative... note
        # the ordering's direction: new info grows members or adds them,
        # and R ⊑ R' requires every member of R' to dominate one of R —
        # which fresh incomparable members break.  What *is* always true:
        # every old member is dominated by... itself (it survives) or its
        # subsumer.
        for member in relation:
            assert any(member.leq(new) for new in inserted)

    @given(st.lists(flat_records, max_size=5), st.lists(flat_records, max_size=5))
    def test_join_commutative(self, left, right):
        r1 = GeneralizedRelation(left)
        r2 = GeneralizedRelation(right)
        assert r1.join(r2) == r2.join(r1)

    @given(st.lists(flat_records, max_size=5), st.lists(flat_records, max_size=5))
    def test_join_is_upper_bound(self, left, right):
        r1 = GeneralizedRelation(left)
        r2 = GeneralizedRelation(right)
        joined = r1.join(r2)
        assert r1.leq(joined)
        assert r2.leq(joined)

    @given(st.lists(flat_records, max_size=5))
    def test_self_join_dominates(self, objects):
        # Join is NOT idempotent on relations: consistent distinct members
        # combine into strictly more informative objects.  But the result
        # always dominates the operand and stays a cochain.
        r = GeneralizedRelation(objects)
        joined = r.join(r)
        assert r.leq(joined)
        joined.check_cochain()

    @given(st.lists(flat_records, max_size=5), st.lists(flat_records, max_size=5))
    def test_meet_is_lower_bound(self, left, right):
        r1 = GeneralizedRelation(left)
        r2 = GeneralizedRelation(right)
        low = r1.meet(r2)
        assert low.leq(r1)
        assert low.leq(r2)
        low.check_cochain()

    @given(
        st.lists(flat_records, max_size=4),
        st.lists(flat_records, max_size=4),
        st.lists(flat_records, max_size=4),
    )
    @settings(max_examples=200)
    def test_meet_is_greatest_lower_bound(self, left, right, witness):
        r1 = GeneralizedRelation(left)
        r2 = GeneralizedRelation(right)
        w = GeneralizedRelation(witness)
        if w.leq(r1) and w.leq(r2):
            assert w.leq(r1.meet(r2))

    @given(st.lists(flat_records, max_size=5), st.lists(flat_records, max_size=5))
    def test_relation_order_reflexive_transitive_sample(self, left, right):
        r1 = GeneralizedRelation(left)
        r2 = GeneralizedRelation(right)
        assert r1.leq(r1)
        joined = r1.join(r2)
        if r1.leq(r2):
            assert r1.leq(joined)
