"""Property tests: the signature-partitioned kernel vs the naive oracle.

Every relation operation that now runs on :mod:`repro.core.kernel` —
construction (cochain reduction), ``insert``, ``join``, ``meet``,
``leq``, plus the probe-backed ``admits``/``matching``/``subsumed_by``
— is checked for *exact* agreement with a naive all-pairs reference
implementation written here from the definitions, on random cochains of
partial records including nested values and mixed signatures.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import cpo, kernel
from repro.core.orders import Atom, leq, record, try_join
from repro.core.relation import GeneralizedRelation
from repro.obs.metrics import REGISTRY
from repro.workloads.relations import mixed_signature_pair

from tests.strategies import records, values


# -- the oracle: straight from the paper's definitions, all pairs ----------


def naive_maximal(members):
    return cpo.maximal_elements(list(members), leq)


def naive_join(left_members, right_members):
    joined = []
    for mine in left_members:
        for theirs in right_members:
            combined = try_join(mine, theirs)
            if combined is not None:
                joined.append(combined)
    return naive_maximal(joined)


def naive_meet(left_members, right_members):
    return cpo.minimal_elements(list(left_members) + list(right_members), leq)


def naive_insert(members, value):
    if any(leq(value, m) for m in members):
        return list(members)
    return [m for m in members if not leq(m, value)] + [value]


def naive_relation_leq(left_members, right_members):
    return all(
        any(leq(mine, theirs) for mine in left_members)
        for theirs in right_members
    )


record_lists = st.lists(records, max_size=12)
value_lists = st.lists(values, max_size=12)


class TestReductionAgainstOracle:
    @given(record_lists)
    @settings(max_examples=200, deadline=None)
    def test_construction_reduces_exactly(self, members):
        relation = GeneralizedRelation(members)
        assert set(relation.objects) == set(naive_maximal(members))
        relation.check_cochain()

    @given(value_lists)
    @settings(max_examples=100, deadline=None)
    def test_reduction_with_atoms_mixed_in(self, members):
        assert set(kernel.reduce_to_maximal(members)) == set(
            naive_maximal(members)
        )

    @given(value_lists)
    @settings(max_examples=100, deadline=None)
    def test_minimal_reduction_agrees(self, members):
        assert set(kernel.reduce_to_minimal(members)) == set(
            cpo.minimal_elements(members, leq)
        )

    @given(record_lists)
    @settings(max_examples=100, deadline=None)
    def test_member_order_is_deterministic(self, members):
        relation = GeneralizedRelation(members)
        assert relation.objects == tuple(
            sorted(set(naive_maximal(members)), key=repr)
        )


class TestInsertAgainstOracle:
    @given(record_lists, records)
    @settings(max_examples=200, deadline=None)
    def test_insert_agrees(self, members, value):
        relation = GeneralizedRelation(members)
        inserted = relation.insert(value)
        expected = naive_insert(relation.objects, value)
        assert set(inserted.objects) == set(expected)
        inserted.check_cochain()

    @given(record_lists, records)
    @settings(max_examples=150, deadline=None)
    def test_admits_agrees(self, members, value):
        relation = GeneralizedRelation(members)
        expected = not any(leq(value, m) for m in relation.objects)
        assert relation.admits(value) == expected

    @given(record_lists, records)
    @settings(max_examples=150, deadline=None)
    def test_subsumed_by_agrees(self, members, value):
        relation = GeneralizedRelation(members)
        expected = {
            m for m in relation.objects if leq(m, value) and m != value
        }
        assert set(relation.subsumed_by(value)) == expected

    @given(record_lists, records)
    @settings(max_examples=150, deadline=None)
    def test_matching_agrees(self, members, pattern):
        relation = GeneralizedRelation(members)
        expected = {m for m in relation.objects if leq(pattern, m)}
        assert set(relation.matching(pattern).objects) == expected


class TestJoinMeetLeqAgainstOracle:
    @given(record_lists, record_lists)
    @settings(max_examples=200, deadline=None)
    def test_join_agrees(self, left, right):
        g_left = GeneralizedRelation(left)
        g_right = GeneralizedRelation(right)
        joined = g_left.join(g_right)
        expected = naive_join(g_left.objects, g_right.objects)
        assert set(joined.objects) == set(expected)
        joined.check_cochain()

    @given(record_lists, record_lists)
    @settings(max_examples=150, deadline=None)
    def test_meet_agrees(self, left, right):
        g_left = GeneralizedRelation(left)
        g_right = GeneralizedRelation(right)
        met = g_left.meet(g_right)
        expected = naive_meet(g_left.objects, g_right.objects)
        assert set(met.objects) == set(expected)

    @given(record_lists, record_lists)
    @settings(max_examples=150, deadline=None)
    def test_relation_leq_agrees(self, left, right):
        g_left = GeneralizedRelation(left)
        g_right = GeneralizedRelation(right)
        expected = naive_relation_leq(g_left.objects, g_right.objects)
        assert g_left.leq(g_right) == expected


class TestKernelPruning:
    """The partition logic must actually prune — not just agree."""

    def test_join_pairs_pruned_on_mixed_signatures(self):
        left, right = mixed_signature_pair(60, key_cardinality=15, seed=3)
        g_left = GeneralizedRelation(left)
        g_right = GeneralizedRelation(right)
        joined, tried = kernel.join_pairs(g_left.objects, g_right.objects)
        pairs = len(g_left) * len(g_right)
        assert tried < pairs  # bucketing skipped conflicting-key pairs
        assert set(kernel.reduce_to_maximal(joined)) == set(
            naive_join(g_left.objects, g_right.objects)
        )

    def test_pruned_counter_advances(self):
        left, right = mixed_signature_pair(40, key_cardinality=10, seed=7)
        g_left = GeneralizedRelation(left)
        g_right = GeneralizedRelation(right)
        pruned = REGISTRY.counter("relation.join.pairs_pruned")
        tried = REGISTRY.counter("relation.join.pairs_tried")
        pairs = REGISTRY.counter("relation.join.pairs")
        pruned_before, tried_before, pairs_before = (
            pruned.value, tried.value, pairs.value,
        )
        g_left.join(g_right)
        assert pruned.value > pruned_before
        assert (pruned.value - pruned_before) + (
            tried.value - tried_before
        ) == pairs.value - pairs_before

    def test_flat_inputs_degenerate_to_hash_join_pruning(self):
        # Uniform signature, shared ground key: only equal-key pairs tried.
        left = [record(K=i % 5, A=i) for i in range(20)]
        right = [record(K=i % 5, B=i) for i in range(20)]
        g_left = GeneralizedRelation(left)
        g_right = GeneralizedRelation(right)
        joined, tried = kernel.join_pairs(g_left.objects, g_right.objects)
        assert tried == sum(
            1
            for mine in g_left.objects
            for theirs in g_right.objects
            if mine["K"] == theirs["K"]
        )
        assert set(kernel.reduce_to_maximal(joined)) == set(
            naive_join(g_left.objects, g_right.objects)
        )

    def test_atoms_never_meet_records(self):
        joined, tried = kernel.join_pairs(
            [Atom(1), Atom(2), record(a=1)], [Atom(1), record(a=1, b=2)]
        )
        # Only the equal-atom pair and the record×record pair are tried.
        assert tried == 2
        assert set(joined) == {Atom(1), record(a=1, b=2)}


class TestSignatureIndexProbes:
    @given(record_lists, records)
    @settings(max_examples=150, deadline=None)
    def test_any_above_below_agree_with_scans(self, members, probe):
        relation = GeneralizedRelation(members)
        index = kernel.SignatureIndex(relation.objects)
        assert index.any_above(probe) == any(
            leq(probe, m) for m in relation.objects
        )
        assert index.any_below(probe) == any(
            leq(m, probe) for m in relation.objects
        )
        assert set(index.members_above(probe)) == {
            m for m in relation.objects if leq(probe, m)
        }
        assert set(index.members_below(probe)) == {
            m for m in relation.objects if leq(m, probe)
        }

    def test_atom_probes(self):
        index = kernel.SignatureIndex([Atom(1), record(a=1)])
        assert index.any_above(Atom(1))
        assert not index.any_above(Atom(2))
        assert index.any_below(Atom(1))
        assert index.members_above(Atom(1)) == [Atom(1)]
        assert index.members_below(Atom(2)) == []
