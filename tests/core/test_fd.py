"""Unit tests for functional dependencies and keys."""

import pytest

from repro.core.fd import (
    FunctionalDependency,
    Key,
    KeyedRelation,
    candidate_keys,
    closure,
    equivalent,
    implies,
    minimal_cover,
)
from repro.core.orders import record
from repro.core.relation import GeneralizedRelation
from repro.errors import KeyViolationError, RelationError

FD = FunctionalDependency


class TestSatisfaction:
    def test_satisfied_on_flat_data(self):
        r = GeneralizedRelation(
            [
                {"Name": "J Doe", "Dept": "Sales"},
                {"Name": "M Dee", "Dept": "Manuf"},
            ]
        )
        assert FD(["Name"], ["Dept"]).holds_in(r)

    def test_violated_on_flat_data(self):
        r = GeneralizedRelation(
            [
                {"Name": "J Doe", "Dept": "Sales", "Age": 1},
                {"Name": "J Doe", "Dept": "Manuf", "Age": 2},
            ]
        )
        fd = FD(["Name"], ["Dept"])
        assert not fd.holds_in(r)
        assert len(fd.violating_pairs(r)) == 1

    def test_partial_on_rhs_does_not_violate(self):
        # One object undefined on Dept: consistency, not equality.
        r = GeneralizedRelation(
            [
                {"Name": "J Doe", "Dept": "Sales"},
                {"Name": "J Doe", "Age": 40},
            ]
        )
        assert FD(["Name"], ["Dept"]).holds_in(r)

    def test_partial_on_lhs_not_compared(self):
        r = GeneralizedRelation(
            [
                {"Name": "J Doe", "Dept": "Sales"},
                {"Dept": "Manuf", "Age": 2},
            ]
        )
        assert FD(["Name"], ["Dept"]).holds_in(r)

    def test_empty_lhs_constrains_all_pairs(self):
        r = GeneralizedRelation([{"Dept": "Sales", "a": 1}, {"Dept": "Manuf", "b": 2}])
        assert not FD([], ["Dept"]).holds_in(r)

    def test_trivial(self):
        assert FD(["a", "b"], ["a"]).is_trivial()
        assert not FD(["a"], ["b"]).is_trivial()

    def test_nested_rhs_consistency(self):
        r = GeneralizedRelation(
            [
                {"Name": "X", "Addr": {"State": "MT"}},
                {"Name": "X", "Addr": {"City": "Helena"}},
            ]
        )
        # Addr values are consistent (joinable), so the FD holds.
        assert FD(["Name"], ["Addr"]).holds_in(r)

    def test_nested_rhs_inconsistency(self):
        r = GeneralizedRelation(
            [
                {"Name": "X", "Addr": {"State": "MT"}},
                {"Name": "X", "Addr": {"State": "WY"}},
            ]
        )
        assert not FD(["Name"], ["Addr"]).holds_in(r)


class TestArmstrong:
    FDS = [FD(["A"], ["B"]), FD(["B"], ["C"])]

    def test_closure_transitive(self):
        assert closure(["A"], self.FDS) == frozenset({"A", "B", "C"})

    def test_closure_no_gain(self):
        assert closure(["C"], self.FDS) == frozenset({"C"})

    def test_implies_transitivity(self):
        assert implies(self.FDS, FD(["A"], ["C"]))

    def test_implies_reflexivity(self):
        assert implies([], FD(["A", "B"], ["A"]))

    def test_implies_augmentation(self):
        assert implies([FD(["A"], ["B"])], FD(["A", "C"], ["B", "C"]))

    def test_not_implied(self):
        assert not implies(self.FDS, FD(["C"], ["A"]))

    def test_equivalent_sets(self):
        split = [FD(["A"], ["B"]), FD(["A"], ["C"]), FD(["B"], ["C"])]
        merged = [FD(["A"], ["B", "C"]), FD(["B"], ["C"])]
        assert equivalent(split, merged)

    def test_not_equivalent(self):
        assert not equivalent([FD(["A"], ["B"])], [FD(["B"], ["A"])])

    def test_minimal_cover_equivalent(self):
        fds = [
            FD(["A"], ["B", "C"]),
            FD(["A", "B"], ["C"]),  # extraneous B
            FD(["B"], ["C"]),
        ]
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)
        # every RHS is a singleton
        assert all(len(fd.rhs) == 1 for fd in cover)

    def test_minimal_cover_removes_redundant(self):
        fds = [FD(["A"], ["B"]), FD(["B"], ["C"]), FD(["A"], ["C"])]
        cover = minimal_cover(fds)
        assert len(cover) == 2

    def test_candidate_keys_simple(self):
        keys = candidate_keys(["A", "B", "C"], self.FDS)
        assert keys == [frozenset({"A"})]

    def test_candidate_keys_multiple(self):
        fds = [FD(["A"], ["B"]), FD(["B"], ["A"])]
        keys = candidate_keys(["A", "B"], fds)
        assert frozenset({"A"}) in keys
        assert frozenset({"B"}) in keys

    def test_candidate_keys_composite(self):
        fds = [FD(["A", "B"], ["C"])]
        keys = candidate_keys(["A", "B", "C"], fds)
        assert keys == [frozenset({"A", "B"})]

    def test_fd_equality_and_hash(self):
        assert FD(["a"], ["b"]) == FD(["a"], ["b"])
        assert len({FD(["a"], ["b"]), FD(["a"], ["b"])}) == 1


class TestKeys:
    def test_key_needs_attribute(self):
        with pytest.raises(RelationError):
            Key([])

    def test_key_of_total_object(self):
        key = Key(["Name"])
        pairs = key.key_of(record(Name="J Doe", Dept="Sales"))
        assert pairs == (("Name", record(Name="J Doe")["Name"]),)

    def test_key_of_partial_object_raises(self):
        with pytest.raises(KeyViolationError):
            Key(["Name"]).key_of(record(Dept="Sales"))

    def test_key_of_atom_raises(self):
        from repro.core.orders import atom

        with pytest.raises(KeyViolationError):
            Key(["Name"]).key_of(atom(3))

    def test_incomparable_same_key_rejected(self):
        relation = GeneralizedRelation([{"Name": "J Doe", "Dept": "Sales"}])
        key = Key(["Name"])
        with pytest.raises(KeyViolationError):
            key.check_insert(relation, {"Name": "J Doe", "Dept": "Manuf"})

    def test_comparable_same_key_allowed_as_update(self):
        relation = GeneralizedRelation([{"Name": "J Doe"}])
        key = Key(["Name"])
        value = key.check_insert(relation, {"Name": "J Doe", "Dept": "Sales"})
        assert value == record(Name="J Doe", Dept="Sales")


class TestKeyedRelation:
    def test_insert_and_lookup(self):
        kr = KeyedRelation(Key(["Name"]))
        kr = kr.insert({"Name": "J Doe", "Dept": "Sales"})
        found = kr.lookup(Name="J Doe")
        assert found == record(Name="J Doe", Dept="Sales")

    def test_lookup_missing(self):
        kr = KeyedRelation(Key(["Name"]))
        assert kr.lookup(Name="Nobody") is None

    def test_update_in_place_via_subsumption(self):
        kr = KeyedRelation(Key(["Name"])).insert({"Name": "J Doe"})
        kr = kr.insert({"Name": "J Doe", "Dept": "Sales"})
        assert len(kr) == 1
        assert kr.lookup(Name="J Doe") == record(Name="J Doe", Dept="Sales")

    def test_comparable_objects_cannot_coexist(self):
        """The paper: with Name a key for Person, 'we cannot now place two
        comparable objects ... for if they were comparable, they would
        necessarily have the same key' — the keyed relation collapses them."""
        kr = KeyedRelation(Key(["Name"]))
        kr = kr.insert({"Name": "J Doe"})
        kr = kr.insert({"Name": "J Doe", "Emp_no": 1234})
        assert len(kr) == 1

    def test_incomparable_same_key_raises(self):
        kr = KeyedRelation(Key(["Name"])).insert({"Name": "J Doe", "Dept": "Sales"})
        with pytest.raises(KeyViolationError):
            kr.insert({"Name": "J Doe", "Dept": "Manuf"})

    def test_existing_relation_validated(self):
        partial = GeneralizedRelation([{"Dept": "Sales"}])
        with pytest.raises(KeyViolationError):
            KeyedRelation(Key(["Name"]), partial)

    def test_iteration_and_len(self):
        kr = KeyedRelation(Key(["Name"]))
        kr = kr.insert({"Name": "A"}).insert({"Name": "B"})
        assert len(kr) == 2
        assert len(list(kr)) == 2
