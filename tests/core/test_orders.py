"""Unit tests for the information ordering on partial values."""

import pytest

from repro.core.orders import (
    EMPTY_RECORD,
    Atom,
    PartialRecord,
    atom,
    consistent,
    from_python,
    join,
    leq,
    lt,
    meet,
    record,
    to_python,
    try_join,
)
from repro.errors import InconsistentJoinError, NoMeetError, NotAValueError


# -- the paper's own running example ----------------------------------------

O1 = record(Name="J Doe", Address={"City": "Austin"})
O2 = record(Name="J Doe", Address={"City": "Austin"}, Emp_no=1234)
O3 = record(Name="J Doe", Address={"City": "Austin", "Zip": 78759})


class TestPaperExamples:
    def test_o1_below_o2_adding_a_field(self):
        assert leq(O1, O2)
        assert not leq(O2, O1)

    def test_o1_below_o3_better_defining_a_field(self):
        assert leq(O1, O3)
        assert not leq(O3, O1)

    def test_o2_o3_incomparable(self):
        assert not leq(O2, O3)
        assert not leq(O3, O2)

    def test_join_of_o2_o3_matches_paper(self):
        expected = record(
            Name="J Doe",
            Address={"City": "Austin", "Zip": 78759},
            Emp_no=1234,
        )
        assert join(O2, O3) == expected

    def test_simple_field_merge(self):
        # {Name='J Doe'} ⊔ {Emp_no=1234} = {Name='J Doe', Emp_no=1234}
        left = record(Name="J Doe")
        right = record(Emp_no=1234)
        assert join(left, right) == record(Name="J Doe", Emp_no=1234)

    def test_disagreeing_names_cannot_join(self):
        # "we cannot join o1 with {Name = 'K Smith'}"
        with pytest.raises(InconsistentJoinError):
            join(O1, record(Name="K Smith"))

    def test_inconsistent_join_reports_path(self):
        err = None
        try:
            join(
                record(Addr={"City": "Moose"}),
                record(Addr={"City": "Billings"}),
            )
        except InconsistentJoinError as exc:
            err = exc
        assert err is not None
        assert err.path == ("Addr", "City")


class TestAtoms:
    def test_atom_reflexive(self):
        assert leq(atom(3), atom(3))

    def test_distinct_atoms_incomparable(self):
        assert not leq(atom(3), atom(4))
        assert not leq(atom(4), atom(3))

    def test_distinct_atoms_inconsistent(self):
        assert try_join(atom("a"), atom("b")) is None
        assert not consistent(atom("a"), atom("b"))

    def test_bool_and_int_distinct(self):
        assert atom(True) != atom(1)
        assert not leq(atom(True), atom(1))
        assert try_join(atom(True), atom(1)) is None

    def test_int_and_float_equal_when_numerically_equal(self):
        assert atom(1) == atom(1.0)
        assert leq(atom(1), atom(1.0))

    def test_atom_rejects_non_scalar(self):
        with pytest.raises(NotAValueError):
            Atom([1, 2])  # type: ignore[arg-type]

    def test_atom_hash_consistent_with_eq(self):
        assert hash(atom("x")) == hash(atom("x"))

    def test_atom_record_incomparable(self):
        assert not leq(atom(1), record(a=1))
        assert not leq(record(a=1), atom(1))
        assert try_join(atom(1), record(a=1)) is None


class TestRecords:
    def test_empty_record_is_least(self):
        assert leq(EMPTY_RECORD, O1)
        assert leq(EMPTY_RECORD, record(x=1))
        assert leq(EMPTY_RECORD, EMPTY_RECORD)

    def test_strictly_less(self):
        assert lt(O1, O2)
        assert not lt(O1, O1)

    def test_record_access(self):
        assert O1["Name"] == atom("J Doe")
        assert O1.get("Missing") is None
        assert "Name" in O1
        assert "Missing" not in O1
        assert len(O1) == 2
        assert O1.labels == ("Address", "Name")

    def test_getitem_raises_on_missing(self):
        with pytest.raises(KeyError):
            O1["Missing"]

    def test_with_field_and_without_field(self):
        extended = O1.with_field("Emp_no", atom(1234))
        assert extended == O2
        assert extended.without_field("Emp_no") == O1

    def test_restrict_drops_undefined_labels(self):
        assert O2.restrict(["Name", "Nothing"]) == record(Name="J Doe")

    def test_restrict_to_nothing_is_empty(self):
        assert O1.restrict([]) == EMPTY_RECORD

    def test_nested_ordering(self):
        shallow = record(Addr={"State": "MT"})
        deep = record(Addr={"State": "MT", "City": "Helena"})
        assert leq(shallow, deep)
        assert not leq(deep, shallow)

    def test_record_label_must_be_string(self):
        with pytest.raises(NotAValueError):
            PartialRecord({1: atom(1)})  # type: ignore[dict-item]

    def test_record_value_must_be_value(self):
        with pytest.raises(NotAValueError):
            PartialRecord({"a": 1})  # type: ignore[dict-item]

    def test_records_hashable(self):
        assert len({O1, O2, O3, O1}) == 3


class TestJoinAndMeet:
    def test_join_is_idempotent(self):
        assert join(O2, O2) == O2

    def test_join_is_commutative(self):
        assert join(O2, O3) == join(O3, O2)

    def test_join_with_empty_is_identity(self):
        assert join(O2, EMPTY_RECORD) == O2

    def test_join_dominates_both(self):
        combined = join(O2, O3)
        assert leq(O2, combined)
        assert leq(O3, combined)

    def test_meet_of_comparable_is_lower(self):
        assert meet(O1, O2) == O1

    def test_meet_drops_disagreeing_fields(self):
        left = record(Name="J Doe", Dept="Sales")
        right = record(Name="J Doe", Dept="Admin")
        assert meet(left, right) == record(Name="J Doe")

    def test_meet_recurses_into_records(self):
        left = record(Addr={"City": "Austin", "Zip": 78759})
        right = record(Addr={"City": "Austin", "Zip": 10001})
        assert meet(left, right) == record(Addr={"City": "Austin"})

    def test_meet_of_distinct_atoms_raises(self):
        with pytest.raises(NoMeetError):
            meet(atom(1), atom(2))

    def test_meet_of_atom_and_record_raises(self):
        with pytest.raises(NoMeetError):
            meet(atom(1), record(a=1))

    def test_meet_of_records_is_lower_bound(self):
        lower = meet(O2, O3)
        assert leq(lower, O2)
        assert leq(lower, O3)


class TestConversion:
    def test_round_trip(self):
        data = {"Name": "J Doe", "Address": {"City": "Austin", "Zip": 78759}}
        assert to_python(from_python(data)) == data

    def test_scalars_round_trip(self):
        for scalar in (0, -5, 3.25, "hi", True, False):
            assert to_python(from_python(scalar)) == scalar

    def test_value_passthrough(self):
        assert from_python(O1) is O1

    def test_rejects_unconvertible(self):
        with pytest.raises(NotAValueError):
            from_python([1, 2, 3])

    def test_record_kwargs_accept_values(self):
        assert record(x=atom(1)) == record(x=1)


class TestRichComparisons:
    def test_operators(self):
        assert O1 <= O2
        assert O2 >= O1
        assert O1 < O2
        assert O2 > O1
        assert not (O2 <= O3)
        assert not (O3 <= O2)

    def test_comparison_with_non_value(self):
        with pytest.raises(TypeError):
            O1 <= 3  # noqa: B015
