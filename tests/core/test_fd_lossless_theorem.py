"""The instance-level lossless-join theorem, property-tested.

The classical result the paper's [Bune86] program derives: if a flat
relation satisfies ``X → Y``, then decomposing it into ``π[X∪Y]`` and
``π[X∪(R−Y)]`` is lossless — the natural join of the projections
rebuilds the relation exactly.  The converse direction provides the
negative control: violating instances can genuinely lose/gain rows.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FunctionalDependency
from repro.core.flat import FlatRelation

ATTRS = ("X", "Y", "Z")


def project_pair(relation, x, y):
    """The (XY, X(rest)) decomposition's two projections."""
    rest = [a for a in relation.schema if a not in y]
    xy = sorted(set(x) | set(y))
    return relation.project(xy), relation.project(rest)


@st.composite
def satisfying_relation(draw):
    """A random flat relation over (X, Y, Z) satisfying X → Y."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    size = draw(st.integers(min_value=0, max_value=12))
    y_of = {}
    rows = []
    for __ in range(size):
        x = rng.randrange(4)
        if x not in y_of:
            y_of[x] = rng.randrange(4)
        rows.append((x, y_of[x], rng.randrange(4)))
    return FlatRelation(ATTRS, rows)


@st.composite
def arbitrary_relation(draw):
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    size = draw(st.integers(min_value=0, max_value=12))
    rows = [
        (rng.randrange(3), rng.randrange(3), rng.randrange(3))
        for __ in range(size)
    ]
    return FlatRelation(ATTRS, rows)


class TestLosslessJoinTheorem:
    @given(satisfying_relation())
    @settings(max_examples=200, deadline=None)
    def test_fd_implies_lossless_decomposition(self, relation):
        fd = FunctionalDependency(["X"], ["Y"])
        assert fd.holds_in(relation.to_generalized())
        left, right = project_pair(relation, ["X"], ["Y"])
        assert left.natural_join(right) == relation

    @given(arbitrary_relation())
    @settings(max_examples=200, deadline=None)
    def test_join_of_projections_never_loses_rows(self, relation):
        """Even without the FD, rejoining only ever *adds* rows."""
        left, right = project_pair(relation, ["X"], ["Y"])
        rejoined = left.natural_join(right)
        for row in relation:
            assert row in rejoined

    @given(arbitrary_relation())
    @settings(max_examples=200, deadline=None)
    def test_violation_iff_spurious_rows_possible(self, relation):
        """When the join of projections adds rows, the FD must be
        violated (contrapositive of the theorem)."""
        fd = FunctionalDependency(["X"], ["Y"])
        left, right = project_pair(relation, ["X"], ["Y"])
        rejoined = left.natural_join(right)
        if rejoined != relation:
            assert not fd.holds_in(relation.to_generalized())

    def test_concrete_violation_gains_rows(self):
        relation = FlatRelation(
            ATTRS, [(1, 10, 100), (1, 20, 200)]  # X→Y violated
        )
        left, right = project_pair(relation, ["X"], ["Y"])
        rejoined = left.natural_join(right)
        assert len(rejoined) == 4  # two spurious tuples
