"""The vectorized columnar engine agrees with the row-at-a-time oracle.

Two layers of pinning:

* kernel level — ``scan``/``filter_sel``/``project``/``hash_join``
  against hand-rolled row semantics (and ``natural_join``), under
  Hypothesis, including empty relations, all-rows-selected identity
  vectors, and dictionary-encoded string columns;
* plan level — ``optimize`` with the columnar switch on produces a
  ``ColumnarExec`` whose result equals the row plan's, with the cost
  threshold, the per-Catalog escape hatch, and the default-off switch
  each checked separately.
"""

import contextlib
import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import columnar as col
from repro.core import query
from repro.core.columnar import (
    BATCH_ROWS,
    ColumnarResult,
    batch_count,
    filter_sel,
    from_flat,
    hash_join,
    project,
    to_flat,
)
from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import (
    ColumnarExec,
    attr_eq,
    eq,
    explain,
    explain_analyze,
    ne,
    optimize,
    scan,
)
from repro.errors import RelationError, SchemaMismatchError
from repro.stats.cost import CostModel
from repro.workloads.relations import star_catalog

# Tiny alphabets so collisions (matches, joins, dedup) are common.
ATOMS = st.one_of(
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["x", "y", "z"]),
    st.booleans(),
)
INTS = st.integers(min_value=-3, max_value=3)


def relations(schema, elements=ATOMS, max_rows=30):
    row = st.tuples(*(elements for _ in schema))
    return st.lists(row, max_size=max_rows).map(
        lambda rows: FlatRelation(schema, rows)
    )


def rows_of(rel, sel):
    """The row tuples selected by ``(rel, sel)`` — the oracle's view."""
    values = [column.values() for column in rel.columns]
    all_rows = list(zip(*values))
    if sel is None:
        return all_rows
    return [all_rows[i] for i in sel]


@contextlib.contextmanager
def forced_columnar(setup_rows=0.0):
    """Columnar on, with the cost threshold floored so tiny Hypothesis
    relations still lower."""
    saved = query.COST_MODEL
    query.COST_MODEL = CostModel(columnar_setup_rows=setup_rows)
    col.enable()
    try:
        yield
    finally:
        col.disable()
        query.COST_MODEL = saved


# ---------------------------------------------------------------- kernels


@given(relations(("K", "A", "B")))
def test_scan_roundtrip(flat):
    assert to_flat(from_flat(flat), None) == flat


@given(relations(("K", "A")), st.sampled_from(["==", "!="]), ATOMS)
def test_filter_eq_matches_oracle(flat, op, operand):
    rel = from_flat(flat)
    sel, batches = filter_sel(rel, None, op, "A", operand)
    want = [
        row for row in rows_of(rel, None)
        if (row[1] == operand) == (op == "==")
    ]
    got = rows_of(rel, sel)
    assert len(got) == len(want)
    assert FlatRelation.bulk_build(rel.schema, got) == FlatRelation.bulk_build(
        rel.schema, want
    )
    assert batches == batch_count(rel.nrows)


@given(
    relations(("K", "A"), elements=INTS),
    st.sampled_from(["<", "<=", ">", ">="]),
    INTS,
)
def test_filter_order_matches_oracle(flat, op, operand):
    fn = {"<": operator.lt, "<=": operator.le,
          ">": operator.gt, ">=": operator.ge}[op]
    rel = from_flat(flat)
    sel, __ = filter_sel(rel, None, op, "K", operand)
    want = [row for row in rows_of(rel, None) if fn(row[0], operand)]
    assert sorted(rows_of(rel, sel)) == sorted(want)


@given(relations(("K", "A", "B")))
def test_filter_attr_eq_matches_oracle(flat):
    rel = from_flat(flat)
    sel, __ = filter_sel(rel, None, "attr==", "A", "B")
    want = [row for row in rows_of(rel, None) if row[1] == row[2]]
    got = rows_of(rel, sel)
    assert len(got) == len(want)
    assert set(got) == set(want)


@given(relations(("K", "A"), elements=INTS), INTS, INTS)
def test_filter_composes_selections(flat, first, second):
    """Filtering an already-filtered selection intersects predicates."""
    rel = from_flat(flat)
    sel, __ = filter_sel(rel, None, ">=", "K", first)
    sel, __ = filter_sel(rel, sel, "<=", "A", second)
    want = [
        row for row in rows_of(rel, None)
        if row[0] >= first and row[1] <= second
    ]
    assert sorted(rows_of(rel, sel)) == sorted(want)


@given(relations(("K", "A"), elements=INTS))
def test_all_rows_selected_stays_identity(flat):
    """A predicate every row passes returns the identity vector ``None``
    — the engine never materializes ``range(nrows)``."""
    rel = from_flat(flat)
    sel, __ = filter_sel(rel, None, "!=", "A", 99)
    assert sel is None
    sel, __ = filter_sel(rel, None, "<=", "K", 3)
    assert sel is None


@given(
    relations(("K", "A", "B")),
    st.lists(st.sampled_from(["K", "A", "B"]), unique=True),
)
def test_project_matches_oracle(flat, attributes):
    rel = from_flat(flat)
    out, __ = project(rel, None, attributes)
    positions = [flat.schema.index(a) for a in attributes]
    want = {tuple(row[p] for p in positions) for row in rows_of(rel, None)}
    assert out.schema == tuple(attributes)
    assert to_flat(out, None) == FlatRelation.bulk_build(
        tuple(attributes), want
    )


@given(relations(("K", "A")), relations(("K", "B")))
def test_hash_join_matches_natural_join(left, right):
    out, __ = hash_join(from_flat(left), None, from_flat(right), None)
    assert to_flat(out, None) == left.natural_join(right)


@given(relations(("A",), max_rows=8), relations(("B",), max_rows=8))
def test_join_without_common_attribute_is_cross_product(left, right):
    out, __ = hash_join(from_flat(left), None, from_flat(right), None)
    assert to_flat(out, None) == left.natural_join(right)
    assert out.nrows == len(left) * len(right)


@given(
    relations(("K", "A"), elements=INTS),
    relations(("K", "B"), elements=INTS),
    INTS,
)
def test_join_respects_input_selections(left, right, threshold):
    """Selections feeding the join prune exactly the filtered rows."""
    c_left, c_right = from_flat(left), from_flat(right)
    left_sel, __ = filter_sel(c_left, None, ">=", "K", threshold)
    out, __ = hash_join(c_left, left_sel, c_right, None)
    filtered = FlatRelation(left.schema, rows_of(c_left, left_sel))
    assert to_flat(out, None) == filtered.natural_join(right)


def test_empty_relations_flow_through():
    empty = FlatRelation(("K", "A"), [])
    rel = from_flat(empty)
    assert rel.nrows == 0
    sel, batches = filter_sel(rel, None, "==", "K", 1)
    assert rows_of(rel, sel) == [] and batches == 1
    out, __ = project(rel, sel, ["A"])
    assert to_flat(out, None) == FlatRelation(("A",), [])
    joined, __ = hash_join(rel, None, from_flat(empty), None)
    assert joined.nrows == 0


def test_project_to_no_attributes_keeps_set_semantics():
    rel = from_flat(FlatRelation(("K",), [(1,), (2,)]))
    out, __ = project(rel, None, [])
    assert to_flat(out, None) == FlatRelation((), [()])
    empty, __ = project(from_flat(FlatRelation(("K",), [])), None, [])
    assert to_flat(empty, None) == FlatRelation((), [])


def test_unknown_attribute_raises():
    rel = from_flat(FlatRelation(("K",), [(1,)]))
    with pytest.raises(RelationError):
        rel.column("missing")


# ------------------------------------------------- dictionary encoding


def test_low_cardinality_strings_get_encoded():
    values = ["dept%d" % (i % 5) for i in range(200)]
    column = col._build_column(list(values))
    assert column.codes is not None and len(column.domain) == 5
    assert column.values() == values
    assert column.code_for("dept3") == column.codes[3]
    assert column.code_for("absent") is None


def test_high_cardinality_stays_plain():
    column = col._build_column(list(range(200)))
    assert column.codes is None


@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=80, max_size=120),
       st.sampled_from(["x", "y", "z", "w"]))
def test_encoded_filter_matches_oracle(values, operand):
    flat = FlatRelation(("K", "S"), list(enumerate(values)))
    rel = from_flat(flat)
    assert rel.column("S").codes is not None, "expected dictionary encoding"
    for op in ("==", "!="):
        sel, __ = filter_sel(rel, None, op, "S", operand)
        want = [
            row for row in rows_of(rel, None)
            if (row[1] == operand) == (op == "==")
        ]
        assert sorted(rows_of(rel, sel)) == sorted(want)


@given(st.lists(st.sampled_from(["x", "y", "z"]), min_size=80, max_size=120))
def test_encoded_join_and_project_match_oracle(values):
    left = FlatRelation(("K", "S"), list(enumerate(values)))
    right = FlatRelation(("S", "B"), [("x", 1), ("y", 2), ("w", 3)])
    c_left = from_flat(left)
    assert c_left.column("S").codes is not None
    out, __ = hash_join(c_left, None, from_flat(right), None)
    assert to_flat(out, None) == left.natural_join(right)
    projected, __ = project(c_left, None, ["S"])
    assert to_flat(projected, None) == FlatRelation(("S",), set(values))


# ------------------------------------------------------------ plan level


def star_plan():
    return (
        scan("emp")
        .join(scan("dept"))
        .where(eq("Salary", 42))
        .project(["Emp", "City"])
    )


def test_lowering_fires_and_results_agree():
    catalog = Catalog(star_catalog(300))
    row_result = optimize(star_plan(), catalog).execute(catalog)
    with forced_columnar():
        plan = optimize(star_plan(), catalog)
        assert isinstance(plan, ColumnarExec)
        rendered = explain(plan)
        for label in ("ColumnarExec", "CScan", "CFilter", "CHashJoin",
                      "CProject"):
            assert label in rendered, rendered
        assert plan.execute(catalog) == row_result


@settings(max_examples=40, deadline=None)
@given(
    relations(("K", "A")),
    relations(("K", "B")),
    st.sampled_from([eq, ne]),
    ATOMS,
)
def test_lowered_plans_equal_row_plans(left, right, pred, constant):
    """End-to-end property: whatever the optimizer lowers computes the
    same relation the row pipeline does."""
    catalog = Catalog({"L": left, "R": right})
    plan = scan("L").where(pred("A", constant)).join(scan("R")).project(
        ["K", "B"]
    )
    row_result = optimize(plan, catalog).execute(catalog)
    with forced_columnar():
        lowered = optimize(plan, catalog)
        assert lowered.execute(catalog) == row_result


def test_cost_threshold_keeps_tiny_inputs_row_wise():
    tiny = Catalog(star_catalog(4, n_depts=2))
    with forced_columnar(setup_rows=12.0):
        assert not isinstance(optimize(star_plan(), tiny), ColumnarExec)
    big = Catalog(star_catalog(300))
    with forced_columnar(setup_rows=12.0):
        assert isinstance(optimize(star_plan(), big), ColumnarExec)


def test_switch_defaults_off():
    catalog = Catalog(star_catalog(300))
    assert not col.COLUMNAR.enabled
    assert not isinstance(optimize(star_plan(), catalog), ColumnarExec)


def test_catalog_escape_hatch():
    catalog = Catalog(star_catalog(300), columnar=False)
    with forced_columnar():
        assert not isinstance(optimize(star_plan(), catalog), ColumnarExec)


def test_index_scan_is_not_lowered():
    """An eligible sibling still lowers, but IndexScan stays row-wise."""
    catalog = Catalog(star_catalog(300))
    catalog.create_index("emp", "Salary")
    with forced_columnar():
        plan = optimize(star_plan(), catalog)
        rendered = explain(plan)
    assert "IndexScan" in rendered
    assert "CScan(dept)" in rendered, rendered
    assert plan.execute(catalog) == optimize(
        star_plan(), catalog
    ).execute(catalog)


def test_explain_analyze_reports_batches():
    catalog = Catalog(star_catalog(300))
    with forced_columnar():
        plan = optimize(star_plan(), catalog)
        report = explain_analyze(plan, catalog)
    assert "ColumnarExec" in report
    assert "columnar batches=" in report and "rows/s=" in report


def test_columnar_result_is_lazy_then_equal():
    catalog = Catalog(star_catalog(300))
    with forced_columnar():
        result = optimize(star_plan(), catalog).execute(catalog)
    assert isinstance(result, ColumnarResult)
    assert result._columns is not None  # not yet materialized
    n = len(result)  # O(1), still unmaterialized
    assert result._columns is not None
    row_result = optimize(star_plan(), catalog).execute(catalog)
    assert result == row_result  # forces materialization
    assert result._columns is None
    assert len(result) == n == len(row_result)


def test_attr_eq_lowered_plan_agrees():
    catalog = Catalog(
        {"r": FlatRelation(("A", "B"), [(i, i % 3) for i in range(50)])}
    )
    plan = scan("r").where(attr_eq("A", "B"))
    row_result = optimize(plan, catalog).execute(catalog)
    with forced_columnar():
        assert optimize(plan, catalog).execute(catalog) == row_result


# ---------------------------------------------------------- plumbing


def test_batch_count():
    assert batch_count(0) == 1
    assert batch_count(1) == 1
    assert batch_count(BATCH_ROWS) == 1
    assert batch_count(BATCH_ROWS + 1) == 2


def test_bulk_build_matches_validating_constructor():
    rows = [(1, "x"), (2, "y")]
    assert FlatRelation.bulk_build(("K", "A"), rows) == FlatRelation(
        ("K", "A"), rows
    )
    with pytest.raises(SchemaMismatchError):
        FlatRelation.bulk_build(("K", "K"), rows)


def test_scan_cache_hits_by_identity():
    flat = FlatRelation(("K",), [(1,)])
    assert col.scan(flat) is col.scan(flat)
    assert col.scan(FlatRelation(("K",), [(1,)])) is not col.scan(flat)


def test_prefer_columnar_break_even():
    model = CostModel()
    assert not model.prefer_columnar(8)
    assert model.prefer_columnar(16)
    assert model.prefer_columnar(100_000)
    assert model.columnar_cost(1000) < model.scan_cost(1000)
