"""Unit and property tests for the flat-join fast path."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.orders import record
from repro.core.relation import (
    GeneralizedRelation,
    flat_schema_of,
    join_with_fastpath,
)
from repro.obs.metrics import REGISTRY
from repro.workloads.relations import flat_join_pair, random_partial_records


class TestFlatDetection:
    def test_flat_relation_detected(self):
        relation = GeneralizedRelation([{"A": 1, "B": 2}, {"A": 3, "B": 4}])
        assert flat_schema_of(relation) == ("A", "B")

    def test_partial_member_rejected(self):
        relation = GeneralizedRelation([{"A": 1, "B": 2}, {"A": 3}])
        assert flat_schema_of(relation) is None

    def test_nested_member_rejected(self):
        relation = GeneralizedRelation([{"A": {"X": 1}}])
        assert flat_schema_of(relation) is None

    def test_empty_relation_has_empty_schema(self):
        # vacuously flat, schema unknown → None means "not usable"
        assert flat_schema_of(GeneralizedRelation()) is None


class TestFastpathEquivalence:
    def test_matches_generic_on_flat(self):
        left, right = flat_join_pair(40, key_cardinality=8, seed=7)
        g_left, g_right = left.to_generalized(), right.to_generalized()
        assert join_with_fastpath(g_left, g_right) == g_left.join(g_right)

    def test_falls_back_on_partial(self):
        left = GeneralizedRelation([{"K": 1, "A": 2}, {"K": 2}])
        right = GeneralizedRelation([{"K": 1, "B": 3}])
        assert join_with_fastpath(left, right) == left.join(right)

    def test_empty_operand_short_circuits(self):
        empty = GeneralizedRelation()
        other = GeneralizedRelation([{"A": 1}])
        assert join_with_fastpath(empty, other) == other.join(empty)
        assert join_with_fastpath(other, empty) == GeneralizedRelation()
        assert join_with_fastpath(empty, empty) == GeneralizedRelation()

    def test_empty_partial_operand_short_circuits(self):
        # Even a non-flat operand joins with the empty relation to empty;
        # the short-circuit must not require flat schemas.
        nested = GeneralizedRelation([{"A": {"X": 1}}, {"B": 2}])
        empty = GeneralizedRelation()
        assert join_with_fastpath(nested, empty) == nested.join(empty)

    @given(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_flat_inputs(self, n_left, n_right, cardinality):
        left = GeneralizedRelation(
            record(K=i % (cardinality + 1), A=i) for i in range(n_left)
        )
        right = GeneralizedRelation(
            record(K=i % (cardinality + 1), B=i) for i in range(n_right)
        )
        assert join_with_fastpath(left, right) == left.join(right)

    @given(st.integers(min_value=0, max_value=9))
    @settings(max_examples=40, deadline=None)
    def test_property_partial_inputs(self, seed):
        left = GeneralizedRelation(
            random_partial_records(10, null_fraction=0.4, seed=seed)
        )
        right = GeneralizedRelation(
            random_partial_records(10, null_fraction=0.4, seed=seed + 100)
        )
        assert join_with_fastpath(left, right) == left.join(right)


class TestFastpathCounters:
    """The hit/miss counters make fast-path coverage measurable."""

    def test_fastpath_actually_fires_on_flat_inputs(self):
        left, right = flat_join_pair(20, key_cardinality=4, seed=11)
        g_left, g_right = left.to_generalized(), right.to_generalized()
        hits = REGISTRY.counter("relation.join_fastpath.hit")
        misses = REGISTRY.counter("relation.join_fastpath.miss")
        hits_before, misses_before = hits.value, misses.value
        join_with_fastpath(g_left, g_right)
        assert hits.value == hits_before + 1
        assert misses.value == misses_before

    def test_fallback_counts_as_miss(self):
        left = GeneralizedRelation([{"K": 1, "A": 2}, {"K": 2}])
        right = GeneralizedRelation([{"K": 1, "B": 3}])
        misses = REGISTRY.counter("relation.join_fastpath.miss")
        before = misses.value
        join_with_fastpath(left, right)
        assert misses.value == before + 1

    def test_empty_operand_counts_as_hit(self):
        # An empty operand used to fall through to the pairwise path and
        # count as a miss; it is a short-circuit hit now.
        nested = GeneralizedRelation([{"A": {"X": 1}}])
        empty = GeneralizedRelation()
        hits = REGISTRY.counter("relation.join_fastpath.hit")
        misses = REGISTRY.counter("relation.join_fastpath.miss")
        hits_before, misses_before = hits.value, misses.value
        assert join_with_fastpath(nested, empty) == GeneralizedRelation()
        assert hits.value == hits_before + 1
        assert misses.value == misses_before

    def test_generic_join_counts_calls_and_pairs(self):
        left = GeneralizedRelation([{"K": 1, "A": 2}, {"K": 2, "A": 3}])
        right = GeneralizedRelation([{"K": 1, "B": 3}])
        joins = REGISTRY.counter("relation.join")
        pairs = REGISTRY.counter("relation.join.pairs")
        joins_before, pairs_before = joins.value, pairs.value
        left.join(right)
        assert joins.value == joins_before + 1
        assert pairs.value == pairs_before + 2

    def test_insert_counted(self):
        relation = GeneralizedRelation([{"A": 1}])
        inserts = REGISTRY.counter("relation.insert")
        before = inserts.value
        relation.insert({"A": 2})
        assert inserts.value == before + 1
