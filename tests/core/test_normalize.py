"""Unit tests for relational design theory (projection, BCNF, 3NF, chase)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fd import FunctionalDependency as FD
from repro.core.fd import candidate_keys, equivalent, implies
from repro.core.normalize import (
    bcnf_decompose,
    bcnf_violations,
    is_3nf,
    is_bcnf,
    is_lossless,
    is_superkey,
    preserves_dependencies,
    project_fds,
    synthesize_3nf,
)

# The classic textbook schema: Emp(Name, Dept, City) with
# Name -> Dept, Dept -> City.
EMP_ATTRS = ("Name", "Dept", "City")
EMP_FDS = [FD(["Name"], ["Dept"]), FD(["Dept"], ["City"])]


class TestProjection:
    def test_transitive_dependency_appears(self):
        projected = project_fds(EMP_FDS, ["Name", "City"])
        assert implies(projected, FD(["Name"], ["City"]))

    def test_no_spurious_dependency(self):
        projected = project_fds(EMP_FDS, ["Dept", "Name"])
        assert not implies(projected, FD(["Dept"], ["Name"]))

    def test_projection_onto_all_is_equivalent(self):
        assert equivalent(project_fds(EMP_FDS, EMP_ATTRS), EMP_FDS)

    def test_projection_onto_disjoint_is_empty(self):
        assert project_fds(EMP_FDS, ["Unrelated"]) == []


class TestSuperkeysAndBcnf:
    def test_superkey(self):
        assert is_superkey(["Name"], EMP_ATTRS, EMP_FDS)
        assert not is_superkey(["Dept"], EMP_ATTRS, EMP_FDS)

    def test_bcnf_violations(self):
        violations = bcnf_violations(EMP_ATTRS, EMP_FDS)
        assert FD(["Dept"], ["City"]) in violations
        assert FD(["Name"], ["Dept"]) not in violations

    def test_is_bcnf_negative(self):
        assert not is_bcnf(EMP_ATTRS, EMP_FDS)

    def test_is_bcnf_positive(self):
        assert is_bcnf(("A", "B"), [FD(["A"], ["B"])])

    def test_trivial_fds_never_violate(self):
        assert is_bcnf(("A", "B"), [FD(["A", "B"], ["A"])])

    def test_bcnf_decompose_reaches_bcnf(self):
        pieces = bcnf_decompose(EMP_ATTRS, EMP_FDS)
        for piece in pieces:
            assert is_bcnf(piece, project_fds(EMP_FDS, piece))

    def test_bcnf_decompose_is_lossless(self):
        pieces = bcnf_decompose(EMP_ATTRS, EMP_FDS)
        assert is_lossless(EMP_ATTRS, EMP_FDS, pieces)

    def test_bcnf_decompose_covers_attributes(self):
        pieces = bcnf_decompose(EMP_ATTRS, EMP_FDS)
        assert frozenset().union(*pieces) == frozenset(EMP_ATTRS)

    def test_bcnf_on_already_normal_schema(self):
        pieces = bcnf_decompose(("A", "B"), [FD(["A"], ["B"])])
        assert pieces == [frozenset({"A", "B"})]

    def test_classic_dependency_loss(self):
        """Address(Street City Zip): {Street,City}->Zip, Zip->City.
        BCNF decomposition famously cannot preserve the first FD."""
        attrs = ("Street", "City", "Zip")
        fds = [FD(["Street", "City"], ["Zip"]), FD(["Zip"], ["City"])]
        pieces = bcnf_decompose(attrs, fds)
        assert is_lossless(attrs, fds, pieces)
        assert not preserves_dependencies(fds, pieces)


class Test3NF:
    def test_emp_not_3nf(self):
        assert not is_3nf(EMP_ATTRS, EMP_FDS)

    def test_prime_attribute_tolerated(self):
        # Street/City/Zip is 3NF (City is prime) though not BCNF.
        attrs = ("Street", "City", "Zip")
        fds = [FD(["Street", "City"], ["Zip"]), FD(["Zip"], ["City"])]
        assert is_3nf(attrs, fds)
        assert not is_bcnf(attrs, fds)

    def test_synthesis_reaches_3nf(self):
        pieces = synthesize_3nf(EMP_ATTRS, EMP_FDS)
        for piece in pieces:
            assert is_3nf(piece, project_fds(EMP_FDS, piece))

    def test_synthesis_lossless_and_preserving(self):
        pieces = synthesize_3nf(EMP_ATTRS, EMP_FDS)
        assert is_lossless(EMP_ATTRS, EMP_FDS, pieces)
        assert preserves_dependencies(EMP_FDS, pieces)

    def test_synthesis_covers_orphan_attributes(self):
        pieces = synthesize_3nf(("A", "B", "Z"), [FD(["A"], ["B"])])
        assert frozenset().union(*pieces) == frozenset({"A", "B", "Z"})

    def test_synthesis_includes_a_key(self):
        pieces = synthesize_3nf(EMP_ATTRS, EMP_FDS)
        keys = candidate_keys(EMP_ATTRS, EMP_FDS)
        assert any(any(key <= piece for key in keys) for piece in pieces)


class TestChase:
    def test_lossless_split_on_key(self):
        assert is_lossless(
            ("A", "B", "C"),
            [FD(["A"], ["B"])],
            [frozenset({"A", "B"}), frozenset({"A", "C"})],
        )

    def test_lossy_split(self):
        assert not is_lossless(
            ("A", "B", "C"),
            [],
            [frozenset({"A", "B"}), frozenset({"B", "C"})],
        )

    def test_trivial_decomposition_lossless(self):
        assert is_lossless(EMP_ATTRS, EMP_FDS, [frozenset(EMP_ATTRS)])

    def test_three_way_chain(self):
        attrs = ("A", "B", "C", "D")
        fds = [FD(["A"], ["B"]), FD(["B"], ["C"]), FD(["C"], ["D"])]
        pieces = [frozenset("AB"), frozenset("BC"), frozenset("CD")]
        assert is_lossless(attrs, fds, pieces)


SMALL_ATTRS = ("A", "B", "C", "D")

small_fds = st.lists(
    st.tuples(
        st.sets(st.sampled_from(SMALL_ATTRS), min_size=1, max_size=2),
        st.sets(st.sampled_from(SMALL_ATTRS), min_size=1, max_size=2),
    ).map(lambda pair: FD(pair[0], pair[1])),
    max_size=4,
)


class TestNormalizationProperties:
    @given(small_fds)
    @settings(max_examples=60, deadline=None)
    def test_bcnf_decomposition_always_lossless_and_normal(self, fds):
        pieces = bcnf_decompose(SMALL_ATTRS, fds)
        assert frozenset().union(*pieces) == frozenset(SMALL_ATTRS)
        assert is_lossless(SMALL_ATTRS, fds, pieces)
        for piece in pieces:
            assert is_bcnf(piece, project_fds(fds, piece))

    @given(small_fds)
    @settings(max_examples=60, deadline=None)
    def test_3nf_synthesis_always_lossless_preserving_normal(self, fds):
        pieces = synthesize_3nf(SMALL_ATTRS, fds)
        assert frozenset().union(*pieces) == frozenset(SMALL_ATTRS)
        assert is_lossless(SMALL_ATTRS, fds, pieces)
        assert preserves_dependencies(fds, pieces)
        for piece in pieces:
            assert is_3nf(piece, project_fds(fds, piece))

    @given(small_fds)
    @settings(max_examples=40, deadline=None)
    def test_projection_sound(self, fds):
        projected = project_fds(fds, ("A", "B"))
        for fd in projected:
            assert implies(fds, fd)
            assert fd.lhs <= {"A", "B"}
            assert fd.rhs <= {"A", "B"}
