"""Unit tests for the flat 1NF relational algebra baseline."""

import pytest

from repro.core.flat import FlatRelation
from repro.core.relation import GeneralizedRelation
from repro.errors import SchemaMismatchError

EMP = FlatRelation(
    ("Name", "Dept"),
    [
        {"Name": "J Doe", "Dept": "Sales"},
        {"Name": "M Dee", "Dept": "Manuf"},
        {"Name": "N Bug", "Dept": "Manuf"},
    ],
)

DEPT = FlatRelation(
    ("Dept", "City"),
    [
        {"Dept": "Sales", "City": "Moose"},
        {"Dept": "Manuf", "City": "Billings"},
    ],
)


class TestConstruction:
    def test_rows_as_tuples(self):
        r = FlatRelation(("a", "b"), [(1, 2), (3, 4)])
        assert len(r) == 2
        assert (1, 2) in r

    def test_rows_as_mappings(self):
        assert {"Name": "J Doe", "Dept": "Sales"} in EMP

    def test_duplicate_rows_collapse(self):
        r = FlatRelation(("a",), [(1,), (1,)])
        assert len(r) == 1

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(SchemaMismatchError):
            FlatRelation(("a", "a"))

    def test_partial_row_rejected(self):
        with pytest.raises(SchemaMismatchError):
            FlatRelation(("a", "b"), [{"a": 1}])

    def test_extra_attribute_rejected(self):
        with pytest.raises(SchemaMismatchError):
            FlatRelation(("a",), [{"a": 1, "b": 2}])

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaMismatchError):
            FlatRelation(("a", "b"), [(1,)])

    def test_first_normal_form_enforced(self):
        with pytest.raises(SchemaMismatchError):
            FlatRelation(("a",), [({"nested": 1},)])


class TestAlgebra:
    def test_select(self):
        manuf = EMP.select(lambda row: row["Dept"] == "Manuf")
        assert len(manuf) == 2

    def test_project(self):
        depts = EMP.project(["Dept"])
        assert depts.schema == ("Dept",)
        assert len(depts) == 2  # duplicates collapse

    def test_project_unknown_attribute(self):
        with pytest.raises(SchemaMismatchError):
            EMP.project(["Nope"])

    def test_rename(self):
        renamed = EMP.rename({"Name": "EmpName"})
        assert renamed.schema == ("EmpName", "Dept")
        assert len(renamed) == len(EMP)

    def test_union(self):
        extra = FlatRelation(("Name", "Dept"), [{"Name": "Z Zed", "Dept": "Admin"}])
        assert len(EMP.union(extra)) == 4

    def test_union_attribute_order_irrelevant(self):
        reordered = FlatRelation(("Dept", "Name"), [{"Name": "J Doe", "Dept": "Sales"}])
        assert len(EMP.union(reordered)) == 3

    def test_union_schema_mismatch(self):
        with pytest.raises(SchemaMismatchError):
            EMP.union(DEPT)

    def test_difference(self):
        rest = EMP.difference(
            FlatRelation(("Name", "Dept"), [{"Name": "J Doe", "Dept": "Sales"}])
        )
        assert len(rest) == 2

    def test_intersect(self):
        both = EMP.intersect(
            FlatRelation(("Name", "Dept"), [{"Name": "J Doe", "Dept": "Sales"}])
        )
        assert len(both) == 1

    def test_natural_join(self):
        joined = EMP.natural_join(DEPT)
        assert set(joined.schema) == {"Name", "Dept", "City"}
        assert len(joined) == 3
        assert {"Name": "N Bug", "Dept": "Manuf", "City": "Billings"} in joined

    def test_natural_join_no_common_attributes_is_product(self):
        left = FlatRelation(("a",), [(1,), (2,)])
        right = FlatRelation(("b",), [(3,), (4,)])
        assert len(left.natural_join(right)) == 4

    def test_natural_join_empty_when_no_match(self):
        other = FlatRelation(("Dept", "City"), [{"Dept": "Admin", "City": "X"}])
        assert len(EMP.natural_join(other)) == 0


class TestGeneralizedBridge:
    def test_round_trip(self):
        back = FlatRelation.from_generalized(EMP.to_generalized(), EMP.schema)
        assert back == EMP

    def test_generalized_join_coincides_with_natural_join(self):
        """The paper: the generalized join 'is a generalization of the
        "natural join" for 1NF relations'.  On flat inputs they agree."""
        generalized = EMP.to_generalized().join(DEPT.to_generalized())
        flat = EMP.natural_join(DEPT)
        assert generalized == flat.to_generalized()

    def test_from_generalized_rejects_partial(self):
        partial = GeneralizedRelation([{"Name": "J Doe"}])
        with pytest.raises(SchemaMismatchError):
            FlatRelation.from_generalized(partial, ("Name", "Dept"))

    def test_from_generalized_rejects_nested(self):
        nested = GeneralizedRelation([{"Name": "X", "Addr": {"State": "MT"}}])
        with pytest.raises(SchemaMismatchError):
            FlatRelation.from_generalized(nested, ("Name", "Addr"))


class TestEquality:
    def test_attribute_order_irrelevant(self):
        r1 = FlatRelation(("a", "b"), [(1, 2)])
        r2 = FlatRelation(("b", "a"), [(2, 1)])
        assert r1 == r2
        assert hash(r1) == hash(r2)

    def test_iteration_yields_dicts(self):
        rows = list(FlatRelation(("a", "b"), [(1, 2)]))
        assert rows == [{"a": 1, "b": 2}]
