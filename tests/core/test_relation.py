"""Unit tests for generalized relations (cochains + join + projection)."""

import pytest

from repro.core import cpo
from repro.core.orders import leq, record
from repro.core.relation import (
    GeneralizedRelation,
    RelationBuilder,
    incremental_insert_all,
)
from repro.errors import RelationError


class TestConstruction:
    def test_empty(self):
        r = GeneralizedRelation()
        assert len(r) == 0
        assert list(r) == []

    def test_reduces_comparable_inputs(self):
        r = GeneralizedRelation(
            [
                {"Name": "J Doe"},
                {"Name": "J Doe", "Dept": "Sales"},
            ]
        )
        assert len(r) == 1
        assert record(Name="J Doe", Dept="Sales") in r

    def test_accepts_plain_dicts(self):
        r = GeneralizedRelation([{"a": 1}])
        assert record(a=1) in r

    def test_duplicates_collapse(self):
        r = GeneralizedRelation([{"a": 1}, {"a": 1}])
        assert len(r) == 1

    def test_construction_is_cochain(self):
        r = GeneralizedRelation([{"a": 1}, {"b": 2}, {"a": 1, "c": 3}])
        r.check_cochain()
        assert len(r) == 2


class TestInsertSubsumption:
    def test_insert_new_incomparable(self):
        r = GeneralizedRelation([{"a": 1}])
        r2 = r.insert({"b": 2})
        assert len(r2) == 2
        assert len(r) == 1  # immutability

    def test_insert_dominated_is_noop(self):
        r = GeneralizedRelation([{"a": 1, "b": 2}])
        r2 = r.insert({"a": 1})
        assert r2 == r

    def test_insert_dominating_subsumes(self):
        r = GeneralizedRelation([{"a": 1}])
        r2 = r.insert({"a": 1, "b": 2})
        assert len(r2) == 1
        assert record(a=1, b=2) in r2

    def test_insert_subsumes_several(self):
        r = GeneralizedRelation([{"a": 1}, {"b": 2}])
        r2 = r.insert({"a": 1, "b": 2})
        assert len(r2) == 1

    def test_admits(self):
        r = GeneralizedRelation([{"a": 1, "b": 2}])
        assert not r.admits({"a": 1})
        assert r.admits({"c": 3})
        assert not r.admits({"a": 1, "b": 2})

    def test_subsumed_by(self):
        r = GeneralizedRelation([{"a": 1}, {"b": 2}])
        subsumed = r.subsumed_by({"a": 1, "c": 3})
        assert subsumed == (record(a=1),)

    def test_remove(self):
        r = GeneralizedRelation([{"a": 1}])
        assert len(r.remove({"a": 1})) == 0

    def test_remove_absent_raises(self):
        with pytest.raises(RelationError):
            GeneralizedRelation().remove({"a": 1})


class TestOrdering:
    def test_leq_reflexive(self):
        r = GeneralizedRelation([{"a": 1}, {"b": 2}])
        assert r.leq(r)

    def test_more_informative_relation_is_above(self):
        less = GeneralizedRelation([{"Name": "J Doe"}])
        more = GeneralizedRelation([{"Name": "J Doe", "Dept": "Sales"}])
        assert less.leq(more)
        assert not more.leq(less)

    def test_empty_relation_is_top(self):
        # Vacuously, every object of the empty relation dominates — so the
        # empty relation is the greatest element in this ordering.
        anything = GeneralizedRelation([{"a": 1}])
        assert anything.leq(GeneralizedRelation())
        assert not GeneralizedRelation().leq(anything)

    def test_operators(self):
        less = GeneralizedRelation([{"Name": "J Doe"}])
        more = GeneralizedRelation([{"Name": "J Doe", "Dept": "Sales"}])
        assert less <= more
        assert more >= less

    def test_join_is_least_upper_bound_sample(self):
        r1 = GeneralizedRelation([{"a": 1}, {"b": 2}])
        r2 = GeneralizedRelation([{"a": 1, "c": 3}])
        joined = r1.join(r2)
        assert r1.leq(joined)
        assert r2.leq(joined)

    def test_meet_is_lower_bound(self):
        r1 = GeneralizedRelation([{"a": 1, "b": 2}])
        r2 = GeneralizedRelation([{"a": 1, "c": 3}])
        low = r1.meet(r2)
        assert low.leq(r1)
        assert low.leq(r2)


class TestJoin:
    def test_join_with_empty_relation_is_empty(self):
        # The empty relation is top; joining with it yields no pairs.
        r = GeneralizedRelation([{"a": 1}])
        assert len(r.join(GeneralizedRelation())) == 0

    def test_join_on_disjoint_labels_is_product(self):
        r1 = GeneralizedRelation([{"a": 1}, {"a": 2}])
        r2 = GeneralizedRelation([{"b": 1}, {"b": 2}])
        assert len(r1.join(r2)) == 4

    def test_join_filters_inconsistent_pairs(self):
        r1 = GeneralizedRelation([{"k": 1, "x": 10}, {"k": 2, "x": 20}])
        r2 = GeneralizedRelation([{"k": 1, "y": 99}])
        joined = r1.join(r2)
        assert len(joined) == 1
        assert record(k=1, x=10, y=99) in joined

    def test_join_result_reduced_to_cochain(self):
        r1 = GeneralizedRelation([{"a": 1}, {"b": 2}])
        r2 = GeneralizedRelation([{"a": 1, "b": 2}])
        joined = r1.join(r2)
        joined.check_cochain()
        # both pairs join to the same dominating object
        assert len(joined) == 1

    def test_join_associative_on_sample(self):
        r1 = GeneralizedRelation([{"a": 1}])
        r2 = GeneralizedRelation([{"b": 2}])
        r3 = GeneralizedRelation([{"c": 3}])
        assert r1.join(r2).join(r3) == r1.join(r2.join(r3))


class TestProjectSelectMatch:
    RELATION = GeneralizedRelation(
        [
            {"Name": "J Doe", "Dept": "Sales", "Addr": {"State": "WY"}},
            {"Name": "M Dee", "Dept": "Manuf"},
            {"Name": "N Bug", "Addr": {"State": "MT"}},
        ]
    )

    def test_project_restricts_labels(self):
        projected = self.RELATION.project(["Name"])
        assert len(projected) == 3
        assert record(Name="J Doe") in projected

    def test_project_reduces(self):
        projected = self.RELATION.project(["Dept"])
        # N Bug has no Dept: its projection {} is subsumed.
        assert len(projected) == 2

    def test_project_to_empty_labels(self):
        projected = self.RELATION.project([])
        assert len(projected) == 1  # just the empty record
        assert record() in projected

    def test_select(self):
        sales = self.RELATION.select(
            lambda o: o.get("Dept") is not None and o["Dept"].payload == "Sales"
        )
        assert len(sales) == 1

    def test_matching_pattern(self):
        matched = self.RELATION.matching({"Addr": {"State": "MT"}})
        assert len(matched) == 1
        assert record(Name="N Bug", Addr={"State": "MT"}) in matched

    def test_matching_empty_pattern_matches_all(self):
        assert len(self.RELATION.matching({})) == 3


class TestBuilderAndBulk:
    def test_builder_equals_incremental(self):
        objs = [
            {"k": i % 5, "v": i}  # plenty of incomparable objects
            for i in range(40)
        ] + [{"k": 1}, {"k": 2}]  # some subsumed ones
        built = RelationBuilder().add_all(objs).build()
        incremental = incremental_insert_all(None, objs)
        assert built == incremental

    def test_builder_chaining(self):
        r = RelationBuilder().add({"a": 1}).add({"b": 2}).build()
        assert len(r) == 2

    def test_builder_len(self):
        builder = RelationBuilder().add({"a": 1}).add({"a": 1})
        assert len(builder) == 2  # pending, not yet reduced
        assert len(builder.build()) == 1

    def test_maximal_elements_agrees_with_relation(self):
        objs = [record(a=1), record(a=1, b=2), record(c=3)]
        reduced = cpo.maximal_elements(objs, leq)
        assert set(reduced) == set(GeneralizedRelation(objs).objects)


class TestEqualityHash:
    def test_equality_order_independent(self):
        r1 = GeneralizedRelation([{"a": 1}, {"b": 2}])
        r2 = GeneralizedRelation([{"b": 2}, {"a": 1}])
        assert r1 == r2
        assert hash(r1) == hash(r2)

    def test_repr_deterministic(self):
        r1 = GeneralizedRelation([{"a": 1}, {"b": 2}])
        r2 = GeneralizedRelation([{"b": 2}, {"a": 1}])
        assert repr(r1) == repr(r2)
