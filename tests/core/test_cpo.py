"""Unit tests for the generic partial-order utilities."""

from repro.core import cpo
from repro.core.orders import leq, record, try_join

A = record(a=1)
B = record(b=2)
AB = record(a=1, b=2)
ABC = record(a=1, b=2, c=3)


def _leq_int(x, y):
    return x <= y


def _divides(x, y):
    return y % x == 0


class TestAntichainsAndChains:
    def test_antichain_true(self):
        assert cpo.is_antichain([A, B], leq)

    def test_antichain_false(self):
        assert not cpo.is_antichain([A, AB], leq)

    def test_antichain_empty_and_singleton(self):
        assert cpo.is_antichain([], leq)
        assert cpo.is_antichain([A], leq)

    def test_chain_true(self):
        assert cpo.is_chain([A, AB, ABC], leq)

    def test_chain_false(self):
        assert not cpo.is_chain([A, B], leq)


class TestMaximalMinimal:
    def test_maximal(self):
        assert set(cpo.maximal_elements([A, B, AB], leq)) == {AB}

    def test_maximal_of_chain(self):
        assert cpo.maximal_elements([A, AB, ABC], leq) == [ABC]

    def test_maximal_keeps_duplicates_once(self):
        assert cpo.maximal_elements([A, A], leq) == [A]

    def test_minimal(self):
        assert set(cpo.minimal_elements([A, B, AB], leq)) == {A, B}

    def test_maximal_on_integers_with_divides(self):
        assert set(cpo.maximal_elements([2, 3, 4, 6], _divides)) == {4, 6}

    def test_empty(self):
        assert cpo.maximal_elements([], leq) == []
        assert cpo.minimal_elements([], leq) == []


class TestBounds:
    def test_upper_bounds(self):
        assert cpo.upper_bounds([A, B], [A, B, AB, ABC], leq) == [AB, ABC]

    def test_lower_bounds(self):
        assert cpo.lower_bounds([AB, ABC], [A, B, AB, ABC], leq) == [A, B, AB]

    def test_least(self):
        assert cpo.least([A, AB, ABC], leq) == A
        assert cpo.least([A, B], leq) is None
        assert cpo.least([], leq) is None

    def test_greatest(self):
        assert cpo.greatest([A, AB, ABC], leq) == ABC
        assert cpo.greatest([A, B], leq) is None

    def test_is_least_upper_bound(self):
        pool = [A, B, AB, ABC]
        assert cpo.is_least_upper_bound(AB, [A, B], pool, leq)
        assert not cpo.is_least_upper_bound(ABC, [A, B], pool, leq)
        assert not cpo.is_least_upper_bound(A, [A, B], pool, leq)


class TestLawCheckers:
    def test_partial_order_ok(self):
        assert cpo.check_partial_order([1, 2, 3, 4], _leq_int) == []

    def test_reflexivity_violation_reported(self):
        violations = cpo.check_partial_order([1], lambda a, b: a < b)
        assert any("reflexive" in v for v in violations)

    def test_antisymmetry_violation_reported(self):
        # "leq" that relates everything both ways
        violations = cpo.check_partial_order([1, 2], lambda a, b: True)
        assert any("antisymmetry" in v for v in violations)

    def test_transitivity_violation_reported(self):
        # successor relation + reflexivity is not transitive
        def succ(a, b):
            return b == a or b == a + 1

        violations = cpo.check_partial_order([1, 2, 3], succ)
        assert any("transitivity" in v for v in violations)

    def test_join_laws_ok(self):
        pairs = [(A, B), (A, AB), (B, ABC)]
        assert cpo.check_join_laws(pairs, try_join, leq) == []

    def test_join_laws_catch_non_upper_bound(self):
        def bad_join(a, b):
            return A  # always returns A, usually not an upper bound

        violations = cpo.check_join_laws([(B, ABC)], bad_join, leq)
        assert any("upper bound" in v for v in violations)
