"""Unit tests for sorted indexes and index-aware query optimization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flat import FlatRelation
from repro.core.index import Catalog, SortedIndex
from repro.core.query import (
    IndexScan,
    eq,
    explain,
    ge,
    gt,
    le,
    lt,
    ne,
    optimize,
    scan,
)
from repro.errors import RelationError

EMP = FlatRelation(
    ("Name", "Salary"),
    [("A", 10), ("B", 20), ("C", 20), ("D", 30), ("E", 40)],
)


class TestSortedIndex:
    def test_lookup_eq(self):
        index = SortedIndex(EMP, "Salary")
        assert {row["Name"] for row in index.lookup_eq(20)} == {"B", "C"}
        assert index.lookup_eq(99) == []

    def test_lookup_range_inclusive(self):
        index = SortedIndex(EMP, "Salary")
        rows = index.lookup_range(20, 30)
        assert {row["Name"] for row in rows} == {"B", "C", "D"}

    def test_lookup_range_exclusive(self):
        index = SortedIndex(EMP, "Salary")
        rows = index.lookup_range(20, 30, low_inclusive=False,
                                  high_inclusive=False)
        assert rows == []

    def test_open_ranges(self):
        index = SortedIndex(EMP, "Salary")
        assert len(index.lookup_range(low=21)) == 2
        assert len(index.lookup_range(high=20)) == 3
        assert len(index.lookup_range()) == 5

    def test_select_matches_scan(self):
        index = SortedIndex(EMP, "Salary")
        for op, operand in (("==", 20), ("<", 25), ("<=", 20),
                            (">", 20), (">=", 30)):
            via_index = index.select(op, operand)
            from repro.core.query import Predicate

            predicate = Predicate(op, "Salary", operand)
            via_scan = EMP.select(predicate.evaluate)
            assert via_index == via_scan

    def test_lookup_range_on_empty_relation(self):
        empty = FlatRelation(("Name", "Salary"))
        index = SortedIndex(empty, "Salary")
        assert len(index) == 0
        assert index.lookup_range() == []
        assert index.lookup_range(0, 100) == []
        assert index.lookup_eq(10) == []

    def test_lookup_range_inverted_bounds_is_empty(self):
        index = SortedIndex(EMP, "Salary")
        assert index.lookup_range(30, 20) == []
        assert index.lookup_range(30, 20, low_inclusive=False,
                                  high_inclusive=False) == []

    def test_lookup_range_degenerate_single_value(self):
        index = SortedIndex(EMP, "Salary")
        assert {row["Name"] for row in index.lookup_range(20, 20)} == {
            "B", "C"
        }
        assert index.lookup_range(20, 20, low_inclusive=False) == []
        assert index.lookup_range(20, 20, high_inclusive=False) == []

    def test_lookup_range_bounds_between_keys(self):
        index = SortedIndex(EMP, "Salary")
        # Neither bound is a stored key: 15..35 still brackets 20,20,30.
        assert len(index.lookup_range(15, 35)) == 3
        assert index.lookup_range(41, 99) == []
        assert index.lookup_range(-5, 5) == []

    def test_lookup_range_mixed_type_keys(self):
        mixed = FlatRelation(
            ("Name", "Tag"),
            [("A", 1), ("B", 9), ("C", "high"), ("D", "low"), ("E", True)],
        )
        index = SortedIndex(mixed, "Tag")
        # The (type name, value) tagging groups by type: bool < int < str.
        ints = index.lookup_range(0, 100)
        assert {row["Name"] for row in ints} == {"A", "B"}
        strings = index.lookup_range("a", "z")
        assert {row["Name"] for row in strings} == {"C", "D"}
        assert {row["Name"] for row in index.lookup_eq(True)} == {"E"}
        # bool operands never capture the int 1, and vice versa.
        assert index.lookup_eq(1) == [{"Name": "A", "Tag": 1}]
        everything = index.lookup_range()
        assert len(everything) == 5

    def test_unsupported_operator(self):
        with pytest.raises(RelationError):
            SortedIndex(EMP, "Salary").select("!=", 20)

    def test_unknown_attribute(self):
        with pytest.raises(RelationError):
            SortedIndex(EMP, "Dept")

    def test_mixed_types_total_order(self):
        # NOTE: flat relations store raw Python rows, so True == 1 at the
        # row level (unlike the Atom layer); the index just needs a total
        # sort order across the remaining mixed types.
        mixed = FlatRelation(("K",), [(1,), ("a",), (2,), (3.5,)])
        index = SortedIndex(mixed, "K")
        assert len(index.lookup_eq("a")) == 1
        assert len(index.lookup_eq(1)) == 1
        assert len(index.lookup_eq(3.5)) == 1
        assert len(index.lookup_range()) == 4  # sort never raises

    @given(st.lists(st.integers(min_value=0, max_value=20), max_size=30),
           st.integers(min_value=0, max_value=20),
           st.integers(min_value=0, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_range_property(self, values, low, high):
        relation = FlatRelation(
            ("I", "V"), [(i, v) for i, v in enumerate(values)]
        )
        index = SortedIndex(relation, "V")
        got = {row["I"] for row in index.lookup_range(low, high)}
        expected = {i for i, v in enumerate(values) if low <= v <= high}
        assert got == expected


class TestCatalog:
    def test_mapping_protocol(self):
        catalog = Catalog({"emp": EMP})
        assert catalog["emp"] == EMP
        assert "emp" in catalog
        assert list(catalog) == ["emp"]
        with pytest.raises(KeyError):
            catalog["ghost"]

    def test_create_and_find_index(self):
        catalog = Catalog({"emp": EMP})
        catalog.create_index("emp", "Salary")
        assert catalog.index_on("emp", "Salary") is not None
        assert catalog.index_on("emp", "Name") is None
        assert catalog.indexes() == [("emp", "Salary")]

    def test_index_on_missing_relation(self):
        with pytest.raises(RelationError):
            Catalog().create_index("ghost", "X")

    def test_rebind_drops_indexes(self):
        catalog = Catalog({"emp": EMP})
        catalog.create_index("emp", "Salary")
        catalog.bind("emp", FlatRelation(("Name", "Salary"), [("Z", 1)]))
        assert catalog.index_on("emp", "Salary") is None


class TestIndexAwareOptimization:
    def _catalog(self):
        catalog = Catalog({"emp": EMP})
        catalog.create_index("emp", "Salary")
        return catalog

    def test_sargable_select_becomes_index_scan(self):
        plan = scan("emp").where(eq("Salary", 20))
        optimized = optimize(plan, self._catalog())
        assert isinstance(optimized, IndexScan)
        assert "IndexScan" in explain(optimized)

    def test_results_agree(self):
        catalog = self._catalog()
        for predicate in (eq("Salary", 20), lt("Salary", 25),
                          ge("Salary", 30), le("Salary", 20), gt("Salary", 20)):
            plan = scan("emp").where(predicate)
            assert optimize(plan, catalog).execute(catalog) == plan.execute(
                catalog
            )

    def test_non_sargable_not_rewritten(self):
        plan = scan("emp").where(ne("Salary", 20))
        optimized = optimize(plan, self._catalog())
        assert not isinstance(optimized, IndexScan)

    def test_unindexed_attribute_not_rewritten(self):
        plan = scan("emp").where(eq("Name", "A"))
        optimized = optimize(plan, self._catalog())
        assert not isinstance(optimized, IndexScan)

    def test_plain_dict_catalog_unaffected(self):
        plan = scan("emp").where(eq("Salary", 20))
        optimized = optimize(plan, {"emp": EMP})
        assert not isinstance(optimized, IndexScan)
        assert optimized.execute({"emp": EMP}) == plan.execute({"emp": EMP})

    def test_index_scan_through_join_pushdown(self):
        dept = FlatRelation(("Name", "Dept"), [("A", "S"), ("D", "M")])
        catalog = Catalog({"emp": EMP, "dept": dept})
        catalog.create_index("emp", "Salary")
        plan = scan("emp").join(scan("dept")).where(ge("Salary", 30))
        optimized = optimize(plan, catalog)
        assert "IndexScan" in explain(optimized)
        assert optimized.execute(catalog) == plan.execute(catalog)

    def test_fallback_when_index_dropped(self):
        catalog = self._catalog()
        plan = optimize(scan("emp").where(eq("Salary", 20)), catalog)
        assert isinstance(plan, IndexScan)
        catalog.bind("emp", EMP)  # drops the index
        # Executing the stale plan falls back to a scan, same result.
        assert plan.execute(catalog) == EMP.select(
            lambda row: row["Salary"] == 20
        )
