"""Guard the public import surface of every package.

Downstream users import from the package roots; these tests pin the
promised names so refactors cannot silently drop them.
"""

import importlib

import pytest

SURFACE = {
    "repro": [
        "Atom", "PartialRecord", "Value", "GeneralizedRelation",
        "FlatRelation", "FunctionalDependency", "Key",
        "atom", "record", "join", "meet", "leq", "consistent",
        "from_python", "to_python", "try_join", "ReproError",
        "__version__",
    ],
    "repro.core": [
        "GeneralizedRelation", "FlatRelation", "FunctionalDependency",
        "Key", "optimize", "scan", "Catalog", "SortedIndex",
    ],
    "repro.types": [
        "INT", "FLOAT", "STRING", "BOOL", "UNIT", "TOP", "BOTTOM",
        "DYNAMIC", "TYPE", "RecordType", "VariantType", "ListType",
        "SetType", "FunctionType", "TypeVar", "ForAll", "Exists",
        "record_type", "is_subtype", "join_types", "meet_types",
        "consistent_types", "equivalent_types", "substitute",
        "free_type_vars", "Dynamic", "dynamic", "coerce", "type_of",
        "infer_type", "Package", "pack",
    ],
    "repro.extents": [
        "Database", "TypeIndexedDatabase", "Extent", "ExtentRegistry",
        "GET_TYPE", "get", "get_dynamics", "get_type_for",
        "subtype_census", "class_census", "derived_hierarchy",
        "render_hierarchy", "type_hierarchy",
    ],
    "repro.persistence": [
        "PObject", "reachable", "serialize", "deserialize", "LogStore",
        "SnapshotFile", "ImagePersistence", "ReplicatingStore",
        "PersistentHeap", "SchemaRegistry",
    ],
    "repro.classes": [
        "VariableClass", "AggregateClass", "TaxisInstance",
        "AdaplexSchema", "Entity", "EntityType", "GalileoEnvironment",
        "GalileoClass", "PascalRDatabase", "RelationVariable",
    ],
    "repro.lang": [
        "Interpreter", "run_program", "check_program", "parse_program",
    ],
    "repro.apps": [
        "make_base_part", "make_assembly", "total_cost",
        "total_cost_memoized", "total_mass", "roll_up_naive",
        "roll_up_memoized", "clear_memos", "ParkingLot", "MakeAndModel",
        "Catalog", "register_product",
    ],
    "repro.workloads": [
        "employee_database", "synthetic_hierarchy", "populate",
        "ladder_dag", "random_dag", "uniform_tree",
        "random_flat_relation", "random_generalized_relation",
        "flat_join_pair", "random_partial_records",
        "employees_catalog", "employees_query", "parts_catalog",
        "parts_query", "orders_catalog", "orders_query", "skewed_orders",
    ],
    "repro.stats": [
        "ColumnStats", "TableStats", "analyze", "analyze_extent",
        "EquiDepthHistogram", "order_key", "CostModel",
        "FeedbackLog", "Observation", "FEEDBACK",
        "AdaptiveStore", "Posterior", "ADAPTIVE",
    ],
}


@pytest.mark.parametrize("module_name", sorted(SURFACE))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    for name in SURFACE[module_name]:
        assert hasattr(module, name), "%s is missing %s" % (module_name, name)


@pytest.mark.parametrize("module_name", sorted(SURFACE))
def test_all_lists_resolvable(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), (
            "%s.__all__ lists %s, which does not exist" % (module_name, name)
        )


def test_version_is_semver():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)
