"""The cost-based optimizer: measured estimates beat the fixed constants.

The acceptance regression: run EXPLAIN ANALYZE over the employees and
parts workload queries before and after ``analyze()`` and assert the
worst per-node drift ratio (over- or under-estimate) strictly shrinks —
with the ``Dept == 'Manuf'`` selection and the skewed IndexScan probe
each landing within 2x of the truth once statistics exist.
"""

import pytest

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import analyze, eq, explain, explain_analyze, optimize, scan
from repro.obs.metrics import REGISTRY
from repro.workloads.queries import (
    employees_catalog,
    employees_query,
    orders_catalog,
    orders_query,
    parts_catalog,
    parts_query,
    skewed_orders,
)


def max_drift(plan, catalog):
    __, stats = analyze(optimize(plan, catalog), catalog)
    return max(node.drift_ratio for node in stats.walk())


def node_named(plan, catalog, fragment):
    __, stats = analyze(optimize(plan, catalog), catalog)
    return next(n for n in stats.walk() if fragment in n.label)


class TestDriftRegression:
    @pytest.mark.parametrize(
        "catalog_factory, plan_factory",
        [
            (employees_catalog, employees_query),
            (parts_catalog, parts_query),
        ],
    )
    def test_stats_strictly_shrink_worst_drift(
        self, catalog_factory, plan_factory
    ):
        cold = catalog_factory()
        warm = catalog_factory()
        warm.analyze_all()
        drift_without = max_drift(plan_factory(), cold)
        drift_with = max_drift(plan_factory(), warm)
        assert drift_with < drift_without

    def test_manuf_selection_within_2x_with_stats(self):
        catalog = employees_catalog()
        catalog.analyze_all()
        select = node_named(
            employees_query(), catalog, "Dept == 'Manuf'"
        )
        assert select.rows_out == 2
        assert select.drift_ratio <= 2.0
        # The MCV hit is in fact exact on this workload.
        assert select.estimate == pytest.approx(2.0)

    def test_index_scan_within_2x_with_stats(self):
        cold = orders_catalog()
        warm = orders_catalog()
        warm.analyze_all()
        cold_node = node_named(orders_query("failed"), cold, "IndexScan")
        warm_node = node_named(orders_query("failed"), warm, "IndexScan")
        # The fixed 0.1 constant estimates 40 of 400 rows for a status
        # that actually covers ~2%; the MCV answers exactly.
        assert cold_node.drift_ratio > 2.0
        assert warm_node.drift_ratio <= 2.0

    def test_plans_agree_with_and_without_stats(self):
        for catalog_factory, plan_factory in (
            (employees_catalog, employees_query),
            (parts_catalog, parts_query),
            (orders_catalog, orders_query),
        ):
            cold = catalog_factory()
            warm = catalog_factory()
            warm.analyze_all()
            plan = plan_factory()
            expected = plan.execute(cold)
            assert optimize(plan, cold).execute(cold) == expected
            assert optimize(plan, warm).execute(warm) == expected


class TestJoinOrdering:
    def test_greedy_starts_from_smallest_input(self):
        big = FlatRelation(
            ("K", "A"), [(i, i % 5) for i in range(50)]
        )
        mid = FlatRelation(("A", "B"), [(i, i) for i in range(5)])
        tiny = FlatRelation(("B", "C"), [(0, "x")])
        catalog = Catalog({"big": big, "mid": mid, "tiny": tiny})
        catalog.analyze_all()
        plan = scan("big").join(scan("mid")).join(scan("tiny"))
        text = explain(optimize(plan, catalog))
        # The greedy order joins the two small relations before touching
        # the 50-row one.
        assert text.index("Scan(tiny)") < text.index("Scan(big)")
        assert optimize(plan, catalog).execute(catalog) == plan.execute(
            catalog
        )

    def test_cross_products_deferred(self):
        a = FlatRelation(("A",), [(i,) for i in range(4)])
        b = FlatRelation(("B",), [(i,) for i in range(4)])
        shared = FlatRelation(("A", "B"), [(1, 2), (3, 0)])
        catalog = Catalog({"a": a, "b": b, "shared": shared})
        catalog.analyze_all()
        plan = scan("a").join(scan("b")).join(scan("shared"))
        optimized = optimize(plan, catalog)
        assert optimized.execute(catalog) == plan.execute(catalog)


class TestIndexChoice:
    def test_unselective_predicate_keeps_the_scan(self):
        # Every row matches: the index would walk the whole relation
        # plus the bisection, so the cost model keeps the plain scan.
        uniform = FlatRelation(
            ("Order", "Status"), [(i, "same") for i in range(8)]
        )
        catalog = Catalog({"orders": uniform})
        catalog.create_index("orders", "Status")
        plan = scan("orders").where(eq("Status", "same"))
        without_stats = explain(optimize(plan, catalog))
        assert "IndexScan" in without_stats  # 0.1 default says selective
        catalog.analyze("orders")
        with_stats = explain(optimize(plan, catalog))
        assert "IndexScan" not in with_stats

    def test_selective_predicate_takes_the_index(self):
        catalog = orders_catalog()
        catalog.analyze_all()
        text = explain(optimize(orders_query("failed"), catalog))
        assert "IndexScan(orders)[Status == 'failed']" in text


class TestStaleness:
    def test_rebind_marks_stats_stale(self):
        catalog = employees_catalog()
        assert catalog.stats_stale("emp")  # never analyzed
        catalog.analyze("emp")
        assert not catalog.stats_stale("emp")
        catalog.bind("emp", skewed_orders(10))
        assert catalog.stats_stale("emp")

    def test_auto_analyze_keeps_stats_fresh(self):
        catalog = Catalog(
            {"orders": skewed_orders(20)}, auto_analyze=True
        )
        assert not catalog.stats_stale("orders")
        catalog.bind("orders", skewed_orders(30))
        assert not catalog.stats_stale("orders")
        assert catalog.stats_for("orders").row_count == 30

    def test_analyze_unknown_name_raises(self):
        from repro.errors import RelationError

        with pytest.raises(RelationError):
            employees_catalog().analyze("nope")

    def test_stale_stats_still_consulted(self):
        # A stale estimate still beats a constant: stats_for returns the
        # old snapshot until a re-analyze.
        catalog = employees_catalog()
        catalog.analyze("emp")
        catalog.bind("emp", skewed_orders(10))
        assert catalog.stats_stale("emp")
        assert catalog.stats_for("emp").row_count == 5


class TestObservability:
    def test_explain_analyze_sets_drift_gauge_and_summary(self):
        catalog = employees_catalog()
        text = explain_analyze(
            optimize(employees_query(), catalog), catalog
        )
        summary = text.splitlines()[-1]
        assert summary.startswith("drift: max=")
        assert REGISTRY.gauge("query.estimate.max_drift").value >= 1.0

    def test_estimate_misses_counted(self):
        catalog = orders_catalog()  # no stats: the IndexScan is 5x off
        before = REGISTRY.counter("query.estimate.misses").value
        analyze(optimize(orders_query("failed"), catalog), catalog)
        assert REGISTRY.counter("query.estimate.misses").value > before
