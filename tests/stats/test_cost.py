"""The cost model: selectivities, cardinality floor, access-path choice."""

import pytest

from repro.stats.collect import analyze
from repro.stats.cost import (
    DEFAULT_EQ_SELECTIVITY,
    DEFAULT_RANGE_SELECTIVITY,
    MIN_ROWS,
    CostModel,
)
from repro.workloads.queries import EMPLOYEES

MODEL = CostModel()
STATS = analyze(EMPLOYEES, name="emp")


class TestSelectivity:
    def test_defaults_without_statistics(self):
        assert MODEL.selectivity("==", 42) == DEFAULT_EQ_SELECTIVITY
        assert MODEL.selectivity("<", 42) == DEFAULT_RANGE_SELECTIVITY
        assert MODEL.selectivity("attr==", "Dept") == DEFAULT_EQ_SELECTIVITY

    def test_equality_uses_mcvs(self):
        dept = STATS.column("Dept")
        assert MODEL.selectivity("==", "Manuf", dept) == pytest.approx(0.4)
        assert MODEL.selectivity("!=", "Manuf", dept) == pytest.approx(0.6)

    def test_range_uses_histogram(self):
        salary = STATS.column("Salary")
        measured = MODEL.selectivity("<=", 60, salary)
        assert measured == pytest.approx(1.0)
        assert MODEL.selectivity("<", 40, salary) == pytest.approx(0.0)

    def test_attr_eq_uses_larger_distinct_count(self):
        dept = STATS.column("Dept")  # 3 distinct
        emp = STATS.column("Emp")  # 5 distinct
        assert MODEL.selectivity("attr==", None, dept, emp) == pytest.approx(
            1.0 / 5
        )

    def test_join_selectivity_containment(self):
        dept = STATS.column("Dept")
        assert MODEL.join_selectivity(dept, None, 5, 3) == pytest.approx(
            1.0 / 3
        )
        assert MODEL.join_selectivity(None, None, 5, 3) is None

    def test_join_distinct_capped_by_estimated_rows(self):
        emp = STATS.column("Emp")  # 5 distinct
        # A selection below the join leaves an estimated 2 rows; they
        # cannot carry 5 distinct values.
        assert MODEL.join_selectivity(emp, None, 2.0, 10.0) == pytest.approx(
            1.0 / 2
        )


class TestCardinalityFloor:
    def test_clamp_rows_floors_at_one(self):
        assert CostModel.clamp_rows(0.0) == MIN_ROWS
        assert CostModel.clamp_rows(0.4) == MIN_ROWS
        assert CostModel.clamp_rows(7.5) == 7.5


class TestAccessPath:
    def test_selective_predicate_prefers_index(self):
        assert MODEL.prefer_index(500, 0.1)

    def test_unselective_predicate_prefers_scan(self):
        assert not MODEL.prefer_index(500, 0.999)

    def test_index_cost_is_bisection_plus_run(self):
        cost = CostModel.index_scan_cost(1024, 0.5)
        assert cost == pytest.approx(10 + 512)
