"""Auto re-analyze: ``optimize()`` refreshes stale statistics itself.

The ROADMAP follow-up from the statistics PR: rebinding a relation
marks its statistics stale, and instead of silently costing plans from
histograms describing a value the name no longer holds, ``optimize()``
triggers ``analyze()`` for the affected base relations — governed by the
catalog's configurable ``reanalyze_threshold``.
"""

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import eq, optimize, scan
from repro.obs.metrics import REGISTRY


def _emp(rows):
    return FlatRelation(
        ("Name", "Dept"),
        [("e%d" % i, "Sales" if i % 2 else "Manuf") for i in range(rows)],
    )


def _plan():
    return scan("emp").where(eq("Dept", "Sales"))


class TestAutoReanalyze:
    def test_stale_stats_refreshed_by_optimize(self):
        catalog = Catalog({"emp": _emp(4)})
        catalog.analyze("emp")
        catalog.bind("emp", _emp(40))  # stats now describe the old value
        assert catalog.stats_stale("emp")
        optimize(_plan(), catalog)
        assert not catalog.stats_stale("emp")
        assert catalog.stats_for("emp").row_count == 40

    def test_never_analyzed_names_left_alone(self):
        # Absence of statistics is a choice; only *stale* stats refresh.
        catalog = Catalog({"emp": _emp(4)})
        optimize(_plan(), catalog)
        assert catalog.stats_for("emp") is None

    def test_threshold_defers_refresh(self):
        catalog = Catalog({"emp": _emp(4)}, reanalyze_threshold=3)
        catalog.analyze("emp")
        catalog.bind("emp", _emp(8))
        catalog.bind("emp", _emp(12))
        optimize(_plan(), catalog)  # drift 2 < threshold 3: stale kept
        assert catalog.stats_stale("emp")
        catalog.bind("emp", _emp(16))
        optimize(_plan(), catalog)  # drift 3 hits the threshold
        assert not catalog.stats_stale("emp")

    def test_none_threshold_disables(self):
        catalog = Catalog({"emp": _emp(4)}, reanalyze_threshold=None)
        catalog.analyze("emp")
        catalog.bind("emp", _emp(40))
        optimize(_plan(), catalog)
        assert catalog.stats_stale("emp")

    def test_refresh_stats_false_restores_old_behavior(self):
        catalog = Catalog({"emp": _emp(4)})
        catalog.analyze("emp")
        catalog.bind("emp", _emp(40))
        optimize(_plan(), catalog, refresh_stats=False)
        assert catalog.stats_stale("emp")

    def test_plain_dict_catalogs_unaffected(self):
        catalog = {"emp": _emp(4)}
        optimize(_plan(), catalog)  # must not raise

    def test_refresh_counted(self):
        catalog = Catalog({"emp": _emp(4)})
        catalog.analyze("emp")
        catalog.bind("emp", _emp(8))
        counter = REGISTRY.counter("stats.auto_reanalyze")
        before = counter.value
        optimize(_plan(), catalog)
        assert counter.value == before + 1

    def test_stats_drift_accessor(self):
        catalog = Catalog({"emp": _emp(4)})
        assert catalog.stats_drift("emp") is None
        catalog.analyze("emp")
        assert catalog.stats_drift("emp") == 0
        catalog.bind("emp", _emp(8))
        assert catalog.stats_drift("emp") == 1
