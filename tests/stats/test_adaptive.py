"""Adaptive selectivity estimation: the feedback loop, closed.

Covers the :class:`~repro.stats.adaptive.AdaptiveStore` in isolation
(keying, exponential decay over bind epochs — including resets —
bounded capacity with newest-kept eviction, confidence-weighted
blending) and the loop end to end: repeated ``analyze`` runs of a
misestimated predicate converge the estimate toward the truth, per-node
"corrected by feedback" is reported, counters and the
``adaptive_correction`` journal event fire, and both escape hatches
(the global switch, ``Catalog(adaptive=False)``) restore purely static
estimates.
"""

import pytest

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import analyze, eq, explain_analyze, optimize, scan
from repro.lang.repl import Repl
from repro.obs import events as _events
from repro.obs.metrics import REGISTRY
from repro.stats import adaptive, feedback
from repro.stats.adaptive import AdaptiveStore
from repro.stats.cost import CostModel
from repro.workloads.queries import orders_catalog, orders_query, skewed_orders


@pytest.fixture(autouse=True)
def clean_adaptive():
    """Isolate every test from the process-global store and switch."""
    adaptive.ADAPTIVE.clear()
    adaptive.disable()
    feedback.clear()
    yield
    adaptive.ADAPTIVE.clear()
    adaptive.disable()
    feedback.clear()


def failed_orders_node(catalog):
    """Run the skewed 'failed' query measured; return its selection node."""
    __, stats = analyze(optimize(orders_query("failed"), catalog), catalog)
    return next(n for n in stats.walk() if "Status" in n.label)


class TestAdaptiveStore:
    def test_observe_creates_then_accumulates(self):
        store = AdaptiveStore()
        entry = store.observe("orders", "Status", "==", "failed", 0.02)
        assert entry.mean == pytest.approx(0.02)
        assert entry.weight == pytest.approx(1.0)
        entry = store.observe("orders", "Status", "==", "failed", 0.04)
        assert entry.mean == pytest.approx(0.03)
        assert entry.weight == pytest.approx(2.0)
        assert entry.observations == 2

    def test_keys_bucket_by_operand_value(self):
        store = AdaptiveStore()
        store.observe("orders", "Status", "==", "failed", 0.02)
        store.observe("orders", "Status", "==", "shipped", 0.6)
        assert len(store) == 2
        assert store.posterior(
            "orders", "Status", "==", "failed"
        ).mean == pytest.approx(0.02)
        assert store.posterior(
            "orders", "Status", "==", "shipped"
        ).mean == pytest.approx(0.6)

    def test_operand_buckets_are_type_tagged(self):
        # order_key tags by type (mirroring SortedIndex), so an int and
        # a float operand accumulate evidence separately.
        store = AdaptiveStore()
        store.observe("r", "Qty", "==", 1, 0.5)
        store.observe("r", "Qty", "==", 1.0, 0.3)
        assert len(store) == 2
        assert store.posterior("r", "Qty", "==", 1).weight == pytest.approx(1.0)

    def test_decay_over_bind_epochs(self):
        store = AdaptiveStore(decay=0.5)
        store.observe("r", "A", "==", "x", 0.2, epoch=0)
        # Three rebinds later the old evidence carries 0.5**3 weight.
        posterior = store.posterior("r", "A", "==", "x", epoch=3)
        assert posterior.weight == pytest.approx(0.125)
        assert posterior.mean == pytest.approx(0.2)  # mean undecayed

    def test_decay_handles_epoch_reset(self):
        # A fresh catalog restarts epochs at 0; evidence from epoch 5
        # must decay by the distance, not gain weight from a "negative"
        # delta.
        store = AdaptiveStore(decay=0.5)
        store.observe("r", "A", "==", "x", 0.2, epoch=5)
        posterior = store.posterior("r", "A", "==", "x", epoch=0)
        assert posterior.weight == pytest.approx(0.5 ** 5)
        # An observation arriving after the reset folds in the same way:
        # the carried mass is the decayed weight, not the raw one.
        entry = store.observe("r", "A", "==", "x", 0.8, epoch=0)
        carried = 0.5 ** 5
        assert entry.weight == pytest.approx(carried + 1.0)
        assert entry.mean == pytest.approx(
            (0.2 * carried + 0.8) / (carried + 1.0)
        )

    def test_capacity_evicts_oldest_keeps_newest(self):
        store = AdaptiveStore(capacity=3)
        for i in range(5):
            store.observe("r", "A", "==", "v%d" % i, 0.1)
        assert len(store) == 3
        kept = {key[3] for key, __ in store.entries()}
        assert kept == {("str", "v2"), ("str", "v3"), ("str", "v4")}

    def test_observation_defends_a_key_from_eviction(self):
        store = AdaptiveStore(capacity=2)
        store.observe("r", "A", "==", "old", 0.1)
        store.observe("r", "A", "==", "mid", 0.1)
        store.observe("r", "A", "==", "old", 0.2)  # refresh recency
        store.observe("r", "A", "==", "new", 0.1)  # evicts 'mid'
        kept = {key[3] for key, __ in store.entries()}
        assert kept == {("str", "old"), ("str", "new")}

    def test_correct_miss_without_evidence(self):
        store = AdaptiveStore()
        before = REGISTRY.counter("stats.adaptive.misses").value
        assert store.correct(0.1, "r", "A", "==", "x") == pytest.approx(0.1)
        assert REGISTRY.counter("stats.adaptive.misses").value == before + 1

    def test_correct_miss_below_min_weight(self):
        store = AdaptiveStore(decay=0.5, min_weight=1.0)
        store.observe("r", "A", "==", "x", 0.9, epoch=0)
        # Decayed to 0.25 weight at epoch 2: below min_weight, static wins.
        assert store.correct(
            0.1, "r", "A", "==", "x", epoch=2
        ) == pytest.approx(0.1)

    def test_correct_blends_and_counts_hits(self):
        store = AdaptiveStore(prior_strength=1.0)
        store.observe("r", "A", "==", "x", 0.5)
        before = REGISTRY.counter("stats.adaptive.hits").value
        blended = store.correct(0.1, "r", "A", "==", "x")
        assert blended == pytest.approx(0.3)  # midpoint at weight 1
        assert REGISTRY.counter("stats.adaptive.hits").value == before + 1

    def test_clear_forgets(self):
        store = AdaptiveStore()
        store.observe("r", "A", "==", "x", 0.5)
        store.clear()
        assert len(store) == 0
        assert store.posterior("r", "A", "==", "x") is None

    def test_suppressed_restores_switch(self):
        store = AdaptiveStore(enabled=True)
        with store.suppressed():
            assert not store.enabled
        assert store.enabled


class TestBlendArithmetic:
    def test_no_evidence_returns_static(self):
        model = CostModel()
        assert model.blended_selectivity(0.1, 0.9, 0.0) == pytest.approx(0.1)

    def test_evidence_pulls_toward_observed(self):
        model = CostModel()
        assert model.blended_selectivity(0.1, 0.5, 1.0) == pytest.approx(0.3)
        assert model.blended_selectivity(0.1, 0.5, 3.0) == pytest.approx(0.4)

    def test_never_fully_discards_the_prior(self):
        model = CostModel()
        heavy = model.blended_selectivity(0.1, 0.5, 1000.0)
        assert heavy < 0.5

    def test_result_clamped_to_fraction(self):
        model = CostModel()
        assert model.blended_selectivity(1.5, 1.2, 5.0) == 1.0
        assert model.blended_selectivity(-0.2, -0.1, 5.0) == 0.0


class TestFeedbackLoop:
    def test_estimates_converge_monotonically(self):
        adaptive.enable()
        catalog = Catalog({"orders": skewed_orders(400)})
        plan = scan("orders").where(eq("Status", "failed"))

        drifts = []
        for __ in range(4):
            __, stats = analyze(optimize(plan, catalog), catalog)
            node = next(n for n in stats.walk() if "Status" in n.label)
            drifts.append(node.drift_ratio)
        # The 0.1 constant overestimates ~5x; each measured run pulls
        # the next estimate strictly closer to the observed truth.
        assert all(b < a for a, b in zip(drifts, drifts[1:]))

    def test_corrected_flag_and_rendered_annotation(self):
        adaptive.enable()
        catalog = Catalog({"orders": skewed_orders(400)})
        plan = scan("orders").where(eq("Status", "failed"))
        analyze(optimize(plan, catalog), catalog)  # round 1 trains
        text = explain_analyze(optimize(plan, catalog), catalog)
        assert "corrected by feedback: static=40.0" in text
        assert text.splitlines()[-1].endswith("1 corrected by feedback")

    def test_round_one_is_not_corrected(self):
        adaptive.enable()
        catalog = Catalog({"orders": skewed_orders(400)})
        node = failed_orders_node(catalog)
        assert not node.corrected
        assert node.static_estimate == pytest.approx(node.estimate)

    def test_corrections_counter_and_event(self):
        adaptive.enable()
        journal = _events.enable()
        try:
            journal.clear()
            catalog = Catalog({"orders": skewed_orders(400)})
            plan = scan("orders").where(eq("Status", "failed"))
            before = REGISTRY.counter("stats.adaptive.corrections").value
            analyze(optimize(plan, catalog), catalog)
            analyze(optimize(plan, catalog), catalog)
            assert (
                REGISTRY.counter("stats.adaptive.corrections").value > before
            )
            corrections = [
                e
                for e in journal.events(subsystem="stats")
                if e.name == "adaptive_correction"
            ]
            assert corrections
            payload = corrections[-1].payload
            assert payload["static"] == pytest.approx(40.0)
            assert payload["blended"] < 40.0
        finally:
            _events.disable()

    def test_global_switch_off_means_static(self):
        catalog = Catalog({"orders": skewed_orders(400)})
        plan = scan("orders").where(eq("Status", "failed"))
        analyze(optimize(plan, catalog), catalog)  # trains regardless
        node = failed_orders_node(catalog)
        assert node.estimate == pytest.approx(40.0)  # 0.1 * 400
        assert node.static_estimate is None  # adaptivity was not live

    def test_catalog_escape_hatch(self):
        adaptive.enable()
        trained = Catalog({"orders": skewed_orders(400)})
        plan = scan("orders").where(eq("Status", "failed"))
        analyze(optimize(plan, trained), trained)

        hatch = Catalog({"orders": skewed_orders(400)}, adaptive=False)
        node = failed_orders_node(hatch)
        assert node.estimate == pytest.approx(40.0)
        assert not node.corrected

    def test_training_is_unconditional(self):
        # With the store disabled, analyze() still deposits evidence —
        # flipping adaptivity on later benefits from history.
        catalog = Catalog({"orders": skewed_orders(400)})
        failed_orders_node(catalog)
        assert (
            adaptive.ADAPTIVE.posterior("orders", "Status", "==", "failed")
            is not None
        )

    def test_estimate_floor_survives_blending(self):
        # A predicate observed keeping nothing must not estimate below
        # the one-row floor.
        adaptive.enable()
        catalog = Catalog({"orders": skewed_orders(400)})
        plan = scan("orders").where(eq("Status", "no-such-status"))
        for __ in range(3):
            __, stats = analyze(optimize(plan, catalog), catalog)
        node = next(n for n in stats.walk() if "Status" in n.label)
        assert node.rows_out == 0
        assert node.estimate >= 1.0

    def test_index_scan_blends_too(self):
        adaptive.enable()
        catalog = orders_catalog(rows=400)
        first = failed_orders_node(catalog)
        second = failed_orders_node(catalog)
        assert "IndexScan" in second.label
        assert second.corrected
        assert second.drift_ratio < first.drift_ratio

    def test_plans_agree_with_adaptivity(self):
        adaptive.enable()
        catalog = Catalog({"orders": skewed_orders(200)})
        plan = scan("orders").where(eq("Status", "shipped")).project(
            ["Order", "Status"]
        )
        expected = plan.execute(catalog)
        for __ in range(3):
            assert optimize(plan, catalog).execute(catalog) == expected

    def test_rebind_decays_the_posterior(self):
        adaptive.enable()
        catalog = Catalog({"orders": skewed_orders(400)})
        plan = scan("orders").where(eq("Status", "failed"))
        analyze(optimize(plan, catalog), catalog)
        corrected = failed_orders_node(catalog)
        assert corrected.corrected
        # Each rebind bumps the epoch and halves the evidence mass
        # (two measured runs deposited weight 2.0); two rebinds push it
        # below min_weight, so the estimate falls back to static.
        catalog.bind("orders", skewed_orders(400, seed=7))
        catalog.bind("orders", skewed_orders(400, seed=8))
        node = failed_orders_node(catalog)
        assert not node.corrected


class TestReplAdaptive:
    def run_repl(self, *lines):
        out = []
        repl = Repl(writer=out.append)
        for line in lines:
            repl.handle(line)
        return out

    def test_toggle_and_status(self):
        out = self.run_repl(":adaptive", ":adaptive on", ":adaptive",
                            ":adaptive off")
        assert out[0].startswith("adaptive estimation is off")
        assert out[1] == "adaptive estimation on"
        assert out[2].startswith("adaptive estimation is on")
        assert out[3] == "adaptive estimation off"

    def test_usage_message(self):
        out = self.run_repl(":adaptive maybe")
        assert out == ["usage: :adaptive on|off"]

    def test_feedback_table_shows_blend(self):
        out = self.run_repl(
            ":adaptive on",
            'let emp = relation(['
            '{Emp = "S", Dept = "Sales"}, {Emp = "J", Dept = "Sales"},'
            '{Emp = "B", Dept = "Manuf"}, {Emp = "G", Dept = "Manuf"},'
            '{Emp = "W", Dept = "Admin"}])',
            ':explain rmatch(emp, {Dept = "Manuf"})',
            ":stats feedback",
        )
        table = "\n".join(out)
        assert "blend" in table
        # 2 of 5 rows kept: the posterior mean is the observed 0.4.
        assert "0.400 (w=1.0)" in table
