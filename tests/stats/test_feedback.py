"""The feedback log: observed selectivities from measured runs."""

import pytest

from repro.core.query import analyze, optimize
from repro.obs.metrics import REGISTRY
from repro.stats import adaptive, feedback
from repro.stats.feedback import FeedbackLog, Observation
from repro.workloads.queries import employees_catalog, employees_query


class TestObservation:
    def test_observed_selectivity(self):
        obs = Observation("Dept == 'Manuf'", "emp", 1.0, 5, 2)
        assert obs.observed_selectivity == pytest.approx(0.4)

    def test_zero_rows_in(self):
        obs = Observation("x", None, 1.0, 0, 0)
        assert obs.observed_selectivity == 0.0

    def test_drift_ratio_symmetric_and_finite(self):
        over = Observation("x", None, 8.0, 10, 2)
        under = Observation("x", None, 2.0, 10, 8)
        assert over.drift_ratio == pytest.approx(4.0)
        assert under.drift_ratio == pytest.approx(4.0)
        empty = Observation("x", None, 0.0, 10, 0)
        assert empty.drift_ratio == 1.0


class TestFeedbackLog:
    def test_ring_evicts_oldest(self):
        log = FeedbackLog(capacity=2)
        for i in range(3):
            log.record(Observation("p%d" % i, None, 1.0, 10, i))
        assert len(log) == 2
        kept = {o.predicate for o in log.observations()}
        assert kept == {"p1", "p2"}

    def test_observed_selectivity_averages_per_predicate(self):
        log = FeedbackLog()
        log.record(Observation("p", None, 1.0, 10, 2))
        log.record(Observation("p", None, 1.0, 10, 4))
        log.record(Observation("q", None, 1.0, 10, 9))
        assert log.observed_selectivity("p") == pytest.approx(0.3)
        assert log.observed_selectivity("missing") is None

    def test_last_returns_arrival_order_across_ring_wrap(self):
        log = FeedbackLog(capacity=3)
        for i in range(5):  # p0..p4; ring keeps p2, p3, p4
            log.record(Observation("p%d" % i, None, 1.0, 10, i))
        assert [o.predicate for o in log.last()] == ["p2", "p3", "p4"]
        assert [o.predicate for o in log.last(2)] == ["p3", "p4"]
        assert log.last(0) == ()

    def test_last_before_wrap_preserves_insertion_order(self):
        log = FeedbackLog(capacity=10)
        for i in range(4):
            log.record(Observation("p%d" % i, None, 1.0, 10, i))
        assert [o.predicate for o in log.last(3)] == ["p1", "p2", "p3"]

    def test_record_publishes_planner_accuracy_gauges(self):
        log = FeedbackLog()
        obs = Observation("Dept == 'Manuf'", "emp", 4.0, 10, 2)
        log.record(obs)
        gauges = {
            name: REGISTRY.gauge(name).value
            for name in (
                "stats.feedback.observed_selectivity",
                "stats.feedback.estimated_rows",
                "stats.feedback.drift_ratio",
            )
        }
        assert gauges["stats.feedback.observed_selectivity"] == (
            pytest.approx(obs.observed_selectivity)
        )
        assert gauges["stats.feedback.estimated_rows"] == pytest.approx(4.0)
        assert gauges["stats.feedback.drift_ratio"] == pytest.approx(
            obs.drift_ratio
        )

    def test_gauges_track_the_latest_observation(self):
        log = FeedbackLog()
        log.record(Observation("p", None, 8.0, 10, 1))
        log.record(Observation("q", None, 2.0, 10, 5))
        gauge = REGISTRY.gauge("stats.feedback.observed_selectivity")
        assert gauge.value == pytest.approx(0.5)  # the q reading, not p's

    def test_summary(self):
        log = FeedbackLog()
        assert log.summary() == {"observations": 0}
        log.record(Observation("p", None, 2.0, 10, 4))
        summary = log.summary()
        assert summary["observations"] == 1
        assert summary["max_drift"] == pytest.approx(2.0)

    def test_eviction_keeps_newest_after_many_wraps(self):
        # Sustained load cycles the ring many times over; the window
        # must always hold exactly the newest `capacity` observations.
        log = FeedbackLog(capacity=4)
        for i in range(25):
            log.record(Observation("p%d" % i, None, 1.0, 10, 1))
        assert len(log) == 4
        assert [o.predicate for o in log.last(4)] == [
            "p21", "p22", "p23", "p24",
        ]

    def test_structured_observation_trains_adaptive_store(self):
        adaptive.ADAPTIVE.clear()
        try:
            log = FeedbackLog()
            log.record(
                Observation(
                    "Status == 'failed'", "orders", 40.0, 400, 8,
                    attribute="Status", op="==", operand="failed",
                )
            )
            posterior = adaptive.ADAPTIVE.posterior(
                "orders", "Status", "==", "failed"
            )
            assert posterior is not None
            assert posterior.mean == pytest.approx(0.02)
        finally:
            adaptive.ADAPTIVE.clear()

    def test_free_form_observation_does_not_train(self):
        adaptive.ADAPTIVE.clear()
        try:
            log = FeedbackLog()
            log.record(Observation("Dept == 'Manuf'", "emp", 1.0, 5, 2))
            assert len(adaptive.ADAPTIVE) == 0
        finally:
            adaptive.ADAPTIVE.clear()

    def test_bind_epoch_reset_decays_stale_evidence(self):
        # A long-lived log can outlast the catalog that produced its
        # observations: after a reset the epoch counter restarts at 0,
        # and evidence from high epochs must fade, not dominate.
        adaptive.ADAPTIVE.clear()
        try:
            log = FeedbackLog()
            log.record(
                Observation(
                    "A == 'x'", "r", 10.0, 100, 90,
                    attribute="A", op="==", operand="x", epoch=6,
                )
            )
            fresh = adaptive.ADAPTIVE.posterior("r", "A", "==", "x", epoch=0)
            assert fresh.weight == pytest.approx(0.5 ** 6)
            assert fresh.weight < adaptive.ADAPTIVE.min_weight
        finally:
            adaptive.ADAPTIVE.clear()


class TestExecutorIntegration:
    def test_analyze_records_selection_observations(self):
        feedback.clear()
        catalog = employees_catalog()
        analyze(optimize(employees_query(), catalog), catalog)
        matching = [
            o
            for o in feedback.FEEDBACK.observations()
            if "Manuf" in o.predicate
        ]
        assert matching
        obs = matching[0]
        assert obs.rows_in == 5
        assert obs.rows_out == 2
        assert obs.observed_selectivity == pytest.approx(0.4)
        assert obs.relation == "emp"
        feedback.clear()

    def test_index_scan_records_base_relation(self):
        feedback.clear()
        from repro.workloads.queries import orders_catalog, orders_query

        catalog = orders_catalog(rows=100)
        plan = optimize(orders_query("failed"), catalog)
        analyze(plan, catalog)
        matching = [
            o
            for o in feedback.FEEDBACK.observations()
            if o.relation == "orders"
        ]
        assert matching
        feedback.clear()
