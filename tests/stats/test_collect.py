"""ANALYZE: one-pass statistics over flat, generalized, and extent data."""

import pytest

from repro.core.flat import FlatRelation
from repro.core.orders import record
from repro.core.relation import GeneralizedRelation
from repro.extents.database import Database
from repro.obs.metrics import REGISTRY
from repro.stats.collect import analyze, analyze_extent
from repro.types.kinds import INT, STRING, record_type
from repro.workloads.queries import EMPLOYEES

EMP_T = record_type(Name=STRING, Salary=INT)


class TestFlatRelations:
    def test_row_and_distinct_counts(self):
        stats = analyze(EMPLOYEES, name="emp")
        assert stats.row_count == 5
        dept = stats.column("Dept")
        assert dept.distinct_count == 3
        assert dept.value_count == 5
        assert dept.null_fraction == 0.0

    def test_min_max_and_mcvs(self):
        stats = analyze(EMPLOYEES)
        salary = stats.column("Salary")
        assert salary.min_value == 40
        assert salary.max_value == 60
        mcv = dict(salary.mcvs)
        assert mcv[40] == pytest.approx(0.4)

    def test_eq_selectivity_mcv_hit_is_exact(self):
        dept = analyze(EMPLOYEES).column("Dept")
        assert dept.eq_selectivity("Manuf") == pytest.approx(0.4)
        assert dept.eq_selectivity("Sales") == pytest.approx(0.4)
        assert dept.eq_selectivity("Admin") == pytest.approx(0.2)

    def test_eq_selectivity_unseen_value(self):
        dept = analyze(EMPLOYEES).column("Dept")
        # All three distinct values are MCVs, so an unseen operand
        # matches nothing.
        assert dept.eq_selectivity("Ghost") == 0.0

    def test_eq_selectivity_uncommon_tail(self):
        rows = [("v%d" % i, i % 3) for i in range(30)]
        relation = FlatRelation(("Name", "Tag"), rows)
        name = analyze(relation, mcv_limit=4).column("Name")
        # 4 of 30 distinct values are MCVs; the rest of the mass spreads
        # over the remaining 26.
        assert name.eq_selectivity("zzz") == pytest.approx(
            (1.0 - 4 / 30) / 26
        )

    def test_range_selectivity_scales_by_null_fraction(self):
        stats = analyze(EMPLOYEES)
        salary = stats.column("Salary")
        assert salary.range_selectivity("<=", 60) == pytest.approx(1.0)
        assert salary.range_selectivity("<", 40) == pytest.approx(0.0)

    def test_analyze_bumps_metrics(self):
        runs = REGISTRY.counter("stats.analyze.runs").value
        rows = REGISTRY.counter("stats.analyze.rows").value
        analyze(EMPLOYEES)
        assert REGISTRY.counter("stats.analyze.runs").value == runs + 1
        assert REGISTRY.counter("stats.analyze.rows").value == rows + 5


class TestPartialRecords:
    def test_absent_fields_count_as_nulls_not_distinct(self):
        relation = GeneralizedRelation(
            [
                record(Name="K", Addr="Philadelphia"),
                record(Name="J", Addr="Glasgow"),
                record(Name="Q"),  # partial: no Addr
                record(Salary=40),  # partial: no Name, no Addr
            ]
        )
        stats = analyze(relation, name="people")
        assert stats.row_count == 4
        addr = stats.column("Addr")
        assert addr.null_fraction == pytest.approx(0.5)
        assert addr.distinct_count == 2
        name = stats.column("Name")
        assert name.null_fraction == pytest.approx(0.25)
        assert name.distinct_count == 3

    def test_explicit_none_is_null(self):
        stats = analyze(
            [{"A": 1, "B": None}, {"A": 2, "B": 7}], name="mixed"
        )
        b = stats.column("B")
        assert b.null_fraction == pytest.approx(0.5)
        assert b.distinct_count == 1

    def test_nested_values_excluded_from_histogram(self):
        relation = GeneralizedRelation(
            [
                record(Name="K", Addr=record(City="Glasgow")),
                record(Name="J", Addr="Penn"),
            ]
        )
        addr = analyze(relation).column("Addr")
        # The nested record participates in distinct counting but not in
        # min/max or the histogram.
        assert addr.distinct_count == 2
        assert addr.min_value == "Penn"
        assert addr.max_value == "Penn"
        assert len(addr.histogram) == 1

    def test_format_mentions_rows_and_epoch(self):
        stats = analyze(EMPLOYEES, name="emp", epoch=3)
        text = stats.format()
        assert text.startswith("emp: 5 rows, 3 columns (epoch 3)")
        assert "Dept" in text


class TestExtents:
    def test_analyze_extent_stamps_mutation_count(self):
        db = Database()
        db.insert(record(Name="K", Salary=40), EMP_T)
        db.insert(record(Name="J", Salary=50), EMP_T)
        stats = analyze_extent(db, EMP_T, name="employees")
        assert stats.row_count == 2
        assert stats.epoch == db.mutation_count == 2
        salary = stats.column("Salary")
        assert salary.distinct_count == 2

    def test_mutations_make_extent_stats_stale(self):
        db = Database()
        member = db.insert(record(Name="K", Salary=40), EMP_T)
        stats = analyze_extent(db, EMP_T)
        assert stats.epoch == db.mutation_count
        db.remove(member)
        assert stats.epoch != db.mutation_count
