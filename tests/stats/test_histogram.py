"""Equi-depth histogram construction and range selectivity."""

import pytest

from repro.stats.histogram import EquiDepthHistogram, order_key


class TestOrderKey:
    def test_totally_orders_mixed_types(self):
        values = [3, "b", 1, True, "a", 2.5]
        ordered = sorted(values, key=order_key)
        # Grouped by type name (bool < float < int < str), ordered within.
        assert ordered == [True, 2.5, 1, 3, "a", "b"]

    def test_bool_is_not_an_int(self):
        assert order_key(True) != order_key(1)
        assert order_key(False) != order_key(0)


class TestConstruction:
    def test_bounds_span_min_to_max(self):
        histogram = EquiDepthHistogram(range(100), buckets=4)
        assert histogram.bounds[0] == 0
        assert histogram.bounds[-1] == 99
        assert histogram.buckets == 4
        assert len(histogram.bounds) == 5

    def test_buckets_capped_by_value_count(self):
        histogram = EquiDepthHistogram([1, 2, 3], buckets=16)
        assert histogram.buckets == 3

    def test_empty_column(self):
        histogram = EquiDepthHistogram([], buckets=8)
        assert len(histogram) == 0
        assert histogram.buckets == 0
        assert histogram.fraction_below(42) == 0.0

    def test_rejects_zero_buckets(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram([1], buckets=0)


class TestSelectivity:
    def test_uniform_values_interpolate_linearly(self):
        histogram = EquiDepthHistogram(range(1000), buckets=10)
        for operand, expected in ((250, 0.25), (500, 0.5), (900, 0.9)):
            assert histogram.selectivity("<", operand) == pytest.approx(
                expected, abs=0.02
            )

    def test_below_minimum_and_above_maximum(self):
        histogram = EquiDepthHistogram(range(10, 20), buckets=4)
        assert histogram.selectivity("<", 0) == 0.0
        assert histogram.selectivity(">", 100) == 0.0
        assert histogram.selectivity(">=", 0) == 1.0
        assert histogram.selectivity("<=", 100) == 1.0

    def test_complements_sum_to_one(self):
        histogram = EquiDepthHistogram([1, 5, 5, 5, 9, 12, 40], buckets=3)
        for operand in (0, 5, 9, 41):
            below = histogram.selectivity("<", operand)
            at_or_above = histogram.selectivity(">=", operand)
            assert below + at_or_above == pytest.approx(1.0)

    def test_skew_gets_narrow_buckets(self):
        # 90% of the mass at one value: most boundaries equal 7, so the
        # duplicate's row mass is visible to the bisection.
        values = [7] * 90 + list(range(10))
        histogram = EquiDepthHistogram(values, buckets=10)
        kept = 1.0 - histogram.selectivity("<", 7) - histogram.selectivity(
            ">", 7
        )
        assert kept == pytest.approx(0.9, abs=0.15)

    def test_string_buckets_use_midpoint(self):
        histogram = EquiDepthHistogram(["a", "b", "c", "d", "e"], buckets=2)
        below = histogram.selectivity("<", "ca")
        assert 0.0 < below < 1.0

    def test_unknown_operator_raises(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram([1, 2]).selectivity("~", 1)
