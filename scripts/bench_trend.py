"""Aggregate committed BENCH_*.json files into one trajectory table.

Every benchmark harness writes a ``BENCH_<area>.json`` at the repo root
(via ``benchmarks/_results.ResultsWriter``) stamped with the git sha it
ran under.  Individually they answer "how fast is this area today";
together, across commits, they are the performance trajectory of the
repo.  This script reads them all and prints one table — area, sha,
timestamp, quick flag, and a headline metric (the most interesting op
at the largest measured size) — so a reviewer can see the whole story
without opening a dozen JSON files.

Run:  python scripts/bench_trend.py [repo_root]
"""

import glob
import json
import os
import sys


def bench_files(root):
    """The committed result files, excluding the Perfetto traces."""
    paths = glob.glob(os.path.join(root, "BENCH_*.json"))
    return sorted(p for p in paths if not p.endswith(".trace.json"))


def headline(results):
    """The headline entry: the largest measured ``n``, preferring an op
    that recorded a ``speedup`` (a comparative claim), else the slowest
    op at that size (the workload the harness is really about)."""
    if not results:
        return None
    top_n = max(r.get("n", 0) for r in results)
    at_top = [r for r in results if r.get("n", 0) == top_n]
    with_speedup = [r for r in at_top if "speedup" in r]
    if with_speedup:
        return max(with_speedup, key=lambda r: r["speedup"])
    return max(at_top, key=lambda r: r.get("seconds", 0.0))


def trend_rows(root):
    rows = []
    for path in bench_files(root):
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        top = headline(data.get("results", []))
        if top is None:
            metric = "(no results)"
        else:
            metric = "%s n=%d %.6fs" % (
                top.get("op", "?"), top.get("n", 0), top.get("seconds", 0.0)
            )
            if "speedup" in top:
                metric += " (%.1fx)" % top["speedup"]
        rows.append(
            {
                "area": data.get("area", os.path.basename(path)),
                "git_sha": str(data.get("git_sha", ""))[:9],
                "timestamp": str(data.get("timestamp", ""))[:19],
                "quick": bool(data.get("quick", False)),
                "headline": metric,
            }
        )
    return rows


def render(rows):
    lines = ["%-10s %-9s %-19s %-5s %s"
             % ("area", "sha", "timestamp", "quick", "headline")]
    for row in rows:
        lines.append(
            "%-10s %-9s %-19s %-5s %s"
            % (row["area"], row["git_sha"], row["timestamp"],
               "yes" if row["quick"] else "no", row["headline"])
        )
    return "\n".join(lines)


def main(argv):
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    rows = trend_rows(root)
    if not rows:
        print("no BENCH_*.json files under %s" % root)
        return 1
    print(render(rows))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
