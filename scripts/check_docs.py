"""Check that relative links in the repository's markdown files resolve.

Scans every ``*.md`` file (the repo root plus any tracked
subdirectories, skipping hidden directories) for inline markdown links
``[text](target)`` and verifies each *relative* target exists on disk.
External links (``http://``, ``https://``, ``mailto:``) and pure
in-page anchors (``#section``) are not checked; a relative target's
``#fragment`` suffix is ignored — the file just has to exist.

Exit status is the number of broken links, so CI can run this directly:

    python scripts/check_docs.py

Also exercised by ``tests/test_docs.py`` so the tier-1 suite keeps the
documentation graph intact between CI runs.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

# Inline links only; reference-style definitions are rare enough here
# that inline coverage keeps the checker honest without a parser.
# Skips images' leading "!" implicitly (the "(" capture is the same).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCED_CODE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")

SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def strip_code(text: str) -> str:
    """Remove fenced blocks and inline spans — DBPL snippets like
    ``get[Employee](db)`` would otherwise read as links."""
    return INLINE_CODE.sub("", FENCED_CODE.sub("", text))


def markdown_files(root: str) -> Iterator[str]:
    """Every ``*.md`` under ``root``, hidden directories excluded."""
    for directory, subdirs, files in os.walk(root):
        subdirs[:] = sorted(
            d for d in subdirs
            if not d.startswith(".") and d != "__pycache__"
        )
        for name in sorted(files):
            if name.endswith(".md"):
                yield os.path.join(directory, name)


def broken_links(root: str) -> List[Tuple[str, str]]:
    """All (markdown file, unresolvable relative target) pairs."""
    missing = []
    for path in markdown_files(root):
        with open(path, "r", encoding="utf-8") as handle:
            text = strip_code(handle.read())
        base = os.path.dirname(path)
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = os.path.normpath(os.path.join(base, relative))
            if not os.path.exists(resolved):
                missing.append((os.path.relpath(path, root), target))
    return missing


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    missing = broken_links(root)
    for path, target in missing:
        print("%s: broken relative link -> %s" % (path, target))
    checked = len(list(markdown_files(root)))
    print(
        "checked %d markdown files: %s"
        % (checked, "%d broken links" % len(missing) if missing else "ok")
    )
    return len(missing)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
