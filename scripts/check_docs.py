"""Check that relative links and anchors in the markdown files resolve.

Scans every ``*.md`` file (the repo root plus any tracked
subdirectories, skipping hidden directories) for inline markdown links
``[text](target)`` and verifies:

* each *relative* target exists on disk;
* each ``#fragment`` — whether a pure in-page anchor (``#section``) or
  a suffix on a relative target (``file.md#section``) — names a real
  heading in the target document, under GitHub's slugification (
  lowercase, punctuation stripped, spaces to hyphens, ``-1``/``-2``
  suffixes for duplicate headings).

External links (``http://``, ``https://``, ``mailto:``) are not
checked; fragments on non-markdown targets are ignored (the file just
has to exist).

Exit status is the number of broken links, so CI can run this directly:

    python scripts/check_docs.py

Also exercised by ``tests/test_docs.py`` so the tier-1 suite keeps the
documentation graph intact between CI runs.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Dict, Iterator, List, Set, Tuple

# Inline links only; reference-style definitions are rare enough here
# that inline coverage keeps the checker honest without a parser.
# Skips images' leading "!" implicitly (the "(" capture is the same).
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCED_CODE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
INLINE_CODE = re.compile(r"`[^`\n]*`")
HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)

SKIP_PREFIXES = ("http://", "https://", "mailto:")


def strip_code(text: str) -> str:
    """Remove fenced blocks and inline spans — DBPL snippets like
    ``get[Employee](db)`` would otherwise read as links."""
    return INLINE_CODE.sub("", FENCED_CODE.sub("", text))


def slugify(heading: str) -> str:
    """One heading as GitHub's anchor slug (sans duplicate suffix).

    The algorithm GitHub applies: drop markdown decorations (inline
    code ticks, link targets, emphasis), lowercase, remove everything
    but word characters, hyphens and spaces, then turn spaces into
    hyphens.
    """
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links → text
    text = text.replace("`", "")
    text = re.sub(r"[*_]", "", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors(text: str) -> Set[str]:
    """Every heading anchor a markdown document exposes.

    Duplicate headings get ``-1``, ``-2``, ... suffixes, exactly as
    GitHub disambiguates them.
    """
    seen: Dict[str, int] = {}
    result: Set[str] = set()
    for match in HEADING.finditer(FENCED_CODE.sub("", text)):
        slug = slugify(match.group(1))
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        result.add(slug if count == 0 else "%s-%d" % (slug, count))
    return result


def markdown_files(root: str) -> Iterator[str]:
    """Every ``*.md`` under ``root``, hidden directories excluded."""
    for directory, subdirs, files in os.walk(root):
        subdirs[:] = sorted(
            d for d in subdirs
            if not d.startswith(".") and d != "__pycache__"
        )
        for name in sorted(files):
            if name.endswith(".md"):
                yield os.path.join(directory, name)


def broken_links(root: str) -> List[Tuple[str, str]]:
    """All (markdown file, unresolvable target-or-anchor) pairs."""
    missing = []
    anchor_cache: Dict[str, Set[str]] = {}

    def anchors_of(path: str) -> Set[str]:
        resolved = os.path.normpath(path)
        if resolved not in anchor_cache:
            with open(resolved, "r", encoding="utf-8") as handle:
                anchor_cache[resolved] = anchors(handle.read())
        return anchor_cache[resolved]

    for path in markdown_files(root):
        with open(path, "r", encoding="utf-8") as handle:
            text = strip_code(handle.read())
        base = os.path.dirname(path)
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            relative, __, fragment = target.partition("#")
            if relative:
                resolved = os.path.normpath(os.path.join(base, relative))
                if not os.path.exists(resolved):
                    missing.append((os.path.relpath(path, root), target))
                    continue
            else:
                resolved = path  # a pure in-page anchor
            if fragment and resolved.endswith(".md"):
                if fragment.lower() not in anchors_of(resolved):
                    missing.append((os.path.relpath(path, root), target))
    return missing


def main(argv: List[str]) -> int:
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    missing = broken_links(root)
    for path, target in missing:
        print("%s: broken relative link -> %s" % (path, target))
    checked = len(list(markdown_files(root)))
    print(
        "checked %d markdown files: %s"
        % (checked, "%d broken links" % len(missing) if missing else "ok")
    )
    return len(missing)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
