#!/usr/bin/env python3
"""Quickstart: the library's three separated notions in ten minutes.

Walks the paper's core move — separating *type*, *extent*, and
*persistence* — using the public API:

1. types with inheritance (structural subtyping);
2. a heterogeneous database with the generic ``get`` (class hierarchy
   derived from the type hierarchy);
3. object-level inheritance: the information ordering and join;
4. persistence: a value survives, together with its type.

Run:  python examples/quickstart.py
"""

import os
import tempfile

from repro import GeneralizedRelation, join, leq, record
from repro.extents.database import Database
from repro.extents.get import GET_TYPE, get
from repro.persistence.replicating import ReplicatingStore
from repro.types.dynamic import coerce, dynamic, type_of
from repro.types.kinds import INT, STRING, record_type
from repro.types.subtyping import is_subtype


def section(title):
    print("\n== %s ==" % title)


def main():
    # ------------------------------------------------------------------
    section("1. Types and inheritance")
    person = record_type(Name=STRING, City=STRING)
    employee = person.extend(Emp_no=INT, Dept=STRING)
    print("Person   =", person)
    print("Employee =", employee)
    print("Employee <= Person?", is_subtype(employee, person))
    print("Person <= Employee?", is_subtype(person, employee))

    # ------------------------------------------------------------------
    section("2. A heterogeneous database and the generic Get")
    db = Database()
    db.insert(record(Name="P One", City="Austin"))
    db.insert(record(Name="E One", City="Moose", Emp_no=1, Dept="Sales"))
    db.insert(record(Name="E Two", City="Moose", Emp_no=2, Dept="Manuf"))
    db.insert(42)  # "we can put any dynamic value in it"

    print("Get's type:", GET_TYPE)
    print("get(db, Person)   ->", len(get(db, person)), "values")
    print("get(db, Employee) ->", len(get(db, employee)), "values")
    print("The extent hierarchy fell out of the type hierarchy: no class",
          "construct was declared anywhere.")

    from repro.extents.hierarchy import class_census, render_hierarchy

    print("\nthe derived class hierarchy (with extent sizes):")
    print(render_hierarchy([m.carried for m in db], class_census(db)))

    # ------------------------------------------------------------------
    section("3. Object-level inheritance: the information ordering")
    o1 = record(Name="J Doe", Address={"City": "Austin"})
    o2 = o1.with_field("Emp_no", record(x=1234)["x"])
    print("o1 =", o1)
    print("o2 =", o2)
    print("o1 ⊑ o2?", leq(o1, o2))
    o3 = record(Name="J Doe", Address={"City": "Austin", "Zip": 78759})
    print("o2 ⊔ o3 =", join(o2, o3))

    r1 = GeneralizedRelation([
        record(Name="J Doe", Dept="Sales"),
        record(Name="N Bug", Addr={"State": "MT"}),
    ])
    r2 = GeneralizedRelation([record(Dept="Sales", Addr={"State": "WY"})])
    print("a small generalized join:")
    print(r1.join(r2))

    # ------------------------------------------------------------------
    section("4. Persistence: the value travels with its type")
    with tempfile.TemporaryDirectory() as tmp:
        store = ReplicatingStore(os.path.join(tmp, "quickstart.log"))
        d = dynamic(record(Name="E One", City="Moose", Emp_no=1, Dept="Sales"))
        print("dynamic value carries:", type_of(d))
        store.extern("DBFile", d)
        back = store.intern("DBFile")
        print("interned type:", type_of(back))
        revealed = coerce(back, person)  # read it at the supertype: a view
        print("coerced to Person:", revealed)
        store.close()

    print("\nDone.  See the other examples for the full scenarios.")


if __name__ == "__main__":
    main()
