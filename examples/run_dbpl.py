#!/usr/bin/env python3
"""Run a DBPL source file (default: examples/programs/payroll.dbpl).

Usage:  python examples/run_dbpl.py [program.dbpl [store-path]]

The optional store path backs ``extern``/``intern``, so a program's
handles survive to the next run — the paper's "subsequent program".
"""

import os
import sys

from repro.lang.eval import Interpreter, format_value

DEFAULT = os.path.join(os.path.dirname(__file__), "programs", "payroll.dbpl")


def main(argv):
    path = argv[0] if argv else DEFAULT
    store = argv[1] if len(argv) > 1 else None
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()

    interp = Interpreter(store)
    result = interp.run(source)
    for line in result.output:
        print(line)
    if result.value is not None:
        print("=> %s : %s" % (format_value(result.value), result.type))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
