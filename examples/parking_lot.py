#!/usr/bin/env python3
"""The instance-hierarchy scenarios: parking lot and product catalog.

Scenario 1 (the university parking lot): cars are *instances of*
make-and-models; charges and space derive from the model, and two
indistinguishable cars coexist because objects have identity.

Scenario 2 (the manufacturing plant): a product's level in the instance
hierarchy depends on its price — individuals above the threshold,
class-level stock below it.

Run:  python examples/parking_lot.py
"""

from repro.apps.instances import (
    Catalog,
    MakeAndModel,
    ParkingLot,
    register_product,
)
from repro.errors import ReproError


def parking_lot_scenario():
    print("== The university parking lot ==")
    nova = MakeAndModel("Chevvy", "Nova", length=4.5, weight=3000.0)
    mini = MakeAndModel("Austin", "Mini", length=3.1, weight=1400.0)
    print("'My car is a Chevvy Nova.  The Chevvy Nova weighs %.0f pounds.'"
          % nova.weight)

    lot = ParkingLot(capacity_metres=12.0, rate_per_metre=2.0)
    car1 = lot.admit(nova, tag="ABC-123")
    car2 = lot.admit(mini)  # no tag: identity is the object itself
    car3 = lot.admit(mini)  # a second, indistinguishable Mini
    print("cars parked:", len(lot))
    print("two identical Minis?",
          car2 is not car3 and car2["MakeModel"] is car3["MakeModel"])

    print("charge for the Nova : %.2f" % lot.charge_for(car1))
    print("charge for each Mini: %.2f" % lot.charge_for(car2))
    print("space remaining     : %.1f m" % lot.available_metres())

    try:
        lot.admit(nova)
    except ReproError as exc:
        print("admitting another Nova fails:", exc)

    # Level switch: the class-level attribute reprices every instance.
    mini.obj["Length"] = 3.4
    print("after a model-level correction, each Mini now costs %.2f"
          % lot.charge_for(car2))
    print()


def catalog_scenario():
    print("== Price-dependent instance level ==")
    catalog = Catalog(threshold=1000.0)

    register_product(catalog, "turbine", price=50_000.0, weight=900.0,
                     completed="1986-05-01")
    register_product(catalog, "turbine", price=50_000.0, weight=905.0,
                     completed="1986-06-12")
    register_product(catalog, "bracket", price=4.5, weight=0.2, quantity=500)
    register_product(catalog, "bracket", price=4.5, weight=0.2, quantity=250)

    print("individually tracked products:",
          [(p["Name"], p["Completed"]) for p in catalog.individuals()])
    print("class-level product lines:",
          [(line["Name"], line["InStock"]) for line in catalog.lines()])
    print("stock of 'turbine':", catalog.stock_of("turbine"))
    print("stock of 'bracket':", catalog.stock_of("bracket"))
    print("total weight in plant: %.1f" % catalog.total_weight())

    try:
        register_product(catalog, "press", price=9999.0, weight=1200.0)
    except ReproError as exc:
        print("registering an individual without a completion date fails:")
        print("  ", exc)


def main():
    parking_lot_scenario()
    catalog_scenario()


if __name__ == "__main__":
    main()
