#!/usr/bin/env python3
"""Reproduce Figure 1 of the paper: a join of generalized relations.

Builds R1 and R2 exactly as printed, computes R1 ⋈ R2, and prints all
three in the paper's layout.

Run:  python examples/figure1_join.py
"""

from repro.core.orders import Atom, PartialRecord, record
from repro.core.relation import GeneralizedRelation

R1 = GeneralizedRelation(
    [
        record(Name="J Doe", Dept="Sales", Addr={"City": "Moose"}),
        record(Name="M Dee", Dept="Manuf"),
        record(Name="N Bug", Addr={"State": "MT"}),
    ]
)

R2 = GeneralizedRelation(
    [
        record(Dept="Sales", Addr={"State": "WY"}),
        record(Dept="Admin", Addr={"City": "Billings"}),
        record(Dept="Manuf", Addr={"State": "MT"}),
    ]
)


def show_value(value):
    if isinstance(value, Atom):
        return "'%s'" % value.payload if isinstance(value.payload, str) else str(
            value.payload
        )
    if isinstance(value, PartialRecord):
        inner = ", ".join(
            "%s = %s" % (label, show_value(v)) for label, v in value.items()
        )
        return "{%s}" % inner
    return repr(value)


def show_relation(name, relation):
    print("%s:" % name)
    print("{")
    for obj in relation:
        print("  %s" % show_value(obj))
    print("}")
    print()


DBPL_VERSION = """
let r1 = relation([
  {Name = "J Doe", Dept = "Sales", Addr = {City = "Moose"}},
  {Name = "M Dee", Dept = "Manuf"},
  {Name = "N Bug", Addr = {State = "MT"}}
]);
let r2 = relation([
  {Dept = "Sales", Addr = {State = "WY"}},
  {Dept = "Admin", Addr = {City = "Billings"}},
  {Dept = "Manuf", Addr = {State = "MT"}}
]);
let joined = rjoin(r1, r2);
map(fn(o: {}) => print(o), rmembers(joined));
"""


def main():
    show_relation("R1", R1)
    show_relation("R2", R2)
    joined = R1.join(R2)
    show_relation("R1 |><| R2", joined)

    print("The paper's result has four objects; ours has %d." % len(joined))
    print("N Bug (whose Addr carries only State=MT) joins consistently with")
    print("both Manuf (same State) and Admin (adds City=Billings), but not")
    print("with Sales (State WY conflicts) — exactly the figure.")

    print("\nThe same figure, computed by a DBPL program:")
    from repro.lang import run_program

    for line in run_program(DBPL_VERSION).output:
        print("  %s" % line)


if __name__ == "__main__":
    main()
