"""Adaptive selectivity estimation: the planner correcting itself.

Runs the same skewed selection repeatedly with *no* ANALYZE statistics,
so the optimizer starts from its default equality constant — wrong by
design on skewed data.  With adaptive estimation on, each measured run
feeds its observed selectivity back into the next plan's estimate;
watch the per-node drift shrink and the ``corrected by feedback``
annotation appear.  A second catalog built with ``adaptive=False``
shows the escape hatch: same store, same evidence, purely static
estimates.

Run:  PYTHONPATH=src python examples/adaptive_estimation.py
"""

from repro.core.index import Catalog
from repro.core.query import analyze, eq, explain_analyze, optimize, scan
from repro.stats import adaptive
from repro.workloads.queries import skewed_orders

ROWS = 400
plan = scan("orders").where(eq("Status", "failed"))

adaptive.ADAPTIVE.clear()
adaptive.enable()

print("== adaptive on, no ANALYZE: repeated runs self-correct ==\n")
catalog = Catalog({"orders": skewed_orders(ROWS)})
for round_number in range(4):
    __, stats = analyze(optimize(plan, catalog), catalog)
    node = next(n for n in stats.walk() if "Status" in n.label)
    print(
        "round %d: estimate=%6.2f  actual=%d  drift=%.2fx%s"
        % (
            round_number,
            node.estimate,
            node.rows_out,
            node.drift_ratio,
            "  (corrected)" if node.corrected else "",
        )
    )

print("\nfinal EXPLAIN ANALYZE:\n")
print(explain_analyze(optimize(plan, catalog), catalog))

print("\n== the escape hatch: Catalog(adaptive=False) ==\n")
static_catalog = Catalog({"orders": skewed_orders(ROWS)}, adaptive=False)
__, stats = analyze(optimize(plan, static_catalog), static_catalog)
node = next(n for n in stats.walk() if "Status" in n.label)
print(
    "estimate=%6.2f  actual=%d  drift=%.2fx  corrected=%s"
    % (node.estimate, node.rows_out, node.drift_ratio, node.corrected)
)

print("\nadaptive store: %r" % (adaptive.ADAPTIVE.summary(),))
adaptive.disable()
