#!/usr/bin/env python3
"""The database as a server: two clients, one store, isolated sessions.

Buneman & Atkinson's language binds a *session* to a *database*: the
bindings you ``let`` are yours, the extents you ``extern`` are the
database's.  ``repro.server`` turns that split into a deployment shape
— an asyncio TCP server multiplexing many sessions over one shared
log store, with the REPL (or this script's :class:`Client`) as a thin
wire-protocol client.  This example:

1. starts a server on an ephemeral port over a temporary log store
   (:class:`ServerThread` — the embedding a test or notebook uses);
2. connects two clients and shows **binding isolation**: ``alice``'s
   ``let`` is invisible to ``bob``;
3. shows **shared persistence**: ``alice``'s ``extern`` is ``bob``'s
   ``intern``, through the one store both sessions share;
4. round-trips the observability surface remotely: ``stat("sessions")``,
   ``stat("stats")``, and ``stat("health")`` — including the
   ``server.sessions`` probe watching connection pressure;
5. stops the server gracefully and proves the store outlived it: a
   *new* server over the same path still serves the externed value.

Run:  python examples/server.py
"""

import os
import tempfile

from repro.errors import RemoteError
from repro.server import Client, ServerThread


def main():
    store_path = os.path.join(tempfile.mkdtemp(), "shared.log")

    # -- 1. a server over one shared store --------------------------------
    with ServerThread(store=store_path, limit=8) as server:
        print("server listening on %s (store: %s)"
              % (server.address, store_path))

        # -- 2. two sessions, private bindings ----------------------------
        alice = Client(server.host, server.port)
        bob = Client(server.host, server.port)
        print("alice is session %s, bob is session %s"
              % (alice.session_id, bob.session_id))

        alice.run("let salary = 41")
        try:
            bob.run("salary")
            raise AssertionError("bob saw alice's binding!")
        except RemoteError as exc:
            print("bob cannot see alice's let:  error: %s" % exc)

        # -- 3. one database: extern here, intern there -------------------
        alice.run('extern("payroll", dynamic salary);')
        reply = bob.run('coerce intern("payroll") to Int + 1')
        print("bob interns alice's extern:   %s" % reply["value"])

        # -- 4. observability over the wire -------------------------------
        print("\nremote :sessions")
        print(bob.stat("sessions")["text"])

        stats = alice.stat("stats")["text"]
        server_lines = [line for line in stats.splitlines()
                        if "server." in line]
        print("\nremote :stats (server counters)")
        for line in server_lines:
            print(line)

        health = bob.stat("health")["text"]
        probe_line = next(line for line in health.splitlines()
                          if "server.sessions" in line)
        print("\nremote :health (session probe)")
        print(probe_line)

        alice.close()
        bob.close()

    # -- 5. the store outlives the server ---------------------------------
    with ServerThread(store=store_path) as reborn:
        with Client(reborn.host, reborn.port) as carol:
            value = carol.run('coerce intern("payroll") to Int')["value"]
            print("\nafter a restart, a new session still interns"
                  " payroll = %s" % value)
            assert value == "41"

    print("\nok: isolated bindings, shared persistent extents, graceful"
          " shutdown")


if __name__ == "__main__":
    main()
