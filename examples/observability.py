#!/usr/bin/env python3
"""Observe the system at work: tracing, metrics, and EXPLAIN ANALYZE.

Walks the observability layer (``repro.obs``) end to end on the paper's
own material:

1. span-traces Figure 1's generalized join — both directly and as a
   DBPL program, whose parse/check/eval phases nest in the span tree;
2. dumps the metrics registry: join fast-path hits/misses, pair counts,
   store appends — the always-on counters behind every benchmark's
   ``BENCH_<area>.json``;
3. runs ``EXPLAIN ANALYZE`` on an optimized employee query, showing the
   optimizer's cardinality estimates beside the measured rows and time;
4. collects column statistics with ``ANALYZE`` and replans: the cost
   model's measured selectivities close the estimate drift step 3
   exposed.

Run:  python examples/observability.py
"""

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import eq, explain_analyze, optimize, scan
from repro.core.relation import join_with_fastpath
from repro.lang import run_program
from repro.obs import metrics, trace

from figure1_join import DBPL_VERSION, R1, R2


def main():
    tracer = trace.enable()

    # -- 1. trace Figure 1 ------------------------------------------------
    with trace.span("figure1.join", left=len(R1), right=len(R2)) as sp:
        joined = R1.join(R2)
        sp.annotate(rows_out=len(joined))
    # The generalized fast path declines partial records (a miss) ...
    join_with_fastpath(R1, R2)
    # ... and fires on flat cochains (a hit).
    flat = FlatRelation(("K", "A"), [(1, 10), (2, 20)])
    join_with_fastpath(
        flat.to_generalized(),
        FlatRelation(("K", "B"), [(1, 30)]).to_generalized(),
    )

    # The same figure as a DBPL program: its parse/check/eval phases
    # nest as children of one lang.run span.
    run_program(DBPL_VERSION)

    print("span trees (wall time per region, tags annotated):\n")
    for root in tracer.roots:
        print(root.format())
    print()

    # -- 2. the metrics registry ------------------------------------------
    print("metrics after the joins above:\n")
    print(metrics.REGISTRY.format())
    print()

    trace.disable()  # instrumented code now pays one attribute check

    # -- 3. EXPLAIN ANALYZE -----------------------------------------------
    emp = FlatRelation(
        ("Emp", "Dept", "Salary"),
        [
            ("Smith", "Sales", 40),
            ("Jones", "Sales", 50),
            ("Brown", "Manuf", 40),
            ("Green", "Manuf", 60),
        ],
    )
    dept = FlatRelation(
        ("Dept", "City"),
        [("Sales", "Glasgow"), ("Manuf", "Lochgilphead")],
    )
    catalog = {"emp": emp, "dept": dept}
    plan = optimize(
        scan("emp")
        .join(scan("dept"))
        .where(eq("Dept", "Manuf"))
        .project(["Emp", "City"]),
        catalog,
    )
    print("EXPLAIN ANALYZE — estimates vs actuals, per node:\n")
    print(explain_analyze(plan, catalog))
    print()
    print("The equality selection's fixed 0.1 selectivity guess under-")
    print("estimates the Manuf filter (2 of 4 rows match): visible drift.")
    print()

    # -- 4. ANALYZE closes the loop ---------------------------------------
    analyzed = Catalog(catalog)
    analyzed.analyze_all()
    print("the collected statistics:\n")
    print(analyzed.stats_for("emp").format())
    print()
    replanned = optimize(
        scan("emp")
        .join(scan("dept"))
        .where(eq("Dept", "Manuf"))
        .project(["Emp", "City"]),
        analyzed,
    )
    print("EXPLAIN ANALYZE after ANALYZE — the MCV answers exactly:\n")
    print(explain_analyze(replanned, analyzed))


if __name__ == "__main__":
    main()
