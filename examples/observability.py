#!/usr/bin/env python3
"""Observe the system at work: tracing, metrics, and EXPLAIN ANALYZE.

Walks the observability layer (``repro.obs``) end to end on the paper's
own material:

1. span-traces Figure 1's generalized join — both directly and as a
   DBPL program, whose parse/check/eval phases nest in the span tree;
2. dumps the metrics registry: join fast-path hits/misses, pair counts,
   store appends — the always-on counters behind every benchmark's
   ``BENCH_<area>.json``;
3. runs ``EXPLAIN ANALYZE`` on an optimized employee query, showing the
   optimizer's cardinality estimates beside the measured rows and time
   and each join's kernel pruning ratio;
4. collects column statistics with ``ANALYZE`` and replans: the cost
   model's measured selectivities close the estimate drift step 3
   exposed;
5. turns on the event journal and profiler, replays the paper's update
   anomaly through two replicating store fronts — the flight recorder
   catches the divergent re-intern as a WARN event — and prints the
   per-operator profile;
6. exports the whole session (spans, journal, metrics) as a
   Chrome/Perfetto trace file and re-reads it, proving the span tree
   round-trips.

Run:  python examples/observability.py
"""

import os
import tempfile

from repro.core.flat import FlatRelation
from repro.core.index import Catalog
from repro.core.query import eq, explain_analyze, optimize, scan
from repro.core.relation import join_with_fastpath
from repro.lang import run_program
from repro.obs import events, export, metrics, profile, trace
from repro.persistence.replicating import ReplicatingStore
from repro.persistence.store import LogStore
from repro.types.dynamic import dynamic

from figure1_join import DBPL_VERSION, R1, R2


def main():
    tracer = trace.enable()

    # -- 1. trace Figure 1 ------------------------------------------------
    with trace.span("figure1.join", left=len(R1), right=len(R2)) as sp:
        joined = R1.join(R2)
        sp.annotate(rows_out=len(joined))
    # The generalized fast path declines partial records (a miss) ...
    join_with_fastpath(R1, R2)
    # ... and fires on flat cochains (a hit).
    flat = FlatRelation(("K", "A"), [(1, 10), (2, 20)])
    join_with_fastpath(
        flat.to_generalized(),
        FlatRelation(("K", "B"), [(1, 30)]).to_generalized(),
    )

    # The same figure as a DBPL program: its parse/check/eval phases
    # nest as children of one lang.run span.
    run_program(DBPL_VERSION)

    print("span trees (wall time per region, tags annotated):\n")
    for root in tracer.roots:
        print(root.format())
    print()

    # -- 2. the metrics registry ------------------------------------------
    print("metrics after the joins above:\n")
    print(metrics.REGISTRY.format())
    print()

    trace.disable()  # instrumented code now pays one attribute check

    # -- 3. EXPLAIN ANALYZE -----------------------------------------------
    emp = FlatRelation(
        ("Emp", "Dept", "Salary"),
        [
            ("Smith", "Sales", 40),
            ("Jones", "Sales", 50),
            ("Brown", "Manuf", 40),
            ("Green", "Manuf", 60),
        ],
    )
    dept = FlatRelation(
        ("Dept", "City"),
        [("Sales", "Glasgow"), ("Manuf", "Lochgilphead")],
    )
    catalog = {"emp": emp, "dept": dept}
    plan = optimize(
        scan("emp")
        .join(scan("dept"))
        .where(eq("Dept", "Manuf"))
        .project(["Emp", "City"]),
        catalog,
    )
    print("EXPLAIN ANALYZE — estimates vs actuals, per node:\n")
    print(explain_analyze(plan, catalog))
    print()
    print("The equality selection's fixed 0.1 selectivity guess under-")
    print("estimates the Manuf filter (2 of 4 rows match): visible drift.")
    print()

    # -- 4. ANALYZE closes the loop ---------------------------------------
    analyzed = Catalog(catalog)
    analyzed.analyze_all()
    print("the collected statistics:\n")
    print(analyzed.stats_for("emp").format())
    print()
    replanned = optimize(
        scan("emp")
        .join(scan("dept"))
        .where(eq("Dept", "Manuf"))
        .project(["Emp", "City"]),
        analyzed,
    )
    print("EXPLAIN ANALYZE after ANALYZE — the MCV answers exactly:\n")
    print(explain_analyze(replanned, analyzed))
    print()

    # -- 5. the flight recorder -------------------------------------------
    events.enable()
    profiler = profile.enable()
    with tempfile.TemporaryDirectory() as tmp:
        # The paper's update anomaly, caught live: two replicating store
        # fronts share one log; a re-intern that finds the value changed
        # behind its back is journaled as a WARN.
        shared = LogStore(os.path.join(tmp, "shared.log"))
        mine = ReplicatingStore(shared)
        theirs = ReplicatingStore(shared)
        mine.extern("doc", dynamic("original"))
        mine.intern("doc")
        theirs.extern("doc", dynamic("changed elsewhere"))
        mine.intern("doc")  # divergent: WARN divergent_reintern
        shared.close()

        # Re-run the optimized query with the profiler attributing wall
        # time and join-pair work to each operator.
        replanned.execute(analyzed)

        print("the event journal (note the WARN — the update anomaly):\n")
        for event in events.CURRENT.events(subsystem="replicating"):
            print(event.format())
        print()
        print("per-operator profile:\n")
        print(profiler.report())
        print()

        # -- 6. export and re-read the whole session ----------------------
        tracer = trace.enable()
        replanned.execute(analyzed)  # traced this time: plan.* spans
        path = export.write_trace(os.path.join(tmp, "session.trace.json"))
        document = export.read_trace(path)
        roots = export.span_tree(document)
        trace.disable()

        print("exported %d trace events to %s" % (
            len(document["traceEvents"]), os.path.basename(path)))
        print("journal totals in otherData:",
              document["otherData"]["journal"])

        def render(node, depth=0):
            print("  " * depth + node["name"])
            for child in node["children"]:
                render(child, depth + 1)

        print("span tree re-read from the file (== the operator tree):\n")
        for root in roots:
            if root["name"].startswith("plan."):
                render(root)
    events.disable()
    profile.disable()


if __name__ == "__main__":
    main()
