#!/usr/bin/env python3
"""Schema evolution: recompiling 'Persistent Pascal' at an evolved type.

Replays the paper's scenario: a handle is first compiled at DBType; a
later program recompiles at a supertype (a view), then at a consistent
type (an enrichment), then at a contradictory type (an error).  Also
demonstrates the structure-loss hazard of replicating persistence at a
supertype, and intrinsic persistence avoiding it.

Run:  python examples/schema_evolution.py
"""

import os
import tempfile

from repro.core.orders import record
from repro.errors import CoercionError, SchemaEvolutionError
from repro.persistence.heap import PObject
from repro.persistence.intrinsic import PersistentHeap
from repro.persistence.replicating import ReplicatingStore
from repro.persistence.schema import SchemaRegistry, project_to_type
from repro.types.dynamic import coerce, dynamic
from repro.types.kinds import INT, STRING, ListType, record_type

PERSON_T = record_type(Name=STRING)
EMPLOYEE_T = record_type(Name=STRING, Emp_no=INT)
DB_T = record_type(Employees=ListType(EMPLOYEE_T))
DB_VIEW_T = record_type(Employees=ListType(PERSON_T))
DB_ENRICHED_T = record_type(
    Employees=ListType(EMPLOYEE_T),
    Depts=ListType(record_type(Dept=STRING)),
)
DB_HOSTILE_T = record_type(Employees=INT)


def compilation_outcomes(tmp):
    print("== The three recompilation outcomes ==")
    registry = SchemaRegistry(os.path.join(tmp, "schema.log"))

    first = registry.compile_at("DBHandle", DB_T)
    print("first compilation :", first.outcome, "at", first.stored_after)

    view = registry.compile_at("DBHandle", DB_VIEW_T)
    print("supertype request :", view.outcome,
          "- stored type stays", view.stored_after)

    enriched = registry.compile_at("DBHandle", DB_ENRICHED_T)
    print("consistent request:", enriched.outcome,
          "- stored type becomes", enriched.stored_after)

    try:
        registry.compile_at("DBHandle", DB_HOSTILE_T)
    except SchemaEvolutionError as exc:
        print("contradiction     : rejected -", exc)
    registry.close()
    print()


def replication_hazard(tmp):
    print("== Structure loss under replicating persistence ==")
    store = ReplicatingStore(os.path.join(tmp, "amber.log"))
    employee = record(Name="J Doe", Emp_no=1234)
    print("the database holds:", employee)

    # A program compiled at the Person *view* externs what it sees:
    view_value = project_to_type(employee, PERSON_T)
    print("the view program sees:", view_value)
    store.extern("DB", dynamic(view_value, PERSON_T))

    back = store.intern("DB")
    try:
        coerce(back, EMPLOYEE_T)
    except CoercionError:
        print("re-reading at Employee fails: Emp_no is gone —")
        print("'thereby losing structure from the database'")
    store.close()
    print()


def intrinsic_is_safe(tmp):
    print("== Intrinsic persistence keeps the structure ==")
    path = os.path.join(tmp, "heap.log")
    heap = PersistentHeap(path)
    heap.root("DB", PObject("Employee", {"Name": "J Doe", "Emp_no": 1234}))
    heap.commit()
    heap.close()

    # "The view program" updates what it can see and commits.
    heap = PersistentHeap(path)
    employee = heap.get_root("DB")
    employee["Name"] = "J Doe Jr"
    heap.commit()
    heap.close()

    final = PersistentHeap(path).get_root("DB")
    print("after the view program ran: Name=%r, Emp_no=%r"
          % (final["Name"], final["Emp_no"]))
    print("nothing was lost: intrinsic persistence stores objects, not views.")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        compilation_outcomes(tmp)
        replication_hazard(tmp)
        intrinsic_is_safe(tmp)


if __name__ == "__main__":
    main()
