#!/usr/bin/env python3
"""An employee database written in DBPL, the reproduction's language.

The program below is (a runnable rendering of) the paper's running
example: a Person/Employee hierarchy, a heterogeneous database, the
generic ``get`` deriving extents from types, Amber-style dynamics, and
``extern``/``intern`` replicating persistence across two "programs"
(two interpreter sessions over one store).

Run:  python examples/employee_database.py
"""

import os
import tempfile

from repro.lang.eval import Interpreter

FIRST_PROGRAM = """
-- The paper's declarations, in Amber style:
--   type Person is {aName: String; Address ...}
--   type Employee is Person with {Empno: Int; Dept: String}
type Person = {Name: String, Address: {City: String}}
type Employee = Person with {Empno: Int, Dept: String}
type Student = Person with {School: String}

let db = newdb();
insert(db, dynamic {Name = "P One", Address = {City = "Austin"}});
insert(db, dynamic {Name = "E One", Address = {City = "Moose"},
                    Empno = 1, Dept = "Sales"});
insert(db, dynamic {Name = "E Two", Address = {City = "Billings"},
                    Empno = 2, Dept = "Manuf"});
insert(db, dynamic {Name = "S One", Address = {City = "Philly"},
                    School = "Penn"});
insert(db, dynamic {Name = "WS One", Address = {City = "Glasgow"},
                    Empno = 3, Dept = "Manuf", School = "Glasgow"});

-- The generic Get: ∀t. Database -> List[∃t' <= t. t']
print("persons:");
map(fn(p: Person) => print(p.Name), get[Person](db));
print("employees:");
map(fn(e: Employee) => print(e.Name), get[Employee](db));
print("students:");
map(fn(s: Student) => print(s.Name), get[Student](db));

-- Object-level inheritance: promote a Person to an Employee with ⊔.
let p = {Name = "New Hire", Address = {City = "Austin"}};
let e = p with {Empno = 4, Dept = "Sales"};
print("promoted:");
print(e);

-- Replicating persistence: the database is a value; seal it with its
-- type and extern it.
type Payroll = {Employees: List[Employee]}
let payroll = {Employees = map(fn(x: Employee) => x, get[Employee](db))};
extern("PayrollFile", dynamic payroll);
print("externed payroll");
"""

SECOND_PROGRAM = """
-- A later program interns the handle and coerces at the expected type;
-- the value travelled with its type description.
type Person = {Name: String, Address: {City: String}}
type Employee = Person with {Empno: Int, Dept: String}
type Payroll = {Employees: List[Employee]}

let payroll = coerce intern("PayrollFile") to Payroll;
print("payroll size:");
print(length(payroll.Employees));
print("total of employee numbers:");
print(sum(map(fn(e: Employee) => intToFloat(e.Empno), payroll.Employees)));
"""


def main():
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "employees.log")

        print("--- first program ---")
        first = Interpreter(store_path)
        result = first.run(FIRST_PROGRAM)
        for line in result.output:
            print(line)

        print("\n--- second program (fresh session, same store) ---")
        second = Interpreter(store_path)
        result = second.run(SECOND_PROGRAM)
        for line in result.output:
            print(line)


if __name__ == "__main__":
    main()
