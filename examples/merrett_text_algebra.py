#!/usr/bin/env python3
"""Non-database computation with relational algebra (after Merrett).

The paper cites Merrett's examples of "the use of relational algebra to
solve a variety of problems drawn from areas as diverse as computational
geometry and text processing" — the point being that *transient* extents
are useful computation structures, not just persistent databases.

This script does text processing with the flat algebra and the query
planner: a word-position relation over two short documents supports
concordance queries, bigram extraction via a self-join, and
shared-vocabulary analysis via projection and intersection.  Nothing
here persists; every relation is a transient extent.

Run:  python examples/merrett_text_algebra.py
"""

from repro.core.flat import FlatRelation
from repro.core.query import attr_eq, eq, explain, optimize, scan

DOCUMENTS = {
    "types": (
        "a type system powerful enough to write down the type of a "
        "generic function"
    ),
    "extents": (
        "a generic function that extracts the objects of a given type "
        "from the database"
    ),
}


def word_positions():
    """The base relation: (Doc, Pos, Word)."""
    rows = []
    for doc, text in DOCUMENTS.items():
        for position, word in enumerate(text.split()):
            rows.append((doc, position, word))
    return FlatRelation(("Doc", "Pos", "Word"), rows)


def main():
    words = word_positions()
    catalog = {"words": words}
    print("base relation: %d (Doc, Pos, Word) rows" % len(words))

    # -- concordance: where does 'type' occur? ------------------------------
    concordance = (
        scan("words").where(eq("Word", "type")).project(["Doc", "Pos"])
    )
    print("\noccurrences of 'type':")
    for row in concordance.execute(catalog):
        print("  %s @ %d" % (row["Doc"], row["Pos"]))

    # -- bigrams via a self-join --------------------------------------------
    # (Doc, Pos, Word) ⋈ (Doc, Pos2=Pos+1, Word2): rename then join on
    # Doc and the successor position (computed column via select).
    successors = FlatRelation(
        ("Doc", "Pos", "NextPos"),
        [
            (row["Doc"], row["Pos"], row["Pos"] + 1)
            for row in words
        ],
    )
    catalog["succ"] = successors
    catalog["words2"] = words.rename({"Pos": "NextPos", "Word": "NextWord"})
    bigram_plan = (
        scan("words")
        .join(scan("succ"))
        .join(scan("words2"))
        .project(["Word", "NextWord"])
    )
    bigrams = bigram_plan.execute(catalog)
    print("\n%d distinct bigrams; those starting with 'generic':" % len(bigrams))
    for row in bigrams.select(lambda r: r["Word"] == "generic"):
        print("  %s %s" % (row["Word"], row["NextWord"]))

    # -- shared vocabulary ----------------------------------------------------
    vocab_a = words.select(lambda r: r["Doc"] == "types").project(["Word"])
    vocab_b = words.select(lambda r: r["Doc"] == "extents").project(["Word"])
    shared = vocab_a.intersect(vocab_b)
    print("\nshared vocabulary (%d words):" % len(shared),
          sorted(row["Word"] for row in shared))

    # -- words that co-occur in both docs at the same position ----------------
    aligned_plan = (
        scan("words")
        .where(eq("Doc", "types"))
        .project(["Pos", "Word"])
        .join(
            scan("words").where(eq("Doc", "extents")).project(["Pos", "Word"])
        )
    )
    aligned = aligned_plan.execute(catalog)
    print("\nwords at the same position in both documents:",
          sorted((row["Pos"], row["Word"]) for row in aligned))

    # -- the optimizer at work -------------------------------------------------
    print("\noptimized bigram plan:")
    print(explain(optimize(bigram_plan, catalog)))


if __name__ == "__main__":
    main()
