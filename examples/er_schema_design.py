#!/usr/bin/env python3
"""Schema design: the ER model as types, plus normalization theory.

Walks the paper's open problem ("write down the Entity-Relationship
model as generic types ... checking of integrity constraints such as
acyclic conditions") end to end:

1. declare a labelled-graph ER schema with an ISA hierarchy;
2. validate the graph (acyclicity, keys, role targets);
3. compile it to Cardelli–Wegner types — ISA becomes subtyping;
4. validate a populated instance (keys, references, cardinalities);
5. derive a relational schema and normalize it with the FD theory.

Run:  python examples/er_schema_design.py
"""

from repro.core.fd import FunctionalDependency as FD
from repro.core.fd import candidate_keys
from repro.core.normalize import (
    bcnf_decompose,
    is_3nf,
    is_bcnf,
    is_lossless,
    preserves_dependencies,
    project_fds,
    synthesize_3nf,
)
from repro.types.er import ERSchema, ERSchemaError
from repro.types.kinds import FLOAT, INT, STRING


def build_schema():
    schema = ERSchema()
    schema.entity("Person", {"Name": STRING, "City": STRING}, key=["Name"])
    schema.entity(
        "Employee", {"Empno": INT, "Salary": FLOAT}, key=[], isa=["Person"]
    )
    schema.entity("Dept", {"DeptName": STRING, "Budget": FLOAT},
                  key=["DeptName"])
    schema.relationship(
        "WorksIn",
        roles={"worker": "Employee", "dept": "Dept"},
        attributes={"Since": INT},
        one_roles=["worker"],
    )
    return schema


def main():
    print("== 1–2. Declare and validate the labelled graph ==")
    schema = build_schema()
    schema.validate()
    print("schema valid; ISA respects subtyping:",
          schema.isa_respects_subtyping())

    broken = ERSchema()
    broken.entity("A", {"x": INT}, key=["x"], isa=["B"])
    broken.entity("B", {"y": INT}, key=["y"], isa=["A"])
    try:
        broken.validate()
    except ERSchemaError as exc:
        print("a cyclic ISA graph is rejected:", exc)

    print("\n== 3. Compile the graph to types ==")
    print("Employee :", schema.entity_type("Employee"))
    print("WorksIn  :", schema.relationship_type("WorksIn"))
    print("Schema   :", schema.schema_type())

    print("\n== 4. Validate an instance ==")
    instance = {
        "Person": [{"Name": "P", "City": "Austin"}],
        "Employee": [
            {"Name": "E", "City": "Moose", "Empno": 1, "Salary": 10.0}
        ],
        "Dept": [{"DeptName": "Sales", "Budget": 100.0}],
        "WorksIn": [
            {"worker": {"Name": "E"}, "dept": {"DeptName": "Sales"},
             "Since": 1986}
        ],
    }
    print("violations:", schema.check_instance(instance) or "none")
    instance["WorksIn"].append(
        {"worker": {"Name": "E"}, "dept": {"DeptName": "Ghost"}, "Since": 1}
    )
    for problem in schema.check_instance(instance):
        print("detected:", problem)

    print("\n== 5. Normalize the derived Employee relation ==")
    attrs = ("Name", "City", "Empno", "Salary", "DeptName", "Budget")
    fds = [
        FD(["Name"], ["City", "Empno", "Salary", "DeptName"]),
        FD(["Empno"], ["Name"]),
        FD(["DeptName"], ["Budget"]),
    ]
    print("candidate keys:", [sorted(k) for k in candidate_keys(attrs, fds)])
    print("is BCNF?", is_bcnf(attrs, fds), " is 3NF?", is_3nf(attrs, fds))

    pieces = bcnf_decompose(attrs, fds)
    print("BCNF decomposition:", [sorted(p) for p in pieces])
    print("  lossless?", is_lossless(attrs, fds, pieces))
    print("  dependency preserving?", preserves_dependencies(fds, pieces))

    pieces3 = synthesize_3nf(attrs, fds)
    print("3NF synthesis:", [sorted(p) for p in pieces3])
    print("  lossless?", is_lossless(attrs, fds, pieces3))
    print("  dependency preserving?", preserves_dependencies(fds, pieces3))
    for piece in pieces3:
        assert is_3nf(piece, project_fds(fds, piece))
    print("every synthesized schema is in 3NF.")


if __name__ == "__main__":
    main()
