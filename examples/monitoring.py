#!/usr/bin/env python3
"""Production monitoring: watch a skewed workload, catch a slow query.

Drives the monitoring layer (``repro.obs.monitor`` +
``repro.obs.slowlog``) end to end on the skewed-orders workload:

1. enables the flight recorder with a deliberately tiny journal ring,
   the slow-query log, and the windowed monitor;
2. runs a burst of status lookups, sampling a monitor window per
   batch — counter rates and latency digests accumulate;
3. trips the slow-query log: with the threshold dropped to 0 every
   query is "slow", and an ``EXPLAIN ANALYZE`` run contributes the
   estimate-drift column to the captured entry;
4. runs the health probes: the tiny journal ring has been evicting
   events all along, so ``journal.drops`` reports *degraded* — and the
   verdict itself is journaled as a WARN event;
5. prints the ``:watch``-style rates/latency/gauges view;
6. exports the registry as OpenMetrics text and parses it back,
   proving the exposition round-trips.

Run:  python examples/monitoring.py
"""

import os
import tempfile

from repro.core.query import explain_analyze, optimize
from repro.obs import events, monitor, slowlog, trace
from repro.obs.metrics import REGISTRY
from repro.workloads.queries import orders_catalog, orders_query


def main():
    # -- 1. arm the monitoring layer --------------------------------------
    # A 32-event ring is far too small for this workload — on purpose:
    # the journal.drops health probe should catch the eviction pressure.
    events.enable(capacity=32)
    log = slowlog.enable(threshold_ms=50.0)
    mon = monitor.enable()

    catalog = orders_catalog(rows=2000)
    statuses = ("shipped", "pending", "returned", "failed")

    # -- 2. the workload, sampled per batch -------------------------------
    # Tracing is on, so every closed plan span also chronicles a DEBUG
    # event into the journal — realistic chatter that the 32-slot ring
    # cannot hold.
    tracer = trace.enable()
    for batch in range(5):
        for status in statuses:
            plan = optimize(orders_query(status), catalog)
            plan.execute(catalog)
        mon.tick()
        tracer.clear()  # keep the long-running session bounded
    trace.disable()
    print("sampled %d monitor windows over %d queries\n"
          % (len(mon.windows()), 5 * len(statuses)))

    # -- 3. trip the slow-query log ---------------------------------------
    slowlog.set_threshold(0.0)  # every query is now "slow"
    slow_plan = optimize(orders_query("failed"), catalog)
    print(explain_analyze(slow_plan, catalog))
    slow_plan.execute(catalog)
    mon.tick()
    print("\nthe slow-query log (:slow):\n")
    print(log.report())
    assert len(log) > 0, "the forced slow query never reached the log"

    # -- 4. health: the tiny journal ring is degraded ---------------------
    print("\nhealth probes (:health):\n")
    results = monitor.health_report(catalog=catalog)
    print(monitor.format_health(results))
    drops = next(r for r in results if r.probe == "journal.drops")
    assert drops.verdict == monitor.DEGRADED, (
        "expected the 32-slot journal to be evicting by now"
    )
    # The degraded verdict is itself journaled evidence:
    warns = [e for e in events.CURRENT.events(subsystem="health")]
    print("\njournaled health WARNs: %d (e.g. %s)"
          % (len(warns), warns[-1].format()))

    # -- 5. the :watch view -----------------------------------------------
    print("\nthe :watch view over all windows:\n")
    print(mon.format())

    # -- 6. OpenMetrics round-trip ----------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = monitor.write_metrics_snapshot(
            os.path.join(tmp, "orders.openmetrics")
        )
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        parsed = monitor.parse_openmetrics(text)
        print("\nOpenMetrics snapshot: %d bytes, %d counters, %d gauges,"
              " %d summaries (EOF=%s)"
              % (len(text), len(parsed["counters"]), len(parsed["gauges"]),
                 len(parsed["summaries"]), parsed["eof"]))
        assert len(parsed["counters"]) == len(REGISTRY.counters()), (
            "exposition dropped a counter"
        )
        first = sorted(parsed["counters"])[:3]
        for name in first:
            print("  %s = %d" % (name, parsed["counters"][name]))

    slowlog.disable()
    monitor.disable()
    events.disable()


if __name__ == "__main__":
    main()
