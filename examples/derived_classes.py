#!/usr/bin/env python3
"""Class constructs derived from the primitives — four languages, one core.

The paper asks "whether the notion of class is fundamental or whether it
can be derived from more primitive constructs".  This example models one
Person/Employee schema in each surveyed language's style — Taxis,
Adaplex, Galileo, Pascal/R — all running over the same type/extent/
persistence primitives, and contrasts their couplings.

Run:  python examples/derived_classes.py
"""

import os
import tempfile

from repro.classes.adaplex import AdaplexSchema
from repro.classes.galileo import GalileoEnvironment
from repro.classes.pascal_r import PascalRDatabase, RelationVariable
from repro.classes.taxis import VariableClass, instance_chain
from repro.core.orders import record
from repro.errors import ClassConstructError
from repro.types.kinds import INT, STRING, record_type


def taxis():
    print("== Taxis: VARIABLE_CLASS couples type AND extent ==")
    person = VariableClass("PERSON", {"Name": STRING})
    employee = VariableClass(
        "EMPLOYEE", {"Empno": INT, "Department": STRING}, isa=(person,)
    )
    instance = employee.insert(Name="J Doe", Empno=1, Department="Sales")
    print("inserted one EMPLOYEE; extent sizes:",
          {"EMPLOYEE": len(employee), "PERSON": len(person.extent)})
    print("instance hierarchy (three levels):",
          " -> ".join(str(level) for level in instance_chain(instance)))
    print()


def adaplex():
    print("== Adaplex: nominal entity types + include directives ==")
    schema = AdaplexSchema()
    schema.entity_type("Person", Name=STRING)
    schema.entity_type("Employee", Empno=INT, Department=STRING)
    schema.entity_type("Android", Name=STRING)  # same structure as Person!
    schema.include("Employee", "Person")
    schema.create("Employee", Name="J Doe", Empno=1, Department="Sales")
    print("extents:",
          {name: len(schema.extent(name))
           for name in ("Person", "Employee", "Android")})
    print("Person and Android are structurally equal but distinct:",
          schema.structurally_equal_but_distinct("Person", "Android"))
    print()


def galileo():
    print("== Galileo: classes over arbitrary types, one per type ==")
    env = GalileoEnvironment()
    integers = env.define_class("favourites", INT)
    integers.insert(3)
    integers.insert(7)
    print("a class of integers:", list(integers))
    persons = env.define_class("persons", record_type(Name=STRING))
    persons.insert(record(Name="J Doe"))
    try:
        env.define_class("people_again", record_type(Name=STRING))
    except ClassConstructError as exc:
        print("second extent on the same type refused:", exc)
    print()


def pascal_r(tmp):
    print("== Pascal/R: relation types in a database, file-style ==")
    def fresh_rel():
        return RelationVariable(
            "Employees",
            record_type(Name=STRING, Empno=INT),
            key=("Empno",),
        )

    path = os.path.join(tmp, "empdb")
    db = PascalRDatabase(path, Employees=fresh_rel())
    db["Employees"].insert(Name="J Doe", Empno=1)
    db["Employees"].insert(Name="M Dee", Empno=2)
    db.save()
    print("saved %d rows" % len(db["Employees"]))

    reopened = PascalRDatabase(path, Employees=fresh_rel())
    print("reopened:", [row["Name"] for row in reopened["Employees"]])
    try:
        PascalRDatabase(os.path.join(tmp, "bad"), Count=42)
    except ClassConstructError as exc:
        print("only relations may enter a database:", exc)
    print()


def main():
    taxis()
    adaplex()
    galileo()
    with tempfile.TemporaryDirectory() as tmp:
        pascal_r(tmp)
    print("All four were built from the same primitives — type, extent,")
    print("persistence — so 'class' is derivable, as the paper argues.")


if __name__ == "__main__":
    main()
