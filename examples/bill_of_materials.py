#!/usr/bin/env python3
"""The bill-of-materials example: memoization via transient fields.

Builds a parts explosion that is a DAG (shared subassemblies), computes
TotalCost naively and memoized, persists the catalog with intrinsic
persistence, and shows the memo fields do not persist.

Run:  python examples/bill_of_materials.py
"""

import os
import tempfile

from repro.apps.bom import (
    TOTAL_COST,
    TOTAL_MASS,
    clear_memos,
    explosion_size,
    is_tree_explosion,
    make_assembly,
    make_base_part,
    roll_up_memoized,
    roll_up_naive,
)
from repro.persistence.intrinsic import PersistentHeap


def build_bike_fleet():
    """A fleet of bikes sharing wheel and drivetrain subassemblies."""
    spoke = make_base_part("spoke", 0.5, mass=0.01)
    rim = make_base_part("rim", 12.0, mass=0.6)
    tyre = make_base_part("tyre", 18.0, mass=0.9)
    wheel = make_assembly(
        "wheel", 5.0, [(spoke, 32), (rim, 1), (tyre, 1)], assembly_mass=0.1
    )
    chain = make_base_part("chain", 15.0, mass=0.3)
    cog = make_base_part("cog", 4.0, mass=0.05)
    drivetrain = make_assembly("drivetrain", 8.0, [(chain, 1), (cog, 9)])
    frame = make_base_part("frame", 150.0, mass=2.5)
    bike = make_assembly(
        "bike", 40.0, [(frame, 1), (wheel, 2), (drivetrain, 1)]
    )
    # Ten bikes in a shipment share the same design objects — a DAG.
    shipment = make_assembly("shipment", 25.0, [(bike, 10)])
    return shipment


def main():
    shipment = build_bike_fleet()
    print("explosion size (distinct parts):", explosion_size(shipment))
    print("is a tree?", is_tree_explosion(shipment))

    naive = roll_up_naive(shipment, TOTAL_COST)
    print("\nTotalCost (naive)    = %.2f  in %d visits" % (naive.value, naive.visits))
    clear_memos(shipment, TOTAL_COST)
    memo = roll_up_memoized(shipment, TOTAL_COST)
    print("TotalCost (memoized) = %.2f  in %d visits" % (memo.value, memo.visits))
    assert naive.value == memo.value

    mass = roll_up_memoized(shipment, TOTAL_MASS)
    print("TotalMass (memoized) = %.2f  in %d visits" % (mass.value, mass.visits))

    print("\nPersisting the catalog with intrinsic persistence...")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "parts.log")
        heap = PersistentHeap(path)
        heap.root("catalog", shipment)
        stats = heap.commit()
        print("first commit wrote %d objects" % stats.objects_written)

        # Re-run the costing: memo fields change, but they are transient.
        clear_memos(shipment, TOTAL_COST)
        roll_up_memoized(shipment, TOTAL_COST)
        stats = heap.commit()
        print(
            "commit after re-costing wrote %d objects (memos are transient)"
            % stats.objects_written
        )
        heap.close()

        reopened = PersistentHeap(path)
        catalog = reopened.get_root("catalog")
        print(
            "reopened catalog has memo fields?",
            "_TotalCost" in catalog,
        )
        again = roll_up_memoized(catalog, TOTAL_COST)
        print("recomputed TotalCost on reopened catalog = %.2f" % again.value)
        assert again.value == memo.value
        reopened.close()

    print("\nDone.")


if __name__ == "__main__":
    main()
