"""The paper's worked applications.

* :mod:`repro.apps.bom` — the bill-of-materials computation from the
  paper's final section: recursive ``TotalCost`` over a parts-explosion
  graph, naive versus memoized through *transient fields on persistent
  objects*;
* :mod:`repro.apps.instances` — the two instance-hierarchy design
  scenarios: the university parking lot (a car is an instance of a
  make-and-model) and the manufacturing plant whose products live at a
  price-dependent level of the hierarchy.
"""

from repro.apps.bom import (
    RollUp,
    RollUpResult,
    TOTAL_COST,
    TOTAL_MASS,
    clear_memos,
    components_of,
    explosion_size,
    is_tree_explosion,
    make_assembly,
    make_base_part,
    roll_up_memoized,
    roll_up_naive,
    total_cost,
    total_cost_memoized,
    total_mass,
)
from repro.apps.instances import (
    Catalog,
    MakeAndModel,
    ParkingLot,
    PRICE_THRESHOLD,
    register_product,
)

__all__ = [
    "RollUp",
    "RollUpResult",
    "roll_up_memoized",
    "roll_up_naive",
    "TOTAL_COST",
    "TOTAL_MASS",
    "clear_memos",
    "components_of",
    "explosion_size",
    "is_tree_explosion",
    "make_assembly",
    "make_base_part",
    "total_cost",
    "total_cost_memoized",
    "total_mass",
    "Catalog",
    "MakeAndModel",
    "ParkingLot",
    "PRICE_THRESHOLD",
    "register_product",
]
