"""The instance-hierarchy design scenarios.

The paper's two "actual design problems":

1. **The university parking lot.**  "The only information maintained on
   cars in the University parking lot is the registration number (tag),
   and make-and-model.  Information such as the length, which is used to
   derive charges and the availability of space, is derived from the
   make-and-model."  A car is an *instance of* a make-and-model — the
   level switch of "My car is a Chevvy Nova.  The Chevvy Nova weighs
   3,000 pounds."  :class:`ParkingLot` models this with cars referencing
   :class:`MakeAndModel` objects and per-car charges derived through
   them.  Because cars are objects with identity (not keyed tuples), two
   indistinguishable cars can coexist — the paper's tagless scenario.

2. **Price-dependent level.**  "Products in a certain manufacturing
   plant that are above a certain price are treated as individuals and
   have attributes such as weight and completion date of construction.
   Below that price they are treated as classes and have weight and
   number in stock as properties of the class."  :func:`register_product`
   places a product at the individual or class level depending on its
   price; :class:`Catalog` answers stock queries uniformly across both.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.errors import ReproError
from repro.persistence.heap import PObject


class MakeAndModel:
    """A make-and-model: the class-level node of the car hierarchy."""

    __slots__ = ("obj",)

    def __init__(self, make: str, model: str, length: float, weight: float):
        self.obj = PObject(
            "MakeModel",
            {"Make": make, "Model": model, "Length": length, "Weight": weight},
        )

    @property
    def length(self) -> float:
        """The model's length — a *class-level* attribute."""
        return self.obj["Length"]

    @property
    def weight(self) -> float:
        """The model's weight (the 'Chevvy Nova weighs 3,000 pounds')."""
        return self.obj["Weight"]

    def __repr__(self) -> str:
        return "<MakeAndModel %s %s>" % (self.obj["Make"], self.obj["Model"])


class ParkingLot:
    """Cars as instances of make-and-models, with derived charges.

    ``rate_per_metre`` converts a model's length into a daily charge.
    ``capacity_metres`` bounds the summed length of parked cars — "used
    to derive charges and the availability of space".
    """

    def __init__(self, capacity_metres: float, rate_per_metre: float = 1.0):
        self._capacity = capacity_metres
        self._rate = rate_per_metre
        self._cars: List[PObject] = []

    def admit(
        self, make_model: MakeAndModel, tag: Optional[str] = None
    ) -> PObject:
        """Park a car of the given make-and-model.

        The instance hierarchy is explicit: the car object references the
        make-and-model object rather than copying its attributes.  Tags
        are optional — without them "one could then have two identical
        cars in the database", which object identity supports.
        """
        length = make_model.length
        if self.occupied_metres() + length > self._capacity:
            raise ReproError(
                "lot full: %.1fm used of %.1fm, car needs %.1fm"
                % (self.occupied_metres(), self._capacity, length)
            )
        car = PObject("Car", {"MakeModel": make_model.obj})
        if tag is not None:
            car["Tag"] = tag
        self._cars.append(car)
        return car

    def release(self, car: PObject) -> None:
        """Remove a specific car (by identity, not by attributes)."""
        try:
            self._cars.remove(car)
        except ValueError:
            raise ReproError("that car is not in the lot") from None

    def charge_for(self, car: PObject) -> float:
        """The daily charge, derived *through* the make-and-model."""
        return car["MakeModel"]["Length"] * self._rate

    def occupied_metres(self) -> float:
        """Summed length of parked cars."""
        return sum(car["MakeModel"]["Length"] for car in self._cars)

    def available_metres(self) -> float:
        """Remaining capacity."""
        return self._capacity - self.occupied_metres()

    def cars_of(self, make_model: MakeAndModel) -> List[PObject]:
        """All parked instances of one make-and-model."""
        return [c for c in self._cars if c["MakeModel"] is make_model.obj]

    def __len__(self) -> int:
        return len(self._cars)

    def __iter__(self) -> Iterator[PObject]:
        return iter(self._cars)


#: Products priced above this are individuals; at or below, class-level.
PRICE_THRESHOLD = 1000.0


class Catalog:
    """The manufacturing plant's product registry, spanning both levels.

    Expensive products are individual objects (weight and completion
    date per item); cheap ones are class-level entries (weight and
    number-in-stock per product line).
    """

    def __init__(self, threshold: float = PRICE_THRESHOLD):
        self._threshold = threshold
        self._individuals: List[PObject] = []
        self._lines: Dict[str, PObject] = {}

    @property
    def threshold(self) -> float:
        """The price above which products become individuals."""
        return self._threshold

    # -- registration -----------------------------------------------------------

    def add_individual(
        self, name: str, price: float, weight: float, completed: str
    ) -> PObject:
        """Register one individual product (above-threshold level)."""
        product = PObject(
            "Product",
            {
                "Name": name,
                "Price": price,
                "Weight": weight,
                "Completed": completed,
            },
        )
        self._individuals.append(product)
        return product

    def add_to_line(
        self, name: str, price: float, weight: float, quantity: int = 1
    ) -> PObject:
        """Register stock of a class-level product line."""
        line = self._lines.get(name)
        if line is None:
            line = PObject(
                "ProductLine",
                {"Name": name, "Price": price, "Weight": weight, "InStock": 0},
            )
            self._lines[name] = line
        line["InStock"] = line["InStock"] + quantity
        return line

    # -- uniform queries across the level split -------------------------------------

    def stock_of(self, name: str) -> int:
        """How many items named ``name`` exist, at either level."""
        individual_count = sum(
            1 for p in self._individuals if p["Name"] == name
        )
        line = self._lines.get(name)
        return individual_count + (line["InStock"] if line is not None else 0)

    def total_weight(self) -> float:
        """Summed weight: per-item for individuals, weight × stock for lines."""
        weight = sum(p["Weight"] for p in self._individuals)
        weight += sum(
            line["Weight"] * line["InStock"] for line in self._lines.values()
        )
        return weight

    def individuals(self) -> List[PObject]:
        """The individually-tracked products."""
        return list(self._individuals)

    def lines(self) -> List[PObject]:
        """The class-level product lines."""
        return list(self._lines.values())


def register_product(
    catalog: Catalog,
    name: str,
    price: float,
    weight: float,
    completed: Optional[str] = None,
    quantity: int = 1,
) -> PObject:
    """Register a product at the level its price dictates.

    "The level in the instance hierarchy depends upon an attribute":
    above the catalog's threshold each item is an individual (and needs
    its completion date); at or below, the product is a class with stock.
    """
    if price > catalog.threshold:
        if completed is None:
            raise ReproError(
                "individual products need a completion date (price %.2f "
                "exceeds the %.2f threshold)" % (price, catalog.threshold)
            )
        if quantity != 1:
            raise ReproError("individuals are registered one at a time")
        return catalog.add_individual(name, price, weight, completed)
    return catalog.add_to_line(name, price, weight, quantity)
