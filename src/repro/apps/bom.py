"""The bill-of-materials computation (the paper's closing example).

The paper's outline program::

    function TotalCost(p: Part);
      if p.IsBase then p.PurchasePrice
      else p.ManufacturingCost +
           sum{TotalCost(q.SubPart) * q.Qty | q in p.Components}

"The only difficulty with this is that when a given subpart is used in
more than one way in the manufacture of a larger part, the total cost
will be needlessly recomputed for that subpart.  This will happen when
the parts explosion diagram is not a tree but a directed acyclic graph.
The way out of this is to memoize intermediate results.  In order to do
this we need to attach further fields to the Part type in which to store
these results ...  Even though the Part values in which we are
interested are presumably persistent, there is no need for the
additional information to persist."

Parts are :class:`~repro.persistence.heap.PObject` graphs — persistent
under the intrinsic model — and the memo is a field marked *transient*,
so a commit after a costing run writes no memo data (benchmark E2 and
the tests verify both the speedup and the non-persistence).

:class:`RollUp` generalizes the pattern: the paper notes the real
bill-of-materials task computes cost *and* mass simultaneously, so the
roll-up is parameterized by how base parts and assemblies contribute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Set, Tuple

from repro.errors import ReproError
from repro.persistence.heap import PObject

Component = Tuple[PObject, int]


def make_base_part(
    name: str, purchase_price: float, mass: float = 0.0
) -> PObject:
    """A base (purchased) part: contributes its purchase price."""
    return PObject(
        "Part",
        {
            "Name": name,
            "IsBase": True,
            "PurchasePrice": purchase_price,
            "Mass": mass,
        },
    )


def make_assembly(
    name: str,
    manufacturing_cost: float,
    components: Iterable[Component],
    assembly_mass: float = 0.0,
) -> PObject:
    """A manufactured part with (sub-part, quantity) components."""
    component_objects = []
    for sub_part, qty in components:
        if not isinstance(sub_part, PObject) or sub_part.kind != "Part":
            raise ReproError("component sub-parts must be Part objects")
        if qty <= 0:
            raise ReproError("component quantity must be positive")
        component_objects.append(
            PObject("Component", {"SubPart": sub_part, "Qty": qty})
        )
    return PObject(
        "Part",
        {
            "Name": name,
            "IsBase": False,
            "ManufacturingCost": manufacturing_cost,
            "Mass": assembly_mass,
            "Components": component_objects,
        },
    )


def components_of(part: PObject) -> List[Component]:
    """The (sub-part, quantity) pairs of an assembly (empty for bases)."""
    if part.get("IsBase"):
        return []
    return [(c["SubPart"], c["Qty"]) for c in part.get("Components", [])]


@dataclass
class RollUp:
    """A bottom-up aggregate over the parts explosion.

    ``base_value(part)`` scores a purchased part; ``own_value(part)``
    scores an assembly's own contribution; component contributions are
    ``value(sub) * qty`` summed in.  ``memo_field`` names the transient
    field used by the memoized evaluation.
    """

    name: str
    base_value: Callable[[PObject], float]
    own_value: Callable[[PObject], float]
    memo_field: str = "_memo"


TOTAL_COST = RollUp(
    name="TotalCost",
    base_value=lambda p: p["PurchasePrice"],
    own_value=lambda p: p["ManufacturingCost"],
    memo_field="_TotalCost",
)

TOTAL_MASS = RollUp(
    name="TotalMass",
    base_value=lambda p: p["Mass"],
    own_value=lambda p: p.get("Mass", 0.0),
    memo_field="_TotalMass",
)


@dataclass
class RollUpResult:
    """The value of a roll-up plus how many node visits it took."""

    value: float
    visits: int


def roll_up_naive(part: PObject, roll_up: RollUp = TOTAL_COST) -> RollUpResult:
    """The paper's recursive program, verbatim: no memoization.

    On a DAG explosion the visit count grows with the number of *paths*,
    not the number of parts — exponential in the worst case.
    """
    visits = 0

    def walk(p: PObject) -> float:
        nonlocal visits
        visits += 1
        if p["IsBase"]:
            return roll_up.base_value(p)
        total = roll_up.own_value(p)
        for sub_part, qty in components_of(p):
            total += walk(sub_part) * qty
        return total

    value = walk(part)
    return RollUpResult(value, visits)


def roll_up_memoized(part: PObject, roll_up: RollUp = TOTAL_COST) -> RollUpResult:
    """Memoized roll-up: intermediate results live in transient fields.

    Each part's result is stored in ``roll_up.memo_field``, which is
    marked transient — "there is no need for the additional information
    to persist", and a commit after this run confirms it writes nothing
    extra.  Visits are bounded by the number of distinct parts.
    """
    visits = 0
    field = roll_up.memo_field

    def walk(p: PObject) -> float:
        nonlocal visits
        if field in p:
            return p[field]  # already computed for this part
        visits += 1
        if p["IsBase"]:
            value = roll_up.base_value(p)
        else:
            value = roll_up.own_value(p)
            for sub_part, qty in components_of(p):
                value += walk(sub_part) * qty
        p[field] = value
        p.mark_transient(field)
        return value

    value = walk(part)
    return RollUpResult(value, visits)


def clear_memos(part: PObject, roll_up: RollUp = TOTAL_COST) -> int:
    """Remove memo fields from the whole explosion; returns how many."""
    cleared = 0
    for node in _all_parts(part):
        if roll_up.memo_field in node:
            del node[roll_up.memo_field]
            cleared += 1
    return cleared


def total_cost(part: PObject) -> float:
    """The paper's ``TotalCost``, computed naively."""
    return roll_up_naive(part, TOTAL_COST).value


def total_cost_memoized(part: PObject) -> float:
    """The paper's ``TotalCost`` with transient-field memoization."""
    return roll_up_memoized(part, TOTAL_COST).value


def total_mass(part: PObject) -> float:
    """Total mass of a part — the paper's 'simultaneous' second aggregate."""
    return roll_up_naive(part, TOTAL_MASS).value


# ---------------------------------------------------------------------------
# Explosion-shape diagnostics
# ---------------------------------------------------------------------------


def _all_parts(part: PObject) -> List[PObject]:
    seen: Set[int] = set()
    order: List[PObject] = []

    def walk(p: PObject) -> None:
        if id(p) in seen:
            return
        seen.add(id(p))
        order.append(p)
        for sub_part, __ in components_of(p):
            walk(sub_part)

    walk(part)
    return order


def explosion_size(part: PObject) -> int:
    """The number of distinct parts in the explosion."""
    return len(_all_parts(part))


def is_tree_explosion(part: PObject) -> bool:
    """Is the parts explosion a tree (no shared subparts)?

    When it is, naive and memoized costing visit the same nodes and the
    memo buys nothing — the paper's distinction between tree and DAG.
    """
    seen: Set[int] = set()

    def walk(p: PObject) -> bool:
        for sub_part, __ in components_of(p):
            if id(sub_part) in seen:
                return False
            seen.add(id(sub_part))
            if not walk(sub_part):
                return False
        return True

    return walk(part)
