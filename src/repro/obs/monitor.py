"""Windowed time-series rollups, health verdicts, OpenMetrics export.

The metrics registry (:mod:`repro.obs.metrics`) holds *lifetime*
aggregates: total appends, total commit seconds.  An operator watching
a live system asks different questions — what is the append rate *right
now*, what was the commit p95 *over the last minute*, is the store
healthy — and lifetime totals cannot answer them.  This module is the
monitoring layer that can:

* :class:`TimeSeriesRegistry` — a ring of :class:`Window` rollups fed
  by an explicit :meth:`~TimeSeriesRegistry.tick` sampler.  Each tick
  closes a window holding the counter *deltas* since the previous tick,
  the gauge last-values, and per-histogram digests (count/sum deltas
  plus p50/p95/p99 from :meth:`Histogram.quantile
  <repro.obs.metrics.Histogram.quantile>`).  Rates and latency
  quantiles are then queries over any horizon of retained windows.
  There is no background thread: the sampler runs when something calls
  ``tick()`` (the REPL's ``:watch``, a benchmark loop, a server's
  accept loop), which keeps tests deterministic — the clock is
  injectable too.

* Health checks — :func:`health_report` runs a set of
  :class:`HealthProbe` objects over the registry and journal, each
  returning ok/degraded/failing with a human detail line.  Built-in
  probes cover store replay integrity, heap commit lag, journal drop
  rate, adaptive-store hit rate, statistics staleness, server session
  pressure, and transaction conflict rate.  Non-ok
  verdicts publish ``WARN`` events into the flight recorder, so a
  degraded probe is journaled evidence, not just a console line.

* OpenMetrics v1 text exposition — :func:`render_openmetrics` renders
  the whole registry (counters, gauges, histograms-as-summaries) in
  the format Prometheus-style scrapers ingest;
  :func:`write_metrics_snapshot` drops it to a file and
  :func:`parse_openmetrics` reads the text back (round-trip tests, and
  consumers that want the values without a scraper).

Like the tracer/journal/profiler/slowlog, the process-global monitor
is **off by default** (:data:`CURRENT` is :data:`NOOP`) and costs
nothing until :func:`enable` installs a live registry.
"""

from __future__ import annotations

import re
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.obs import events as _events
from repro.obs import metrics as _metrics

__all__ = [
    "Window",
    "TimeSeriesRegistry",
    "NoOpMonitor",
    "NOOP",
    "CURRENT",
    "DEFAULT_CAPACITY",
    "QUANTILES",
    "get_monitor",
    "set_monitor",
    "enable",
    "disable",
    "tick",
    "OK",
    "DEGRADED",
    "FAILING",
    "ProbeResult",
    "HealthProbe",
    "StoreIntegrityProbe",
    "HeapCommitLagProbe",
    "JournalDropProbe",
    "AdaptiveHitRateProbe",
    "StatsStalenessProbe",
    "ServerSessionsProbe",
    "TxnConflictProbe",
    "default_probes",
    "health_report",
    "overall_verdict",
    "format_health",
    "render_openmetrics",
    "write_metrics_snapshot",
    "parse_openmetrics",
]

DEFAULT_CAPACITY = 240

# The digests each window stores per histogram; the monitor's quantile
# queries are restricted to these (raw samples are not retained).
QUANTILES = {"p50": 0.5, "p95": 0.95, "p99": 0.99}


class Window:
    """One closed sampling window.

    ``counters`` maps names to the *delta* accumulated during the
    window (never negative — a registry reset mid-window restarts the
    baseline, see :meth:`TimeSeriesRegistry.tick`); ``gauges`` holds
    last-values at close; ``histograms`` maps names to digest dicts
    ``{"count", "sum", "p50", "p95", "p99"}`` where count/sum are
    window deltas and the quantiles describe the histogram's retained
    samples at close.
    """

    __slots__ = ("index", "started", "ended", "counters", "gauges", "histograms")

    def __init__(
        self,
        index: int,
        started: float,
        ended: float,
        counters: Dict[str, int],
        gauges: Dict[str, float],
        histograms: Dict[str, Dict[str, float]],
    ):
        self.index = index
        self.started = started
        self.ended = ended
        self.counters = counters
        self.gauges = gauges
        self.histograms = histograms

    @property
    def seconds(self) -> float:
        """The window's duration on the sampling clock."""
        return max(0.0, self.ended - self.started)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-compatible rendering."""
        return {
            "index": self.index,
            "started": self.started,
            "ended": self.ended,
            "seconds": self.seconds,
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def __repr__(self) -> str:
        return "Window(index=%d, seconds=%.3f, counters=%d)" % (
            self.index,
            self.seconds,
            len(self.counters),
        )


class TimeSeriesRegistry:
    """Ring-buffered windowed rollups over a :class:`MetricsRegistry`.

    The baseline snapshot is taken at construction, so the first tick's
    deltas cover activity *since enable*, not since process start.
    ``clock`` is injectable (monotonic seconds) for deterministic
    tests.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[_metrics.MetricsRegistry] = None,
        capacity: int = DEFAULT_CAPACITY,
        clock=time.monotonic,
    ):
        self.registry = registry if registry is not None else _metrics.REGISTRY
        self.capacity = capacity
        self.ticks = 0
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: List[Window] = []
        self._opened = self._clock()
        self._last_counters: Dict[str, int] = self.registry.counters()
        self._last_hist: Dict[str, Tuple[int, float]] = {
            name: (hist.count, hist.total)
            for name, hist in self.registry.histograms().items()
        }

    # -- sampling -----------------------------------------------------------

    def tick(self) -> Window:
        """Close the current window and open the next one.

        Counter and histogram-count deltas that would come out negative
        mean the underlying registry was reset mid-window
        (``reset_metrics()``); the sampler restarts its baseline from
        the post-reset values instead of recording garbage, so retained
        windows survive a reset untouched and the reset window reports
        the activity since the reset.
        """
        now = self._clock()
        with self._lock:
            counters = self.registry.counters()
            deltas: Dict[str, int] = {}
            for name, value in counters.items():
                previous = self._last_counters.get(name, 0)
                deltas[name] = value - previous if value >= previous else value
            self._last_counters = counters
            digests: Dict[str, Dict[str, float]] = {}
            last_hist: Dict[str, Tuple[int, float]] = {}
            for name, hist in self.registry.histograms().items():
                count, total = hist.count, hist.total
                prev_count, prev_total = self._last_hist.get(name, (0, 0.0))
                # Count and sum are both non-decreasing between resets
                # (observations are non-negative wall times), so either
                # going backwards means the registry was reset.
                if count >= prev_count and total >= prev_total:
                    delta_count = count - prev_count
                    delta_sum = total - prev_total
                else:  # registry reset mid-window
                    delta_count, delta_sum = count, total
                digest = {
                    "count": delta_count,
                    "sum": delta_sum,
                }
                for key, q in QUANTILES.items():
                    digest[key] = hist.quantile(q)
                digests[name] = digest
                last_hist[name] = (count, total)
            self._last_hist = last_hist
            window = Window(
                index=self.ticks,
                started=self._opened,
                ended=now,
                counters=deltas,
                gauges=self.registry.gauges(),
                histograms=digests,
            )
            self._windows.append(window)
            if len(self._windows) > self.capacity:
                del self._windows[0]
            self._opened = now
            self.ticks += 1
        return window

    # -- queries ------------------------------------------------------------

    def windows(self, horizon: Optional[float] = None) -> List[Window]:
        """Retained windows, oldest first.

        With ``horizon`` (seconds), only windows whose *end* falls
        within ``horizon`` of the newest window's end.
        """
        with self._lock:
            retained = list(self._windows)
        if horizon is None or not retained:
            return retained
        edge = retained[-1].ended - horizon
        return [w for w in retained if w.ended > edge]

    def delta(self, name: str, horizon: Optional[float] = None) -> int:
        """The counter's total delta over the horizon's windows."""
        return sum(w.counters.get(name, 0) for w in self.windows(horizon))

    def rate(self, name: str, horizon: Optional[float] = None) -> float:
        """The counter's per-second rate over the horizon's windows
        (0.0 when no time is covered)."""
        covered = self.windows(horizon)
        seconds = sum(w.seconds for w in covered)
        if seconds <= 0.0:
            return 0.0
        return sum(w.counters.get(name, 0) for w in covered) / seconds

    def gauge(self, name: str) -> Optional[float]:
        """The gauge's value in the newest window (``None`` before the
        first tick or for an unknown gauge)."""
        retained = self.windows()
        if not retained:
            return None
        return retained[-1].gauges.get(name)

    def quantile(
        self, name: str, q: float, horizon: Optional[float] = None
    ) -> float:
        """The histogram's ``q``-quantile over the horizon.

        Windows only retain the p50/p95/p99 digests, so ``q`` must be
        one of ``0.5 / 0.95 / 0.99``; the answer is the count-weighted
        mean of the per-window digests (0.0 when no window observed the
        histogram).
        """
        key = None
        for label, value in QUANTILES.items():
            if abs(value - q) < 1e-9:
                key = label
        if key is None:
            raise ValueError(
                "monitor digests hold p50/p95/p99 only, got q=%r" % (q,)
            )
        weighted = 0.0
        count = 0
        for window in self.windows(horizon):
            digest = window.histograms.get(name)
            if digest and digest["count"] > 0:
                weighted += digest[key] * digest["count"]
                count += digest["count"]
        return weighted / count if count else 0.0

    def clear(self) -> None:
        """Drop retained windows (the baseline stays current)."""
        with self._lock:
            self._windows = []

    def __len__(self) -> int:
        return len(self._windows)

    # -- rendering ----------------------------------------------------------

    def format(self, horizon: Optional[float] = None, top: int = 8) -> str:
        """The ``:watch`` view: rates, latency digests, gauges.

        ``top`` bounds the counters section to the busiest names so a
        terminal refresh stays one screenful.
        """
        covered = self.windows(horizon)
        if not covered:
            return "(no windows sampled — call tick())"
        seconds = sum(w.seconds for w in covered)
        lines = [
            "monitor: %d window(s) covering %.2fs (capacity %d)"
            % (len(covered), seconds, self.capacity)
        ]
        totals: Dict[str, int] = {}
        for window in covered:
            for name, value in window.counters.items():
                if value:
                    totals[name] = totals.get(name, 0) + value
        if totals:
            lines.append("rates (per second):")
            busiest = sorted(totals.items(), key=lambda kv: -kv[1])[:top]
            for name, total in sorted(busiest):
                per_second = total / seconds if seconds > 0 else 0.0
                lines.append(
                    "  %-40s %10.1f/s  (Δ%d)" % (name, per_second, total)
                )
        latency: Dict[str, int] = {}
        for window in covered:
            for name, digest in window.histograms.items():
                if digest["count"] > 0:
                    latency[name] = latency.get(name, 0) + int(digest["count"])
        if latency:
            lines.append("histograms (latency in ms):")
            for name in sorted(latency):
                # Duration histograms read better in milliseconds;
                # dimensionless ones (drift ratios) stay raw.
                scale = 1000.0 if name.endswith(".seconds") else 1.0
                lines.append(
                    "  %-40s n=%-6d p50=%.3f p95=%.3f p99=%.3f"
                    % (
                        name,
                        latency[name],
                        self.quantile(name, 0.5, horizon) * scale,
                        self.quantile(name, 0.95, horizon) * scale,
                        self.quantile(name, 0.99, horizon) * scale,
                    )
                )
        gauges = covered[-1].gauges
        nonzero = {name: v for name, v in gauges.items() if v}
        if nonzero:
            lines.append("gauges:")
            for name in sorted(nonzero):
                lines.append("  %-40s %g" % (name, nonzero[name]))
        return "\n".join(lines)


class NoOpMonitor:
    """The disabled monitor: one shared instance, zero sampling."""

    enabled = False
    capacity = 0
    ticks = 0

    def tick(self) -> None:
        return None

    def windows(self, horizon: Optional[float] = None) -> List[Window]:
        return []

    def delta(self, name: str, horizon: Optional[float] = None) -> int:
        return 0

    def rate(self, name: str, horizon: Optional[float] = None) -> float:
        return 0.0

    def gauge(self, name: str) -> Optional[float]:
        return None

    def quantile(
        self, name: str, q: float, horizon: Optional[float] = None
    ) -> float:
        return 0.0

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def format(self, horizon: Optional[float] = None, top: int = 8) -> str:
        return "(monitor is off — :watch <seconds> enables it)"


NOOP = NoOpMonitor()

# The process-global monitor; like the tracer, read freshly per use.
CURRENT = NOOP  # type: object


def get_monitor():
    """The process-global monitor (a :class:`TimeSeriesRegistry` or NOOP)."""
    return CURRENT


def set_monitor(monitor) -> None:
    """Install ``monitor`` as the process-global monitor (``None`` → NOOP)."""
    global CURRENT
    CURRENT = monitor if monitor is not None else NOOP


def enable(
    capacity: Optional[int] = None,
    registry: Optional[_metrics.MetricsRegistry] = None,
    clock=None,
) -> TimeSeriesRegistry:
    """Turn the monitor on; returns the active registry.

    Installs a fresh :class:`TimeSeriesRegistry` when the monitor was
    off; keeps the current one (and its windows) when already on.
    """
    global CURRENT
    if not isinstance(CURRENT, TimeSeriesRegistry):
        CURRENT = TimeSeriesRegistry(
            registry=registry,
            capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
            clock=clock if clock is not None else time.monotonic,
        )
    return CURRENT


def disable() -> None:
    """Turn the monitor off (retained windows are dropped with it)."""
    global CURRENT
    CURRENT = NOOP


def tick():
    """Sample one window on the process-global monitor."""
    return CURRENT.tick()


# ---------------------------------------------------------------------------
# Health checks
# ---------------------------------------------------------------------------

OK = "ok"
DEGRADED = "degraded"
FAILING = "failing"

_VERDICT_RANK = {OK: 0, DEGRADED: 1, FAILING: 2}


class ProbeResult:
    """One probe's verdict with its human-readable evidence."""

    __slots__ = ("probe", "verdict", "detail", "value")

    def __init__(
        self, probe: str, verdict: str, detail: str, value: float = 0.0
    ):
        if verdict not in _VERDICT_RANK:
            raise ValueError("unknown verdict %r" % (verdict,))
        self.probe = probe
        self.verdict = verdict
        self.detail = detail
        self.value = value

    def to_dict(self) -> Dict[str, object]:
        return {
            "probe": self.probe,
            "verdict": self.verdict,
            "detail": self.detail,
            "value": self.value,
        }

    def __repr__(self) -> str:
        return "ProbeResult(%r, %r)" % (self.probe, self.verdict)


class HealthProbe:
    """Base class: a named check over the registry and journal."""

    name = "probe"

    def check(self, registry, journal) -> ProbeResult:
        raise NotImplementedError

    def _result(
        self, verdict: str, detail: str, value: float = 0.0
    ) -> ProbeResult:
        return ProbeResult(self.name, verdict, detail, value)


class StoreIntegrityProbe(HealthProbe):
    """Replay anomalies in the log store.

    Checksum failures mean a record's payload silently changed on disk
    — failing outright.  Torn records and truncated tails are the
    expected crash signature (the replay already skipped them), so they
    only degrade.
    """

    name = "store.integrity"

    def check(self, registry, journal) -> ProbeResult:
        checksum = registry.value("store.checksum_failures")
        torn = registry.value("store.torn_records")
        truncated = registry.value("store.truncated_tails")
        replays = registry.value("store.replays")
        if checksum:
            return self._result(
                FAILING,
                "%d checksum failure(s) across %d replay(s)"
                % (checksum, replays),
                float(checksum),
            )
        if torn or truncated:
            return self._result(
                DEGRADED,
                "%d torn / %d truncated record(s) across %d replay(s)"
                % (torn, truncated, replays),
                float(torn + truncated),
            )
        return self._result(
            OK, "no replay anomalies (%d replay(s))" % replays
        )


class HeapCommitLagProbe(HealthProbe):
    """Commit latency of the intrinsic heap (p95 over retained samples)."""

    name = "heap.commit_lag"

    def __init__(
        self, degraded_seconds: float = 0.1, failing_seconds: float = 1.0
    ):
        self.degraded_seconds = degraded_seconds
        self.failing_seconds = failing_seconds

    def check(self, registry, journal) -> ProbeResult:
        hist = registry.histograms().get("heap.commit.seconds")
        if hist is None or hist.count == 0:
            return self._result(OK, "no commits observed")
        p95 = hist.quantile(0.95)
        detail = "commit p95 %.3fms over %d commit(s)" % (
            p95 * 1000.0,
            hist.count,
        )
        if p95 >= self.failing_seconds:
            return self._result(FAILING, detail, p95)
        if p95 >= self.degraded_seconds:
            return self._result(DEGRADED, detail, p95)
        return self._result(OK, detail, p95)


class JournalDropProbe(HealthProbe):
    """Eviction pressure on the flight recorder's ring.

    ``journal.total - len(journal)`` is how many events the bounded
    ring has already discarded; once that exceeds ``degraded_fraction``
    of everything published, the journal is rotating too fast to be
    useful evidence and the capacity needs raising.
    """

    name = "journal.drops"

    def __init__(self, degraded_fraction: float = 0.1):
        self.degraded_fraction = degraded_fraction

    def check(self, registry, journal) -> ProbeResult:
        if not journal.enabled:
            return self._result(OK, "journal is off")
        total = getattr(journal, "total", 0)
        dropped = total - len(journal)
        fraction = dropped / total if total else 0.0
        detail = "%d of %d event(s) evicted (%.0f%%)" % (
            dropped,
            total,
            fraction * 100.0,
        )
        if fraction >= self.degraded_fraction:
            return self._result(DEGRADED, detail, fraction)
        return self._result(OK, detail, fraction)


class AdaptiveHitRateProbe(HealthProbe):
    """Evidence coverage of the adaptive selectivity store.

    A low hit rate after a warm-up's worth of lookups means the planner
    keeps asking about predicates the store holds no evidence for —
    estimates are running static and the feedback loop is not helping.
    """

    name = "stats.adaptive_hits"

    def __init__(self, min_lookups: int = 20, degraded_rate: float = 0.2):
        self.min_lookups = min_lookups
        self.degraded_rate = degraded_rate

    def check(self, registry, journal) -> ProbeResult:
        hits = registry.value("stats.adaptive.hits")
        misses = registry.value("stats.adaptive.misses")
        lookups = hits + misses
        if lookups < self.min_lookups:
            return self._result(
                OK, "warming up (%d lookup(s))" % lookups, float(lookups)
            )
        rate = hits / lookups
        detail = "hit rate %.0f%% over %d lookup(s)" % (rate * 100.0, lookups)
        if rate < self.degraded_rate:
            return self._result(DEGRADED, detail, rate)
        return self._result(OK, detail, rate)


class StatsStalenessProbe(HealthProbe):
    """Staleness of planner statistics.

    With a catalog in hand, counts relations whose ``stats_drift`` has
    reached the catalog's re-analyze threshold.  Without one, falls
    back to the ``query.estimate.max_drift`` gauge the last EXPLAIN
    ANALYZE published — a drift ratio past ``degraded_drift`` means the
    optimizer's cardinalities no longer resemble reality.
    """

    name = "stats.staleness"

    def __init__(self, degraded_drift: float = 4.0, catalog=None):
        self.degraded_drift = degraded_drift
        self.catalog = catalog

    def check(self, registry, journal) -> ProbeResult:
        catalog = self.catalog
        if catalog is not None and hasattr(catalog, "stats_drift"):
            threshold = getattr(catalog, "reanalyze_threshold", 1) or 1
            stale = [
                name
                for name in sorted(catalog)
                if (catalog.stats_drift(name) or 0) >= threshold
            ]
            if stale:
                return self._result(
                    DEGRADED,
                    "stale statistics: %s" % ", ".join(stale),
                    float(len(stale)),
                )
            return self._result(OK, "catalog statistics current")
        drift = registry.gauges().get("query.estimate.max_drift", 0.0)
        detail = "last EXPLAIN ANALYZE max drift %.2fx" % drift
        if drift >= self.degraded_drift:
            return self._result(DEGRADED, detail, drift)
        return self._result(OK, detail, drift)


class ServerSessionsProbe(HealthProbe):
    """Session pressure on the database server's broker.

    Reads the gauges and counters :mod:`repro.server.broker` publishes:
    ``server.sessions.active`` / ``server.sessions.limit`` and the
    accepted/rejected connection totals.  A rejected-connection fraction
    past ``degraded_fraction`` means clients are being turned away (the
    accept queue overflowed); sitting at the connection limit degrades
    too, since the *next* connection will queue or bounce.  With no
    server in the process the probe reports ok.
    """

    name = "server.sessions"

    def __init__(self, degraded_fraction: float = 0.05):
        self.degraded_fraction = degraded_fraction

    def check(self, registry, journal) -> ProbeResult:
        gauges = registry.gauges()
        limit = int(gauges.get("server.sessions.limit", 0.0))
        active = int(gauges.get("server.sessions.active", 0.0))
        accepted = registry.value("server.connections.accepted")
        rejected = registry.value("server.connections.rejected")
        attempts = accepted + rejected
        if not limit and not attempts:
            return self._result(OK, "no server running")
        fraction = rejected / attempts if attempts else 0.0
        detail = (
            "%d of %d session(s) active; %d of %d connection(s)"
            " rejected (%.0f%%)"
            % (active, limit, rejected, attempts, fraction * 100.0)
        )
        if rejected and fraction >= self.degraded_fraction:
            return self._result(DEGRADED, detail, fraction)
        if limit and active >= limit:
            return self._result(
                DEGRADED, "at connection limit: %s" % detail, float(active)
            )
        return self._result(OK, detail, float(active))


class TxnConflictProbe(HealthProbe):
    """Contention in the MVCC transaction layer.

    Counts commit attempts (``txn.commit`` + ``txn.conflict``) and the
    fraction lost to first-committer-wins conflicts.  Occasional
    conflicts are the optimistic protocol working as designed; a rate
    past ``degraded_rate`` over a meaningful number of attempts means
    sessions keep writing the same handles and their retry loops are
    burning work — the workload wants partitioning (or shorter
    transactions), not more retries.  See TRANSACTIONS.md.
    """

    name = "txn.conflict_rate"

    def __init__(self, min_attempts: int = 20, degraded_rate: float = 0.25):
        self.min_attempts = min_attempts
        self.degraded_rate = degraded_rate

    def check(self, registry, journal) -> ProbeResult:
        commits = registry.value("txn.commit")
        conflicts = registry.value("txn.conflict")
        attempts = commits + conflicts
        if not attempts:
            return self._result(OK, "no transactions committed")
        rate = conflicts / attempts
        detail = "%d conflict(s) in %d commit attempt(s) (%.0f%%)" % (
            conflicts,
            attempts,
            rate * 100.0,
        )
        if attempts >= self.min_attempts and rate >= self.degraded_rate:
            return self._result(DEGRADED, detail, rate)
        return self._result(OK, detail, rate)


class RequestTracingProbe(HealthProbe):
    """Tracing overhead pressure on session requests.

    Sessions count every completed request (``session.requests``) and
    every request that carried harvested span trees
    (``session.requests.traced``).  Tracing is a debugging instrument,
    not a steady state: when nearly every request over a meaningful
    volume is paying for span recording, someone left ``:trace on``
    against production traffic — degraded, with the fraction as
    evidence.  No requests (or no tracing) reports ok.
    """

    name = "obs.tracing"

    def __init__(self, min_requests: int = 100, degraded_fraction: float = 0.9):
        self.min_requests = min_requests
        self.degraded_fraction = degraded_fraction

    def check(self, registry, journal) -> ProbeResult:
        requests = registry.value("session.requests")
        traced = registry.value("session.requests.traced")
        if not traced:
            return self._result(
                OK, "no traced requests (%d request(s))" % requests
            )
        fraction = traced / requests if requests else 0.0
        detail = "%d of %d request(s) traced (%.0f%%)" % (
            traced,
            requests,
            fraction * 100.0,
        )
        if requests >= self.min_requests and fraction >= self.degraded_fraction:
            return self._result(
                DEGRADED, "tracing left on: %s" % detail, fraction
            )
        return self._result(OK, detail, fraction)


def default_probes(catalog=None) -> List[HealthProbe]:
    """The built-in probe set (``catalog`` sharpens the staleness
    probe when given)."""
    return [
        StoreIntegrityProbe(),
        HeapCommitLagProbe(),
        JournalDropProbe(),
        AdaptiveHitRateProbe(),
        StatsStalenessProbe(catalog=catalog),
        ServerSessionsProbe(),
        TxnConflictProbe(),
        RequestTracingProbe(),
    ]


def health_report(
    probes: Optional[List[HealthProbe]] = None,
    registry: Optional[_metrics.MetricsRegistry] = None,
    journal=None,
    catalog=None,
    publish: bool = True,
) -> List[ProbeResult]:
    """Run every probe; returns the results in probe order.

    A probe that raises is reported as *failing* rather than taking the
    whole report down — a health check must never be the thing that
    crashes.  With ``publish`` (the default), non-ok verdicts land in
    the journal as ``WARN health.<probe>`` events.
    """
    registry = registry if registry is not None else _metrics.REGISTRY
    journal = journal if journal is not None else _events.CURRENT
    if probes is None:
        probes = default_probes(catalog=catalog)
    results: List[ProbeResult] = []
    for probe in probes:
        try:
            result = probe.check(registry, journal)
        except Exception as exc:  # noqa: BLE001 — verdict, not crash
            result = ProbeResult(
                probe.name, FAILING, "probe error: %s" % exc
            )
        results.append(result)
        if publish and result.verdict != OK and journal.enabled:
            journal.publish(
                "WARN",
                "health",
                result.probe,
                verdict=result.verdict,
                detail=result.detail,
                value=result.value,
            )
    return results


def overall_verdict(results: List[ProbeResult]) -> str:
    """The worst verdict across the results (``ok`` when empty)."""
    worst = OK
    for result in results:
        if _VERDICT_RANK[result.verdict] > _VERDICT_RANK[worst]:
            worst = result.verdict
    return worst


def format_health(results: List[ProbeResult]) -> str:
    """The ``:health`` table: overall verdict, then one row per probe."""
    lines = ["health: %s" % overall_verdict(results)]
    for result in results:
        lines.append(
            "  %-9s %-22s %s" % (result.verdict, result.probe, result.detail)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# OpenMetrics v1 text exposition
# ---------------------------------------------------------------------------

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """An OpenMetrics-legal metric name (dots become underscores)."""
    sanitized = _NAME_OK.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = "_" + sanitized
    return sanitized


def _number(value: float) -> str:
    """A float rendered so ``float()`` reads back the same value."""
    return repr(float(value))


def render_openmetrics(
    registry: Optional[_metrics.MetricsRegistry] = None,
) -> str:
    """The registry as OpenMetrics v1 text (``# EOF``-terminated).

    Counters expose as ``<name>_total``, gauges as-is, histograms as
    summaries: ``{quantile="0.5|0.95|0.99"}`` sample lines over the
    retained window plus ``_count``/``_sum`` lifetime aggregates.
    """
    registry = registry if registry is not None else _metrics.REGISTRY
    lines: List[str] = []
    for name, value in registry.counters().items():
        om = _metric_name(name)
        lines.append("# TYPE %s counter" % om)
        lines.append("%s_total %d" % (om, value))
    for name, value in registry.gauges().items():
        om = _metric_name(name)
        lines.append("# TYPE %s gauge" % om)
        lines.append("%s %s" % (om, _number(value)))
    for name, hist in registry.histograms().items():
        om = _metric_name(name)
        lines.append("# TYPE %s summary" % om)
        for q in sorted(QUANTILES.values()):
            lines.append(
                '%s{quantile="%g"} %s' % (om, q, _number(hist.quantile(q)))
            )
        lines.append("%s_count %d" % (om, hist.count))
        lines.append("%s_sum %s" % (om, _number(hist.total)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_metrics_snapshot(
    path: str, registry: Optional[_metrics.MetricsRegistry] = None
) -> str:
    """Write :func:`render_openmetrics` to ``path``; returns ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_openmetrics(registry))
    return path


_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{quantile="(?P<quantile>[^"]+)"\})?'
    r"\s+(?P<value>\S+)$"
)


def parse_openmetrics(text: str) -> Dict[str, Dict[str, object]]:
    """Read OpenMetrics text back into plain dicts.

    Returns ``{"counters": {name: int}, "gauges": {name: float},
    "summaries": {name: {"quantiles": {q: v}, "count": int, "sum":
    float}}, "eof": bool}`` keyed by the *exposed* (sanitized) names.
    Only the subset :func:`render_openmetrics` emits is understood —
    this is the round-trip reader, not a scraper.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    summaries: Dict[str, Dict[str, object]] = {}
    types: Dict[str, str] = {}
    saw_eof = False
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            __, __, rest = line.partition("# TYPE ")
            name, __, kind = rest.partition(" ")
            types[name] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if not match:
            continue
        name = match.group("name")
        quantile = match.group("quantile")
        value = match.group("value")
        if quantile is not None:
            summary = summaries.setdefault(
                name, {"quantiles": {}, "count": 0, "sum": 0.0}
            )
            summary["quantiles"][float(quantile)] = float(value)
        elif name.endswith("_count") and types.get(name[:-6]) == "summary":
            summary = summaries.setdefault(
                name[:-6], {"quantiles": {}, "count": 0, "sum": 0.0}
            )
            summary["count"] = int(value)
        elif name.endswith("_sum") and types.get(name[:-4]) == "summary":
            summary = summaries.setdefault(
                name[:-4], {"quantiles": {}, "count": 0, "sum": 0.0}
            )
            summary["sum"] = float(value)
        elif name.endswith("_total") and types.get(name[:-6]) == "counter":
            counters[name[:-6]] = int(value)
        elif types.get(name) == "gauge":
            gauges[name] = float(value)
    return {
        "counters": counters,
        "gauges": gauges,
        "summaries": summaries,
        "eof": saw_eof,
    }
