"""A deterministic execution profiler for query plans and the kernel.

Sampling profilers answer "where is the process hot?"; this one
answers the database question: *which operator, across the whole
workload, cost what* — wall time, rows produced, and (for joins) how
many candidate pairs the kernel tried versus pruned.  It is
deterministic: every instrumented call records, nothing is sampled, so
two identical runs profile identically.

Two instrumentation points feed it:

* :meth:`repro.core.query.Plan.execute` attributes each operator's own
  wall time (children excluded), rows out, and the pair-counter deltas
  its ``_apply`` caused, keyed by the operator's ``label()``;
* :meth:`repro.core.relation.GeneralizedRelation.join` attributes the
  cochain kernel's work (pairs tried/pruned) under ``relation.join``.

Like the tracer and journal, the profiler is process-global and off by
default — instrumented code guards on ``CURRENT.enabled`` so the
disabled cost is one attribute check::

    profiler = profile.enable()
    for query in workload:
        optimize(query, catalog).execute(catalog)
    print(profile.profile_report(top=10))

The report is a top-N table by total self time; ``snapshot()`` returns
the same data as JSON-compatible dicts for the exporters.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "OpProfile",
    "Profiler",
    "NoOpProfiler",
    "NOOP",
    "CURRENT",
    "get_profiler",
    "set_profiler",
    "enable",
    "disable",
    "profile_report",
]


class OpProfile:
    """Accumulated cost of one operator label across a workload."""

    __slots__ = ("label", "calls", "seconds", "rows_out", "pairs_tried", "pairs_pruned")

    def __init__(self, label: str):
        self.label = label
        self.calls = 0
        self.seconds = 0.0
        self.rows_out = 0
        self.pairs_tried = 0
        self.pairs_pruned = 0

    @property
    def pruning_ratio(self) -> float:
        """Pruned pairs over logical pairs (0.0 when no pairs seen)."""
        logical = self.pairs_tried + self.pairs_pruned
        return self.pairs_pruned / logical if logical else 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-compatible rendering."""
        return {
            "label": self.label,
            "calls": self.calls,
            "seconds": self.seconds,
            "rows_out": self.rows_out,
            "pairs_tried": self.pairs_tried,
            "pairs_pruned": self.pairs_pruned,
        }

    def __repr__(self) -> str:
        return "OpProfile(%r, calls=%d, seconds=%g)" % (
            self.label,
            self.calls,
            self.seconds,
        )


class Profiler:
    """The recording profiler: per-label aggregates behind one lock."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self.clock = clock
        self._lock = threading.Lock()
        self._ops: Dict[str, OpProfile] = {}

    def record(
        self,
        label: str,
        seconds: float,
        rows_out: int = 0,
        pairs_tried: int = 0,
        pairs_pruned: int = 0,
    ) -> None:
        """Fold one measured call into the label's aggregate."""
        with self._lock:
            op = self._ops.get(label)
            if op is None:
                op = self._ops[label] = OpProfile(label)
            op.calls += 1
            op.seconds += seconds
            op.rows_out += rows_out
            op.pairs_tried += pairs_tried
            op.pairs_pruned += pairs_pruned

    def ops(self) -> List[OpProfile]:
        """All aggregates, most expensive (total self seconds) first."""
        with self._lock:
            ordered = list(self._ops.values())
        ordered.sort(key=lambda op: (-op.seconds, op.label))
        return ordered

    def snapshot(self) -> List[Dict[str, object]]:
        """JSON-compatible aggregates, most expensive first."""
        return [op.to_dict() for op in self.ops()]

    def clear(self) -> None:
        """Drop all aggregates."""
        with self._lock:
            self._ops = {}

    def report(self, top: int = 10) -> str:
        """The top-N table: self time, calls, rows, pruning ratio."""
        ordered = self.ops()[: top if top else None]
        if not ordered:
            return "(no profiled operators — run queries with :profile on)"
        lines = [
            "%-40s %8s %10s %10s %12s %8s"
            % ("operator", "calls", "self(ms)", "rows_out", "pairs_tried", "pruned")
        ]
        for op in ordered:
            logical = op.pairs_tried + op.pairs_pruned
            pruned_text = (
                "%.0f%%" % (100.0 * op.pruning_ratio) if logical else "-"
            )
            lines.append(
                "%-40s %8d %10.3f %10d %12d %8s"
                % (
                    op.label[:40],
                    op.calls,
                    op.seconds * 1000.0,
                    op.rows_out,
                    op.pairs_tried,
                    pruned_text,
                )
            )
        return "\n".join(lines)


class NoOpProfiler:
    """The disabled profiler: shared singleton, records nothing."""

    enabled = False

    def record(self, label, seconds, rows_out=0, pairs_tried=0, pairs_pruned=0):
        pass

    def ops(self) -> List[OpProfile]:
        return []

    def snapshot(self) -> List[Dict[str, object]]:
        return []

    def clear(self) -> None:
        pass

    def report(self, top: int = 10) -> str:
        return "(profiler is off — :profile on)"


NOOP = NoOpProfiler()

# The process-global profiler, read freshly per operation.
CURRENT = NOOP  # type: object


def get_profiler():
    """The process-global profiler (a :class:`Profiler` or NOOP)."""
    return CURRENT


def set_profiler(profiler) -> None:
    """Install ``profiler`` as the global profiler (``None`` → NOOP)."""
    global CURRENT
    CURRENT = profiler if profiler is not None else NOOP


def enable() -> Profiler:
    """Turn profiling on; keeps an already-recording profiler."""
    global CURRENT
    if not isinstance(CURRENT, Profiler):
        CURRENT = Profiler()
    return CURRENT


def disable() -> None:
    """Turn profiling off (back to the no-op singleton)."""
    global CURRENT
    CURRENT = NOOP


def profile_report(top: int = 10) -> str:
    """The global profiler's top-N report."""
    return CURRENT.report(top)
