"""The slow-query log: a bounded ring of queries that blew a budget.

Production monitoring needs more than aggregates: when the p95 drifts
up, the operator's next question is *which queries* — and by then the
offending runs are gone unless something captured them as they
happened.  The :class:`SlowLog` is that capture: every outermost
``Plan.execute`` / EXPLAIN ANALYZE / DBPL evaluation is wall-clocked,
and any run exceeding a configurable threshold lands in a bounded ring
as a :class:`SlowQueryEntry` carrying the query repr, a condensed plan
summary, the estimate drift (when EXPLAIN ANALYZE measured one), the
join pairs tried/pruned during the run, the trace-span ``seq`` so the
entry can be matched to its span in an exported trace file, and — when
the run happened inside a session request — the exact ``request_id``
from the per-thread request context, the same key wide events
(:mod:`repro.obs.wide`) and merged trace exports carry.

Like the tracer, journal, and profiler, the log is process-global and
**off by default**: instrumented sites pay one attribute check
(``slowlog.CURRENT.enabled``) until :func:`enable` flips the switch
(the REPL's ``:slow on``).  Recording is *outermost-only* — a plan
node's recursive ``execute`` calls share one entry — tracked with a
per-thread depth counter so threaded workloads don't cross-talk.

Every recorded entry also publishes a ``WARN slowlog.slow_query``
event into the flight recorder, so slow queries appear on the same
timeline as store anomalies and heap commits, survive
``write_journal``/``read_journal`` round-trips, and show up in
``:events``.

Usage::

    from repro.obs import slowlog

    slowlog.enable(threshold_ms=50.0)
    ...run queries...
    print(slowlog.slowlog_report())
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Union

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace

__all__ = [
    "SlowQueryEntry",
    "SlowLog",
    "NoOpSlowLog",
    "NOOP",
    "CURRENT",
    "DEFAULT_THRESHOLD_MS",
    "DEFAULT_CAPACITY",
    "get_slowlog",
    "set_slowlog",
    "enable",
    "disable",
    "set_threshold",
    "slowlog_report",
]

DEFAULT_THRESHOLD_MS = 100.0
DEFAULT_CAPACITY = 256

# Query/plan text is stored truncated: the log is a ring resident for
# the process lifetime, and a pathological generated query should not
# pin megabytes of source.
_TEXT_CAP = 200

Lazy = Union[str, Callable[[], str], None]


def _resolve(text: Lazy) -> Optional[str]:
    """Force a lazy string (callables are only evaluated on the slow
    path, so fast queries never pay for plan rendering)."""
    if text is None:
        return None
    if callable(text):
        text = text()
    text = " ".join(str(text).split())
    if len(text) > _TEXT_CAP:
        text = text[: _TEXT_CAP - 1] + "…"
    return text


class SlowQueryEntry:
    """One captured slow run.

    ``kind`` says which instrumented surface recorded it: ``"plan"``
    (``Plan.execute``), ``"explain"`` (EXPLAIN ANALYZE, the only kind
    that carries a measured ``drift``), or ``"lang"`` (a DBPL
    ``Interpreter.run``).  ``span`` is the ``Span.seq`` of the most
    recently opened trace span when tracing was live, else ``None``.
    ``request`` is the exact request id from the per-thread request
    context (:func:`repro.obs.trace.current_request_id`) when the run
    happened inside a session request — the precise correlation key
    wide events and exported traces share.
    """

    __slots__ = (
        "seq",
        "wall",
        "kind",
        "query",
        "plan",
        "elapsed_ms",
        "threshold_ms",
        "drift",
        "pairs_tried",
        "pairs_pruned",
        "span",
        "request",
    )

    def __init__(
        self,
        seq: int,
        kind: str,
        query: Optional[str],
        elapsed_ms: float,
        threshold_ms: float,
        plan: Optional[str] = None,
        drift: Optional[float] = None,
        pairs_tried: int = 0,
        pairs_pruned: int = 0,
        span: Optional[int] = None,
        request: Optional[str] = None,
        wall: Optional[float] = None,
    ):
        self.seq = seq
        self.wall = wall if wall is not None else time.time()
        self.kind = kind
        self.query = query
        self.plan = plan
        self.elapsed_ms = elapsed_ms
        self.threshold_ms = threshold_ms
        self.drift = drift
        self.pairs_tried = pairs_tried
        self.pairs_pruned = pairs_pruned
        self.span = span
        self.request = request

    def to_dict(self) -> Dict[str, object]:
        """A JSON-compatible rendering (JSONL exports, tests)."""
        return {
            "seq": self.seq,
            "wall": self.wall,
            "kind": self.kind,
            "query": self.query,
            "plan": self.plan,
            "elapsed_ms": self.elapsed_ms,
            "threshold_ms": self.threshold_ms,
            "drift": self.drift,
            "pairs_tried": self.pairs_tried,
            "pairs_pruned": self.pairs_pruned,
            "span": self.span,
            "request": self.request,
        }

    def format(self) -> str:
        """One table row (the ``:slow`` rendering)."""
        drift_text = "%.2f" % self.drift if self.drift is not None else "-"
        span_text = "#%d" % self.span if self.span is not None else "-"
        return "%-5d %-7s %10.3f %6s %7d/%-7d %-6s %-12s %s" % (
            self.seq,
            self.kind,
            self.elapsed_ms,
            drift_text,
            self.pairs_tried,
            self.pairs_pruned,
            span_text,
            self.request if self.request is not None else "-",
            self.query if self.query is not None else "-",
        )

    def __repr__(self) -> str:
        return "SlowQueryEntry(seq=%d, kind=%r, elapsed_ms=%.3f)" % (
            self.seq,
            self.kind,
            self.elapsed_ms,
        )


_REPORT_HEADER = "%-5s %-7s %10s %6s %7s/%-7s %-6s %-12s %s" % (
    "seq", "kind", "ms", "drift", "tried", "pruned", "span", "request",
    "query",
)


class _Measure:
    """Context manager timing one outermost run (see
    :meth:`SlowLog.measure`)."""

    __slots__ = ("_log", "_kind", "_query", "_plan", "_started", "_pairs")

    def __init__(self, log: "SlowLog", kind: str, query: Lazy, plan: Lazy):
        self._log = log
        self._kind = kind
        self._query = query
        self._plan = plan

    def __enter__(self) -> "_Measure":
        local = self._log._local
        local.depth = getattr(local, "depth", 0) + 1
        self._pairs = self._log._pairs_snapshot()
        self._started = self._log._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        elapsed = self._log._clock() - self._started
        local = self._log._local
        local.depth = getattr(local, "depth", 1) - 1
        if self._log.would_record(elapsed):
            before_tried, before_pruned = self._pairs
            after_tried, after_pruned = self._log._pairs_snapshot()
            self._log.record(
                self._kind,
                _resolve(self._query),
                elapsed,
                plan=_resolve(self._plan),
                pairs_tried=after_tried - before_tried,
                pairs_pruned=after_pruned - before_pruned,
            )
        return False


class _NoOpMeasure:
    __slots__ = ()

    def __enter__(self) -> "_NoOpMeasure":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


_NOOP_MEASURE = _NoOpMeasure()


class SlowLog:
    """A bounded ring of :class:`SlowQueryEntry`, newest last.

    ``total`` counts every entry ever recorded, so ``total -
    len(log)`` is the number evicted — the same accounting the event
    journal uses for its drop rate.  ``clock`` is injectable so tests
    can force a "slow" query deterministically.
    """

    enabled = True

    def __init__(
        self,
        threshold_ms: float = DEFAULT_THRESHOLD_MS,
        capacity: int = DEFAULT_CAPACITY,
        clock=time.perf_counter,
    ):
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        self.total = 0
        self._clock = clock
        self._ring: List[SlowQueryEntry] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- instrumentation hooks ----------------------------------------------

    def outermost(self) -> bool:
        """Whether no :meth:`measure` block is open on this thread."""
        return getattr(self._local, "depth", 0) == 0

    def measure(self, kind: str, query: Lazy, plan: Lazy = None) -> _Measure:
        """Time one run; record it if it exceeds the threshold.

        ``query`` and ``plan`` may be zero-argument callables — they are
        only evaluated when the run actually was slow, so the fast path
        never renders plan text.
        """
        return _Measure(self, kind, query, plan)

    def would_record(self, seconds: float) -> bool:
        """Whether a run of ``seconds`` wall time crosses the threshold."""
        return seconds * 1000.0 >= self.threshold_ms

    def record(
        self,
        kind: str,
        query: Optional[str],
        elapsed_seconds: float,
        plan: Optional[str] = None,
        drift: Optional[float] = None,
        pairs_tried: int = 0,
        pairs_pruned: int = 0,
        span: Optional[int] = None,
        request: Optional[str] = None,
    ) -> SlowQueryEntry:
        """Append one entry (callers have already checked the threshold).

        ``request`` defaults to the recording thread's request context
        (:func:`repro.obs.trace.current_request_id`) — an *exact*
        correlation key: the session stamped it before dispatching the
        query, so the entry matches its wide event and exported spans
        precisely.  ``span`` (the best-effort most-recently-opened
        span ``seq``) is kept alongside for trace-file lookups when
        tracing was live.  Publishes ``WARN slowlog.slow_query`` into
        the journal and bumps the ``slowlog.recorded`` counter.
        """
        if request is None:
            request = _trace.current_request_id()
        if span is None:
            tracer = _trace.CURRENT
            if tracer.enabled and tracer.last_span is not None:
                span = tracer.last_span.seq
        with self._lock:
            entry = SlowQueryEntry(
                seq=self.total,
                kind=kind,
                query=_resolve(query),
                elapsed_ms=elapsed_seconds * 1000.0,
                threshold_ms=self.threshold_ms,
                plan=_resolve(plan),
                drift=drift,
                pairs_tried=pairs_tried,
                pairs_pruned=pairs_pruned,
                span=span,
                request=request,
            )
            self._ring.append(entry)
            if len(self._ring) > self.capacity:
                del self._ring[0]
            self.total += 1
        _metrics.REGISTRY.counter("slowlog.recorded").inc()
        journal = _events.CURRENT
        if journal.enabled:
            journal.publish(
                "WARN",
                "slowlog",
                "slow_query",
                kind=entry.kind,
                query=entry.query,
                plan=entry.plan,
                elapsed_ms=entry.elapsed_ms,
                threshold_ms=entry.threshold_ms,
                drift=entry.drift,
                pairs_tried=entry.pairs_tried,
                pairs_pruned=entry.pairs_pruned,
                span=entry.span,
                request=entry.request,
            )
        return entry

    @staticmethod
    def _pairs_snapshot():
        """Join pairs (tried, pruned) across both kernels — deltas over
        a measured run say how much work the slow query actually did."""
        registry = _metrics.REGISTRY
        tried = registry.value("relation.join.pairs_tried") + registry.value(
            "flat.join.pairs_tried"
        )
        pruned = registry.value(
            "relation.join.pairs_pruned"
        ) + registry.value("flat.join.pairs_pruned")
        return tried, pruned

    # -- reads --------------------------------------------------------------

    def entries(self, limit: Optional[int] = None) -> List[SlowQueryEntry]:
        """The retained entries, oldest first (the last ``limit`` when
        given)."""
        with self._lock:
            retained = list(self._ring)
        if limit is not None and limit >= 0:
            retained = retained[-limit:] if limit else []
        return retained

    def for_request(self, request_id: str) -> List[SlowQueryEntry]:
        """Every retained entry recorded under this exact request id."""
        with self._lock:
            retained = list(self._ring)
        return [entry for entry in retained if entry.request == request_id]

    def clear(self) -> None:
        """Drop retained entries (``total`` keeps counting)."""
        with self._lock:
            self._ring = []

    def __len__(self) -> int:
        return len(self._ring)

    def report(self, limit: int = 10) -> str:
        """The ``:slow`` table: newest entries of the ring."""
        retained = self.entries(limit)
        if not retained:
            return "(no slow queries over %.1fms)" % self.threshold_ms
        lines = [
            "slow queries (threshold %.1fms, showing %d of %d recorded):"
            % (self.threshold_ms, len(retained), self.total),
            _REPORT_HEADER,
        ]
        lines.extend(entry.format() for entry in retained)
        return "\n".join(lines)


class NoOpSlowLog:
    """The disabled log: one shared instance, zero recording."""

    enabled = False
    threshold_ms = DEFAULT_THRESHOLD_MS
    capacity = 0
    total = 0

    def outermost(self) -> bool:
        return False

    def measure(self, kind: str, query: Lazy, plan: Lazy = None):
        return _NOOP_MEASURE

    def would_record(self, seconds: float) -> bool:
        return False

    def record(self, *args, **kwargs) -> None:
        return None

    def entries(self, limit: Optional[int] = None) -> List[SlowQueryEntry]:
        return []

    def for_request(self, request_id: str) -> List[SlowQueryEntry]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def report(self, limit: int = 10) -> str:
        return "(slow-query log is off — :slow on)"


NOOP = NoOpSlowLog()

# The process-global slow-query log; instrumented sites read this
# attribute freshly per operation so enable/disable is immediate.
CURRENT = NOOP  # type: object


def get_slowlog():
    """The process-global slow-query log (a :class:`SlowLog` or NOOP)."""
    return CURRENT


def set_slowlog(log) -> None:
    """Install ``log`` as the process-global slow log (``None`` → NOOP)."""
    global CURRENT
    CURRENT = log if log is not None else NOOP


def enable(
    threshold_ms: Optional[float] = None,
    capacity: Optional[int] = None,
    clock=None,
) -> SlowLog:
    """Turn the slow-query log on; returns the active log.

    Installs a fresh :class:`SlowLog` when the log was off; keeps the
    current one (and its entries) when already on, applying a new
    ``threshold_ms`` if one is given.
    """
    global CURRENT
    if not isinstance(CURRENT, SlowLog):
        CURRENT = SlowLog(
            threshold_ms=(
                threshold_ms
                if threshold_ms is not None
                else DEFAULT_THRESHOLD_MS
            ),
            capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
            clock=clock if clock is not None else time.perf_counter,
        )
        return CURRENT
    if threshold_ms is not None:
        CURRENT.threshold_ms = float(threshold_ms)
    return CURRENT


def disable() -> None:
    """Turn the slow-query log off (entries are dropped with it)."""
    global CURRENT
    CURRENT = NOOP


def set_threshold(threshold_ms: float) -> None:
    """Set the slow threshold, enabling the log if it was off."""
    enable(threshold_ms=threshold_ms)


def slowlog_report(limit: int = 10) -> str:
    """The process-global log's ``:slow`` table."""
    return CURRENT.report(limit)
