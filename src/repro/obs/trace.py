"""Nestable wall-clock spans with a process-global default tracer.

The paper's efficiency claims — fast-path joins on flat cochains,
index-backed ``Get`` over extents, intrinsic persistence with commit —
need to be *attributable* at run time, not just asserted by benchmarks.
A :class:`Tracer` records a tree of named spans::

    from repro.obs import trace

    tracer = trace.enable()
    with trace.span("relation.join", left=3, right=3) as sp:
        r1.join(r2)
    print(tracer.roots[0].format())

Spans nest: a span opened while another is active becomes its child, so
an instrumented call stack (a plan execution, a heap commit replaying
into the store) renders as an indented tree.

**Disabled cost.**  The default tracer is :data:`NOOP`, a singleton
whose ``enabled`` attribute is ``False``; hot paths guard their
instrumentation with that single attribute check and pay nothing else::

    if trace.CURRENT.enabled:
        with trace.CURRENT.span("store.replay"):
            ...

Tracing is process-global (``CURRENT``), deliberately: the point is to
observe a whole program, and the REPL's ``:trace on`` flips one switch.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs import events as _events

__all__ = [
    "Span",
    "Tracer",
    "NoOpTracer",
    "NOOP",
    "CURRENT",
    "get_tracer",
    "set_tracer",
    "enable",
    "disable",
    "span",
    "current_request_id",
    "set_request_id",
]


# The per-thread request context: while a session executes a request,
# its ``request_id`` is visible here, so downstream recorders (the
# slow-query log, journal publishers) can stamp whatever they capture
# with the exact request it belongs to — no racy "most recent span"
# guessing across threads.
_REQUEST = threading.local()


def current_request_id() -> Optional[str]:
    """The request id the current thread is executing under (or None)."""
    return getattr(_REQUEST, "request_id", None)


def set_request_id(request_id: Optional[str]) -> Optional[str]:
    """Install ``request_id`` as this thread's request context.

    Returns the previous value so callers can restore it on the way
    out (requests nest during ``:load`` and re-entrant evaluation).
    """
    previous = getattr(_REQUEST, "request_id", None)
    _REQUEST.request_id = request_id
    return previous


class Span:
    """One timed, tagged region of execution (a node in the trace tree).

    ``elapsed`` is wall-clock seconds, filled in when the span closes
    (``None`` while still open).  ``tags`` are free-form annotations;
    :meth:`annotate` adds more after the span has been opened — how plan
    nodes attach ``rows_out`` once the result cardinality is known.
    """

    __slots__ = ("name", "seq", "tags", "elapsed", "children", "_started")

    _SEQ = itertools.count(1)

    def __init__(self, name: str, tags: Optional[Dict[str, object]] = None):
        self.name = name
        # A process-wide monotone id; the slow-query log records it so a
        # slowlog entry can be matched to its span in an exported trace.
        self.seq = next(Span._SEQ)
        self.tags: Dict[str, object] = dict(tags) if tags else {}
        self.elapsed: Optional[float] = None
        self.children: List["Span"] = []
        self._started: float = 0.0

    def annotate(self, **tags: object) -> "Span":
        """Attach more tags to an open (or closed) span."""
        self.tags.update(tags)
        return self

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            for descendant in child.walk():
                yield descendant

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe nested dict of the subtree (for wire transport).

        ``started`` is the opening ``perf_counter()`` reading — meaningful
        only relative to other spans from the same process, which is why
        merged exports carry a clock offset estimated at handshake.
        """
        return {
            "name": self.name,
            "seq": self.seq,
            "started": self._started,
            "elapsed": self.elapsed,
            "tags": {
                key: _events._json_safe(value)
                for key, value in self.tags.items()
            },
            "children": [child.to_dict() for child in self.children],
        }

    def format(self, indent: int = 0) -> str:
        """An indented one-line-per-span rendering of the subtree."""
        pad = "  " * indent
        tag_text = " ".join(
            "%s=%s" % (key, self.tags[key]) for key in sorted(self.tags)
        )
        elapsed_text = (
            "%.3fms" % (self.elapsed * 1000.0)
            if self.elapsed is not None
            else "open"
        )
        line = "%s%s [%s]%s" % (
            pad,
            self.name,
            elapsed_text,
            " " + tag_text if tag_text else "",
        )
        return "\n".join(
            [line] + [child.format(indent + 1) for child in self.children]
        )

    def __repr__(self) -> str:
        return "Span(%r, elapsed=%s, children=%d)" % (
            self.name,
            self.elapsed,
            len(self.children),
        )


class _OpenSpan:
    """Context manager wiring one span into a tracer's active stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span_obj: Span):
        self._tracer = tracer
        self._span = span_obj

    def __enter__(self) -> Span:
        tracer = self._tracer
        span_obj = self._span
        if tracer._stack:
            tracer._stack[-1].children.append(span_obj)
        else:
            # A new root: stamp it with the thread's request context so a
            # pooled server can harvest each request's trees by id even
            # when several worker threads grow roots concurrently.
            request_id = current_request_id()
            if request_id is not None and "request_id" not in span_obj.tags:
                span_obj.tags["request_id"] = request_id
            with tracer._roots_lock:
                tracer.roots.append(span_obj)
        tracer._stack.append(span_obj)
        tracer.last_span = span_obj
        span_obj._started = tracer._clock()
        return span_obj

    def __exit__(self, *exc_info) -> bool:
        span_obj = self._span
        span_obj.elapsed = self._tracer._clock() - span_obj._started
        # Pop back to this span even if an inner span leaked (an
        # exception skipped its __exit__ — defensive, should not happen).
        stack = self._tracer._stack
        while stack and stack.pop() is not span_obj:
            pass
        # Closed spans also chronicle into the flight recorder, so an
        # exported journal shows spans and anomalies on one timeline.
        journal = _events.CURRENT
        if journal.enabled:
            payload = {
                key: value
                for key, value in span_obj.tags.items()
                if key not in ("severity", "subsystem", "name")
            }
            payload["elapsed_ms"] = span_obj.elapsed * 1000.0
            journal.publish("DEBUG", "trace", span_obj.name, **payload)
        return False


class Tracer:
    """A recording tracer: spans opened through it build a forest.

    ``roots`` holds completed-and-open top-level spans in order; nested
    spans hang off their parents.  ``clock`` is injectable for tests.

    The open-span *stack* is per-thread: nesting follows each thread's
    own call stack, so a client thread's ``client.run`` span and the
    server worker thread's ``lang.run`` span (the in-process
    :class:`~repro.server.server.ServerThread` embedding shares one
    global tracer) become separate roots instead of racing into one
    interleaved tree.  ``roots`` itself is shared and guarded by a lock;
    new roots are stamped with the thread's request id so
    :meth:`harvest_request` can claim exactly one request's trees even
    when a pooled server grows several requests' roots concurrently.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.roots: List[Span] = []
        self._roots_lock = threading.Lock()
        self._local = threading.local()
        # The most recently *opened* span (even after it closes) — the
        # slow-query log reads its ``seq`` as a best-effort correlation
        # id between a slowlog entry and the trace it belongs to.
        self.last_span: Optional[Span] = None

    @property
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **tags: object) -> _OpenSpan:
        """Open a span; use as ``with tracer.span("name", k=v) as sp:``."""
        return _OpenSpan(self, Span(name, tags))

    def clear(self) -> None:
        """Drop all recorded spans (open spans keep recording)."""
        with self._roots_lock:
            self.roots = []
        self.last_span = None

    def harvest_request(self, request_id: str) -> List[Span]:
        """Claim (remove and return) the closed root spans of one
        request.

        Root spans are stamped with the thread-local request id as they
        open, so when several pooled worker threads grow roots on the
        shared tracer concurrently, each request can still pull exactly
        its own trees out.  Unstamped roots (spans opened outside any
        request) are left alone, and so are roots still *open*: with an
        in-process :class:`~repro.server.server.ServerThread` the
        client's ``client.run`` round-trip span shares both the tracer
        and the request id, and it is still running when the server
        harvests — claiming it would strip the client's own lane from a
        merged export.  The removal is atomic under the roots lock.
        """
        def mine(root: Span) -> bool:
            return (
                root.elapsed is not None
                and root.tags.get("request_id") == request_id
            )

        with self._roots_lock:
            harvested = [root for root in self.roots if mine(root)]
            if harvested:
                self.roots = [
                    root for root in self.roots if not mine(root)
                ]
        return harvested

    def spans(self) -> List[Span]:
        """Every recorded span, depth-first across all roots."""
        return [s for root in self.roots for s in root.walk()]

    def find(self, name: str) -> List[Span]:
        """All recorded spans with the given name."""
        return [s for s in self.spans() if s.name == name]


class _NoOpSpan:
    """The do-nothing span: context manager and annotation sink."""

    __slots__ = ()

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def annotate(self, **tags: object) -> "_NoOpSpan":
        return self


_NOOP_SPAN = _NoOpSpan()


class NoOpTracer:
    """The disabled tracer: one shared instance, zero recording.

    ``enabled`` is ``False`` so instrumented code can skip its whole
    observation block with a single attribute check; calling
    :meth:`span` anyway still costs nothing but the call.
    """

    enabled = False
    roots: Tuple[Span, ...] = ()
    last_span: Optional[Span] = None

    def span(self, name: str, **tags: object) -> _NoOpSpan:
        return _NOOP_SPAN

    def clear(self) -> None:
        pass

    def harvest_request(self, request_id: str) -> List[Span]:
        return []

    def spans(self) -> List[Span]:
        return []

    def find(self, name: str) -> List[Span]:
        return []


NOOP = NoOpTracer()

# The process-global tracer.  Instrumented modules read this attribute
# freshly on each operation (``trace.CURRENT``) so enable/disable takes
# effect everywhere at once.
CURRENT = NOOP  # type: object


def get_tracer():
    """The process-global tracer (a :class:`Tracer` or :data:`NOOP`)."""
    return CURRENT


def set_tracer(tracer) -> None:
    """Install ``tracer`` as the process-global tracer (``None`` → NOOP)."""
    global CURRENT
    CURRENT = tracer if tracer is not None else NOOP


def enable() -> Tracer:
    """Turn tracing on; returns the active recording tracer.

    Installs a fresh :class:`Tracer` when tracing was off; keeps the
    current one (and its recorded spans) when already on.
    """
    global CURRENT
    if not isinstance(CURRENT, Tracer):
        CURRENT = Tracer()
    return CURRENT


def disable() -> None:
    """Turn tracing off (the global tracer becomes the no-op singleton)."""
    global CURRENT
    CURRENT = NOOP


def span(name: str, **tags: object):
    """Open a span on the process-global tracer."""
    return CURRENT.span(name, **tags)
