"""The flight recorder: a bounded, thread-safe structured event journal.

Spans (:mod:`repro.obs.trace`) answer *where time went*; counters
(:mod:`repro.obs.metrics`) answer *how often*.  The journal answers
*what happened, in order*: a ring buffer of structured
:class:`Event` records — monotonic sequence number, severity,
subsystem tag, event name, free-form payload — that the instrumented
layers publish into:

* ``trace``       — every closed span (name, elapsed, tags);
* ``query``       — ``optimize()`` runs, ``explain_analyze`` drift;
* ``kernel``      — generalized-join fast-path hits and misses;
* ``stats``       — automatic re-analyze decisions;
* ``store``       — log replays, torn records, checksum failures (WARN);
* ``heap``        — intrinsic commits: reachability-sweep size,
  written/collected object counts;
* ``replicating`` — extern/intern round-trip fingerprints, and WARN
  events for divergent re-interns (the paper's update anomaly);
* ``image``       — all-or-nothing saves and resumes.

The journal is off by default (:data:`CURRENT` is the no-op
singleton).  Call sites guard on one attribute check and pay **zero
allocations** while disabled::

    if _events.CURRENT.enabled:
        _events.publish("WARN", "store", "torn_record", line=42)

Like the tracer, the journal is process-global: ``enable()`` flips one
switch and every layer starts recording; a bounded ring (default 4096
events) keeps a long-lived REPL session or benchmark from growing
without limit while retaining the most recent evidence — the flight
recorder's point.  :mod:`repro.obs.export` serializes the ring to JSONL
and to Chrome/Perfetto trace files so a crashed or finished session can
be replayed.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.obs import metrics as _metrics

__all__ = [
    "DEBUG",
    "INFO",
    "WARN",
    "ERROR",
    "SEVERITIES",
    "Event",
    "EventJournal",
    "NoOpJournal",
    "ScopedJournal",
    "NOOP",
    "CURRENT",
    "get_journal",
    "set_journal",
    "enable",
    "disable",
    "publish",
    "scoped",
]

DEBUG = "DEBUG"
INFO = "INFO"
WARN = "WARN"
ERROR = "ERROR"

# Ascending order; used for minimum-severity filtering.
SEVERITIES: Tuple[str, ...] = (DEBUG, INFO, WARN, ERROR)
_RANK: Dict[str, int] = {name: rank for rank, name in enumerate(SEVERITIES)}


class Event:
    """One journal entry.

    ``seq`` is the journal-assigned monotonic sequence number (gaps
    never occur; eviction drops old events, not numbers).  ``wall`` is
    epoch seconds (``time.time``) for humans; ``mono`` is
    ``time.perf_counter`` seconds so events and spans share one
    monotonic timeline in exported traces.  ``payload`` is a plain dict
    of whatever the publishing site found useful.
    """

    __slots__ = ("seq", "wall", "mono", "severity", "subsystem", "name", "payload")

    def __init__(
        self,
        seq: int,
        wall: float,
        mono: float,
        severity: str,
        subsystem: str,
        name: str,
        payload: Dict[str, object],
    ):
        self.seq = seq
        self.wall = wall
        self.mono = mono
        self.severity = severity
        self.subsystem = subsystem
        self.name = name
        self.payload = payload

    def to_dict(self) -> Dict[str, object]:
        """A JSON-compatible rendering (payload values coerced via str
        when not already JSON-safe)."""
        return {
            "seq": self.seq,
            "wall": self.wall,
            "mono": self.mono,
            "severity": self.severity,
            "subsystem": self.subsystem,
            "name": self.name,
            "payload": {k: _json_safe(v) for k, v in self.payload.items()},
        }

    def format(self) -> str:
        """One human-readable line (what the REPL's ``:events`` prints)."""
        payload_text = " ".join(
            "%s=%s" % (key, self.payload[key]) for key in sorted(self.payload)
        )
        return "#%-5d %-5s %-12s %-24s %s" % (
            self.seq,
            self.severity,
            self.subsystem,
            self.name,
            payload_text,
        )

    def __repr__(self) -> str:
        return "Event(#%d %s %s.%s)" % (
            self.seq,
            self.severity,
            self.subsystem,
            self.name,
        )


def _json_safe(value: object) -> object:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class EventJournal:
    """A bounded ring of :class:`Event` records, safe for many writers.

    ``capacity`` bounds retained events (the oldest are evicted);
    ``total`` counts everything ever published, so ``total - len(ring)``
    is the evicted count.  A single lock serializes publishes and
    snapshot reads — events are published at per-operation (not
    per-row) granularity, so contention is negligible.
    """

    enabled = True

    def __init__(self, capacity: int = 4096, clock=time.time, mono=time.perf_counter):
        if capacity <= 0:
            raise ValueError("journal capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self._mono = mono
        self._lock = threading.Lock()
        self._ring: List[Event] = []
        self._next = 0  # ring write position once full
        self.total = 0

    def publish(
        self, severity: str, subsystem: str, name: str, **payload: object
    ) -> Event:
        """Record one event; returns it.

        ``severity`` must be one of :data:`SEVERITIES`.  WARN and ERROR
        events additionally count into the metrics registry
        (``events.warnings`` / ``events.errors``) so anomaly totals
        survive ring eviction.
        """
        if severity not in _RANK:
            raise ValueError("unknown severity %r" % (severity,))
        event = Event(
            0, self._clock(), self._mono(), severity, subsystem, name, payload
        )
        with self._lock:
            event.seq = self.total
            self.total += 1
            if len(self._ring) < self.capacity:
                self._ring.append(event)
            else:
                self._ring[self._next] = event
                self._next = (self._next + 1) % self.capacity
        if severity == WARN or severity == ERROR:
            _metrics.REGISTRY.counter(
                "events.warnings" if severity == WARN else "events.errors"
            ).inc()
        return event

    def events(
        self,
        n: Optional[int] = None,
        severity: Optional[str] = None,
        subsystem: Optional[str] = None,
    ) -> List[Event]:
        """The retained events in publication order.

        ``n`` keeps only the most recent *n* (after filtering);
        ``severity`` is a *minimum* (``"WARN"`` keeps WARN and ERROR);
        ``subsystem`` filters exactly.
        """
        with self._lock:
            ordered = self._ring[self._next:] + self._ring[: self._next]
        if severity is not None:
            floor = _RANK[severity]
            ordered = [e for e in ordered if _RANK[e.severity] >= floor]
        if subsystem is not None:
            ordered = [e for e in ordered if e.subsystem == subsystem]
        if n is not None:
            ordered = ordered[-n:]
        return ordered

    def clear(self) -> None:
        """Drop retained events (sequence numbers keep advancing)."""
        with self._lock:
            self._ring = []
            self._next = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


class NoOpJournal:
    """The disabled journal: one shared instance, zero recording.

    ``enabled`` is ``False``; instrumented sites guard their whole
    publish (including payload construction) behind that one attribute
    check, so the disabled path allocates nothing.  Calling
    :meth:`publish` anyway records nothing and returns ``None``.
    """

    enabled = False
    capacity = 0
    total = 0

    def publish(self, severity: str, subsystem: str, name: str, **payload: object):
        return None

    def events(self, n=None, severity=None, subsystem=None) -> List[Event]:
        return []

    def clear(self) -> None:
        pass

    def __len__(self) -> int:
        return 0


class ScopedJournal:
    """A tagging view over a journal: fixed payload fields on publish,
    and reads filtered back down to them.

    The database server hands each connection
    ``scoped(session="s03")`` so every event that session publishes is
    tagged with its id, and ``events()`` answers only that session's
    slice of the shared ring — per-session journals without per-session
    rings.  With ``journal=None`` (the default) the view follows the
    process-global :data:`CURRENT` at call time, so ``enable()`` /
    ``disable()`` keep working mid-session.
    """

    __slots__ = ("tags", "_journal")

    def __init__(self, tags: Dict[str, object], journal=None):
        if not tags:
            raise ValueError("a scoped journal needs at least one tag")
        self.tags = dict(tags)
        self._journal = journal

    def _target(self):
        return self._journal if self._journal is not None else CURRENT

    @property
    def enabled(self) -> bool:
        return self._target().enabled

    def publish(self, severity: str, subsystem: str, name: str, **payload: object):
        """Publish with the scope's tags merged in (tags win on clash)."""
        merged = dict(payload)
        merged.update(self.tags)
        return self._target().publish(severity, subsystem, name, **merged)

    def events(
        self,
        n: Optional[int] = None,
        severity: Optional[str] = None,
        subsystem: Optional[str] = None,
    ) -> List[Event]:
        """The underlying journal's events whose payload carries every
        one of this scope's tags, filtered like
        :meth:`EventJournal.events`."""
        matching = [
            event
            for event in self._target().events(
                severity=severity, subsystem=subsystem
            )
            if all(event.payload.get(k) == v for k, v in self.tags.items())
        ]
        return matching[-n:] if n is not None else matching

    def __len__(self) -> int:
        return len(self.events())

    def __repr__(self) -> str:
        return "ScopedJournal(%r)" % (self.tags,)


def scoped(journal=None, **tags: object) -> ScopedJournal:
    """A :class:`ScopedJournal` over ``journal`` (default: whatever
    :data:`CURRENT` is at each call)."""
    return ScopedJournal(tags, journal=journal)


NOOP = NoOpJournal()

# The process-global journal.  Instrumented modules read this attribute
# freshly per operation (``events.CURRENT``) so enable/disable takes
# effect everywhere at once.
CURRENT = NOOP  # type: object


def get_journal():
    """The process-global journal (an :class:`EventJournal` or NOOP)."""
    return CURRENT


def set_journal(journal) -> None:
    """Install ``journal`` as the process-global journal (``None`` → NOOP)."""
    global CURRENT
    CURRENT = journal if journal is not None else NOOP


def enable(capacity: int = 4096) -> EventJournal:
    """Turn the journal on; returns the active recording journal.

    Installs a fresh :class:`EventJournal` when the journal was off;
    keeps the current one (and its retained events) when already on.
    """
    global CURRENT
    if not isinstance(CURRENT, EventJournal):
        CURRENT = EventJournal(capacity)
    return CURRENT


def disable() -> None:
    """Turn the journal off (back to the no-op singleton)."""
    global CURRENT
    CURRENT = NOOP


def publish(severity: str, subsystem: str, name: str, **payload: object):
    """Publish one event to the process-global journal.

    Call sites on hot paths should guard with ``CURRENT.enabled`` first
    so the disabled path never builds the payload dict.
    """
    return CURRENT.publish(severity, subsystem, name, **payload)
