"""Exporters: replay a session's observability state from files.

Everything the flight recorder holds in memory — finished spans, the
event journal, a metrics snapshot — can be serialized so a benchmark
run or a REPL session leaves evidence behind:

* :func:`write_journal` — the journal as JSON Lines, one event per
  line, trivially greppable and re-readable;
* :func:`write_trace` — a Chrome trace-event file (the JSON object
  format with a ``traceEvents`` list) loadable by ``chrome://tracing``
  and by Perfetto's UI: spans become complete (``"ph": "X"``) events
  whose nesting the viewer reconstructs from timestamps, journal
  entries become instant (``"ph": "i"``) marks on the same timeline,
  and the metrics snapshot rides along under ``otherData``;
* :func:`write_merged_trace` — the distributed version: local spans
  and journal (pid 1, "client") merged with per-request span trees a
  session harvested — possibly pulled over the wire via ``obs``
  frames — on pid 2 ("server", one tid per session), remote
  timestamps shifted onto the local timeline by the clock offset the
  handshake estimated;
* :func:`read_trace` / :func:`read_journal` — load either file back;
* :func:`span_tree` — rebuild the span nesting from a trace file's
  flat event list (timestamp containment), so tests and tools can
  check that an exported trace reproduces the in-memory span forest.

Spans and journal events share the ``time.perf_counter`` timeline
(spans record their start on it; events carry a ``mono`` stamp), so a
single exported file shows both in one coherent order.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.trace import Span

__all__ = [
    "trace_events",
    "merged_trace_events",
    "write_trace",
    "write_merged_trace",
    "write_journal",
    "read_trace",
    "read_journal",
    "span_tree",
]

_MICRO = 1e6

# Merged-trace process ids: the viewer groups rows by pid, so the
# client process and the backend (server or local session) each get a
# lane of their own, with one tid per backend session.
CLIENT_PID = 1
BACKEND_PID = 2


def _span_events(span: Span, out: List[Dict[str, object]]) -> None:
    # Open spans (elapsed is None) have no duration yet; export them as
    # zero-length so the file stays loadable mid-session.
    elapsed = span.elapsed if span.elapsed is not None else 0.0
    out.append(
        {
            "name": span.name,
            "cat": "span",
            "ph": "X",
            "ts": span._started * _MICRO,
            "dur": elapsed * _MICRO,
            "pid": 1,
            "tid": 1,
            "args": {k: _events._json_safe(v) for k, v in span.tags.items()},
        }
    )
    for child in span.children:
        _span_events(child, out)


def trace_events(tracer=None, journal=None) -> List[Dict[str, object]]:
    """The Chrome trace-event list for ``tracer``'s spans and
    ``journal``'s events (both default to the process-global ones)."""
    tracer = tracer if tracer is not None else _trace.CURRENT
    journal = journal if journal is not None else _events.CURRENT
    out: List[Dict[str, object]] = []
    for root in getattr(tracer, "roots", ()):
        _span_events(root, out)
    for event in journal.events():
        out.append(
            {
                "name": "%s.%s" % (event.subsystem, event.name),
                "cat": "journal",
                "ph": "i",
                "s": "p",
                "ts": event.mono * _MICRO,
                "pid": 1,
                "tid": 1,
                "args": dict(
                    {"severity": event.severity, "seq": event.seq},
                    **{
                        k: _events._json_safe(v)
                        for k, v in event.payload.items()
                    },
                ),
            }
        )
    out.sort(key=lambda e: e["ts"])
    return out


def _span_dict_events(
    span: Dict[str, object],
    out: List[Dict[str, object]],
    pid: int,
    tid: int,
    offset: float,
) -> None:
    """Flatten one serialized span tree (``Span.to_dict``) into Chrome
    complete events, shifting its timestamps by ``offset`` seconds
    (the estimated remote-to-local monotonic clock offset)."""
    started = float(span.get("started") or 0.0)
    elapsed = span.get("elapsed")
    out.append(
        {
            "name": span.get("name", "?"),
            "cat": "span",
            "ph": "X",
            "ts": (started - offset) * _MICRO,
            "dur": (float(elapsed) if elapsed is not None else 0.0) * _MICRO,
            "pid": pid,
            "tid": tid,
            "args": dict(span.get("tags") or {}),
        }
    )
    for child in span.get("children") or []:
        _span_dict_events(child, out, pid, tid, offset)


def merged_trace_events(
    tracer=None,
    journal=None,
    remote=None,
    clock_offset: float = 0.0,
) -> List[Dict[str, object]]:
    """One timeline across the wire: local spans + backend span trees.

    ``remote`` is an ``obs("spans")`` reply (or a list of them) — the
    per-request span trees a :class:`~repro.server.session.Session`
    harvested, local or pulled over the protocol's ``obs`` frames.
    Local tracer spans and journal instants render under
    :data:`CLIENT_PID`; each backend session gets its own ``tid``
    under :data:`BACKEND_PID`, its timestamps shifted onto the local
    ``perf_counter`` timeline by ``clock_offset`` (the handshake
    estimate; 0 for a local session, which already shares the clock).
    Process/thread-name metadata events lead the list so the viewer
    labels the lanes.
    """
    out = trace_events(tracer=tracer, journal=journal)
    documents = []
    if remote:
        documents = remote if isinstance(remote, list) else [remote]
    metadata: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": CLIENT_PID,
            "tid": 1,
            "args": {"name": "client"},
        }
    ]
    if documents:
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": BACKEND_PID,
                "tid": 1,
                "args": {"name": "server"},
            }
        )
    for tid, document in enumerate(documents, start=1):
        session = document.get("session") or ("s%02d" % tid)
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": BACKEND_PID,
                "tid": tid,
                "args": {"name": "session %s" % session},
            }
        )
        for request in document.get("requests") or []:
            for span in request.get("spans") or []:
                _span_dict_events(
                    span, out, BACKEND_PID, tid, clock_offset
                )
    out.sort(key=lambda e: e.get("ts", 0))
    return metadata + out


def write_trace(
    path: str,
    tracer=None,
    journal=None,
    metrics: Optional[_metrics.MetricsRegistry] = None,
) -> str:
    """Write a ``chrome://tracing``/Perfetto-loadable trace file.

    The file is the JSON *object* format: ``traceEvents`` plus an
    ``otherData`` section carrying the metrics snapshot and journal
    totals — one artifact replays the whole session.  Returns ``path``.
    """
    journal = journal if journal is not None else _events.CURRENT
    registry = metrics if metrics is not None else _metrics.REGISTRY
    document = {
        "traceEvents": trace_events(tracer=tracer, journal=journal),
        "displayTimeUnit": "ms",
        "otherData": {
            "metrics": registry.snapshot(),
            "journal": {
                "retained": len(journal),
                "published": getattr(journal, "total", 0),
            },
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def write_merged_trace(
    path: str,
    tracer=None,
    journal=None,
    remote=None,
    clock_offset: float = 0.0,
    metrics: Optional[_metrics.MetricsRegistry] = None,
) -> Dict[str, object]:
    """Write a merged client+backend trace file; returns the document.

    The same Chrome/Perfetto object format as :func:`write_trace`,
    with ``traceEvents`` from :func:`merged_trace_events` and the
    estimated ``clock_offset`` recorded under ``otherData`` so a
    reader can undo the shift.  Returning the document (rather than
    the path) lets callers report event counts without re-rendering.
    """
    journal = journal if journal is not None else _events.CURRENT
    registry = metrics if metrics is not None else _metrics.REGISTRY
    document = {
        "traceEvents": merged_trace_events(
            tracer=tracer,
            journal=journal,
            remote=remote,
            clock_offset=clock_offset,
        ),
        "displayTimeUnit": "ms",
        "otherData": {
            "metrics": registry.snapshot(),
            "journal": {
                "retained": len(journal),
                "published": getattr(journal, "total", 0),
            },
            "clock_offset_seconds": clock_offset,
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


def write_journal(path: str, journal=None) -> str:
    """Write the journal as JSON Lines (one event per line); returns
    ``path``."""
    journal = journal if journal is not None else _events.CURRENT
    with open(path, "w", encoding="utf-8") as handle:
        for event in journal.events():
            handle.write(json.dumps(event.to_dict(), sort_keys=True))
            handle.write("\n")
    return path


def read_trace(path: str) -> Dict[str, object]:
    """Load a trace file written by :func:`write_trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def read_journal(path: str) -> List[Dict[str, object]]:
    """Load a JSONL journal written by :func:`write_journal`."""
    out: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def span_tree(trace_document: Dict[str, object]) -> List[Dict[str, object]]:
    """Rebuild span nesting from a loaded trace file.

    Chrome's viewer nests complete events by timestamp containment;
    this applies the same rule so a test can assert that the exported
    file carries the structure the tracer recorded.  Returns a forest
    of ``{"name", "args", "children"}`` dicts in start order.
    """
    spans = [
        event
        for event in trace_document.get("traceEvents", [])
        if event.get("ph") == "X"
    ]
    spans.sort(key=lambda e: (e["ts"], -(e.get("dur", 0))))
    roots: List[Dict[str, object]] = []
    stack: List[Dict[str, object]] = []  # open enclosing spans
    for event in spans:
        node = {
            "name": event["name"],
            "args": event.get("args", {}),
            "children": [],
            "_ts": event["ts"],
            "_end": event["ts"] + event.get("dur", 0),
        }
        while stack and event["ts"] >= stack[-1]["_end"]:
            stack.pop()
        if stack:
            stack[-1]["children"].append(node)
        else:
            roots.append(node)
        stack.append(node)
    def _strip(node: Dict[str, object]) -> None:
        del node["_ts"], node["_end"]
        for child in node["children"]:
            _strip(child)
    for root in roots:
        _strip(root)
    return roots
