"""Named counters and latency histograms with a JSON-able snapshot.

The registry is the always-on half of the observability layer: spans
(:mod:`repro.obs.trace`) answer *where time went in one run*; counters
answer *how often things happened over a process lifetime* — appends and
replays in the log store, fast-path hits in the generalized join,
commits of the intrinsic heap.  A counter increment is one dict lookup
and an integer add, cheap enough to leave on unconditionally at the
per-operation (not per-row) granularity used throughout ``src/``.

Usage::

    from repro.obs.metrics import REGISTRY

    REGISTRY.counter("store.appends").inc()
    REGISTRY.histogram("store.commit.seconds").observe(elapsed)
    print(REGISTRY.to_json())

``snapshot()`` returns plain dicts (JSON-compatible), which is what the
benchmark harness embeds in its ``BENCH_<area>.json`` result files so
the repo's perf trajectory is diffable across PRs.

The relation kernel publishes its pruning effectiveness here: next to
the logical ``relation.join.pairs`` (|L|·|R| per join) live
``relation.join.pairs_tried`` (pairs that actually reached a
consistency check) and ``relation.join.pairs_pruned`` (pairs the
signature/bucket partitioning discarded without one), plus
``relation.reduce`` / ``relation.reduce.groups`` for the partitioned
cochain reduction.  ``benchmarks/bench_relation.py`` fails its run when
``relation.join.pairs_pruned`` stays at zero on the mixed-signature
workload — the counter doubles as a regression guard on the partition
logic.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_metrics",
    "reset_metrics",
]


class Counter:
    """A monotonically-increasing named integer.

    Updates take the metric's own lock: ``value += delta`` is several
    bytecodes, so unlocked concurrent increments can lose counts under
    preemption (the journal writer and threaded workloads both
    increment).  The lock is uncontended in single-threaded use and
    costs well under a microsecond.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, delta: int = 1) -> None:
        """Add ``delta`` (default 1)."""
        with self._lock:
            self.value += delta

    def reset(self) -> None:
        """Back to zero (the registry-wide reset calls this)."""
        with self._lock:
            self.value = 0

    def __repr__(self) -> str:
        return "Counter(%r, %d)" % (self.name, self.value)


class Gauge:
    """A named value that can go up or down (last write wins).

    Counters accumulate and histograms aggregate; a gauge records a
    *level* — the estimate drift of the most recent EXPLAIN ANALYZE,
    the number of analyzed tables in a catalog — that later reads
    should see as-is.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self.value = float(value)

    def reset(self) -> None:
        """Back to zero (the registry-wide reset calls this)."""
        with self._lock:
            self.value = 0.0

    def __repr__(self) -> str:
        return "Gauge(%r, %g)" % (self.name, self.value)


class Histogram:
    """A latency histogram: count/sum/min/max plus bounded raw samples.

    Keeps the most recent ``sample_cap`` observations in a ring so
    :meth:`percentile` stays exact on short runs and approximate (recent
    window) on long ones, without unbounded memory.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_cap", "_lock")

    def __init__(self, name: str, sample_cap: int = 512):
        self.name = name
        self._cap = sample_cap
        self._lock = threading.Lock()
        self.reset()

    def reset(self) -> None:
        """Discard all observations."""
        with self._lock:
            self.count = 0
            self.total = 0.0
            self.min: Optional[float] = None
            self.max: Optional[float] = None
            self._samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation (e.g. seconds of one commit)."""
        value = float(value)
        with self._lock:
            if len(self._samples) < self._cap:
                self._samples.append(value)
            else:
                self._samples[self.count % self._cap] = value
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        """The mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) of the retained samples."""
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        rank = max(0, min(len(ordered) - 1, int(q / 100.0 * len(ordered))))
        return ordered[rank]

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0.0–1.0) of the retained samples.

        Linear interpolation between closest ranks — ``q=0.0`` is the
        smallest retained sample, ``q=1.0`` the largest, and an empty
        histogram answers ``0.0`` (a scrape of a quiet metric should
        expose a number, not raise).  This is the accessor the monitor's
        per-window digests (p50/p95/p99) and the OpenMetrics summary
        exposition read.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1], got %r" % (q,))
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def time(self) -> "_HistogramTimer":
        """A context manager observing the block's wall time in seconds.

        The server's request loop wraps each dispatched frame in
        ``histogram("server.request.seconds").time()`` — one line at the
        call site, and failures still record (the observation lands on
        ``__exit__`` whether or not the block raised).
        """
        return _HistogramTimer(self)

    def snapshot(self) -> Dict[str, object]:
        """A JSON-compatible summary of this histogram."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
        }

    def __repr__(self) -> str:
        return "Histogram(%r, count=%d, mean=%g)" % (
            self.name,
            self.count,
            self.mean,
        )


class _HistogramTimer:
    """The :meth:`Histogram.time` context manager."""

    __slots__ = ("_histogram", "_started")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._started = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._started)


class MetricsRegistry:
    """A namespace of counters and histograms, created on first use.

    One process-global instance (:data:`REGISTRY`) backs all the
    instrumentation in ``src/``; independent registries can be created
    for tests.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created at zero on first use).

        Get-or-create takes the registry lock so two racing threads
        never mint two handles for one name (one handle's counts would
        silently vanish from snapshots).
        """
        found = self._counters.get(name)
        if found is None:
            with self._lock:
                found = self._counters.get(name)
                if found is None:
                    found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created at zero on first use)."""
        found = self._gauges.get(name)
        if found is None:
            with self._lock:
                found = self._gauges.get(name)
                if found is None:
                    found = self._gauges[name] = Gauge(name)
        return found

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created empty on first use)."""
        found = self._histograms.get(name)
        if found is None:
            with self._lock:
                found = self._histograms.get(name)
                if found is None:
                    found = self._histograms[name] = Histogram(name)
        return found

    def value(self, name: str) -> int:
        """The current value of counter ``name`` — 0 when it never fired.

        A pure read: unlike :meth:`counter` it does not create the
        counter, so probing a name (e.g. the benchmark harness checking
        ``relation.join.pairs_pruned``) leaves no trace in snapshots.
        """
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def counters(self) -> Dict[str, int]:
        """Counter values by name (a copy)."""
        with self._lock:
            items = sorted(self._counters.items())
        return {name: c.value for name, c in items}

    def gauges(self) -> Dict[str, float]:
        """Gauge values by name (a copy)."""
        with self._lock:
            items = sorted(self._gauges.items())
        return {name: g.value for name, g in items}

    def histograms(self) -> Dict[str, Histogram]:
        """Histogram *handles* by name (a copied mapping).

        Unlike :meth:`counters`/:meth:`gauges` this hands out the live
        objects: the monitor's sampler needs count/sum deltas *and*
        quantiles per tick, and a value copy would force two snapshot
        passes.  Callers must treat the handles as read-only.
        """
        with self._lock:
            items = sorted(self._histograms.items())
        return dict(items)

    def snapshot(self) -> Dict[str, object]:
        """Everything, as plain JSON-compatible dicts."""
        with self._lock:
            histograms = sorted(self._histograms.items())
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": {name: h.snapshot() for name, h in histograms},
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot serialized as JSON text."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every metric *in place*.

        Existing :class:`Counter`/:class:`Histogram` handles stay valid
        (instrumented modules may cache them), they just restart at zero.
        """
        with self._lock:
            metrics = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for metric in metrics:
            metric.reset()

    def format(self) -> str:
        """A human-readable table (the REPL's ``:stats`` output)."""
        with self._lock:
            counters = sorted(self._counters.items())
            gauges = sorted(self._gauges.items())
            histograms = sorted(self._histograms.items())
        lines: List[str] = []
        if counters:
            lines.append("counters:")
            for name, counter in counters:
                lines.append("  %-40s %d" % (name, counter.value))
        if gauges:
            lines.append("gauges:")
            for name, gauge in gauges:
                lines.append("  %-40s %g" % (name, gauge.value))
        if histograms:
            lines.append("histograms:")
            for name, histogram in histograms:
                lines.append(
                    "  %-40s n=%d mean=%.6f max=%.6f"
                    % (
                        name,
                        histogram.count,
                        histogram.mean,
                        histogram.max if histogram.max is not None else 0.0,
                    )
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


# The process-global registry every instrumented module records into.
REGISTRY = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry."""
    return REGISTRY


def reset_metrics() -> None:
    """Zero the process-global registry (handles stay valid)."""
    REGISTRY.reset()
