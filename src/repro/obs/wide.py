"""Wide events: one canonical record per completed request.

Modern operability practice ("observability 2.0") replaces scattered
log lines with a single *wide event* per unit of work — every fact a
responder might need, keyed by one request id.  Here that unit is a
:meth:`Session.run <repro.server.session.Session.run>` call: the query
text, mode, outcome, elapsed wall time, the per-request span trees the
tracer harvested, the deltas of the kernel/columnar/optimizer counters
that fired while the request ran, the optimizer's estimated-vs-actual
row counts from the feedback log, and whether the slow-query log
tripped for the same ``request_id``.

Sessions keep their wide events in a bounded :class:`RequestLog` ring,
browsable at the REPL via ``:requests [n]`` (local or remote — the
record is plain data and travels in ``obs`` frames).

Counter deltas are attributable to a single request because queries
serialize: the server broker executes every query on one worker
thread, and the local REPL is single-threaded.  Under future
concurrent execution the deltas would become "counters that moved
while this request ran" — still useful, no longer exclusive.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional

from repro.obs import metrics as _metrics

__all__ = [
    "WideEvent",
    "RequestLog",
    "counters_snapshot",
    "WATCHED_COUNTERS",
]

# Query text is stored truncated: wide events are a bounded ring, not
# an archive, and 200 chars identify any query a human is hunting.
_TEXT_CAP = 200

# The counter families whose per-request deltas a wide event records.
# Each entry is (field name, metric names summed into it) — e.g. pair
# counts add the generalized-kernel and flat-fastpath variants.
WATCHED_COUNTERS = (
    ("batches", ("columnar.batches",)),
    ("batch_rows", ("columnar.rows",)),
    (
        "pairs_tried",
        ("relation.join.pairs_tried", "flat.join.pairs_tried"),
    ),
    (
        "pairs_pruned",
        ("relation.join.pairs_pruned", "flat.join.pairs_pruned"),
    ),
    ("adaptive_corrections", ("stats.adaptive.corrections",)),
    ("feedback", ("stats.feedback.observations",)),
)

_COUNTER_FIELDS = tuple(field for field, __ in WATCHED_COUNTERS)


def counters_snapshot() -> Dict[str, int]:
    """Current values of every watched counter, keyed by field name.

    A pure read (absent counters read as 0); take one before a request
    and one after, and the difference is the request's activity.
    """
    registry = _metrics.REGISTRY
    return {
        field: sum(registry.value(name) for name in names)
        for field, names in WATCHED_COUNTERS
    }


class WideEvent:
    """Everything known about one completed request, in one record."""

    __slots__ = (
        "request_id",
        "session",
        "wall",
        "mode",
        "query",
        "ok",
        "error",
        "elapsed_ms",
        "spans",
        "counters",
        "est_rows",
        "act_rows",
        "slow_ms",
    )

    def __init__(
        self,
        request_id: str,
        session: str,
        mode: str,
        query: str,
        ok: bool,
        elapsed_ms: float,
        error: Optional[str] = None,
        spans: Optional[List[Dict[str, object]]] = None,
        counters: Optional[Dict[str, int]] = None,
        est_rows: Optional[float] = None,
        act_rows: Optional[int] = None,
        slow_ms: Optional[float] = None,
        wall: Optional[float] = None,
    ):
        self.request_id = request_id
        self.session = session
        self.wall = time.time() if wall is None else wall
        self.mode = mode
        self.query = query[:_TEXT_CAP]
        self.ok = ok
        self.error = error
        self.elapsed_ms = elapsed_ms
        # Structured span trees (Span.to_dict) harvested for this
        # request — present only while tracing was on.
        self.spans = spans or []
        self.counters = {
            field: int((counters or {}).get(field, 0))
            for field in _COUNTER_FIELDS
        }
        self.est_rows = est_rows
        self.act_rows = act_rows
        # Wall-time of the matching slow-query entry (None = the
        # slowlog did not trip for this request).
        self.slow_ms = slow_ms

    @property
    def slow(self) -> bool:
        return self.slow_ms is not None

    def to_dict(self, spans: bool = True) -> Dict[str, object]:
        """A JSON-safe dict (set ``spans=False`` to drop the trees)."""
        record = {
            "request_id": self.request_id,
            "session": self.session,
            "wall": self.wall,
            "mode": self.mode,
            "query": self.query,
            "ok": self.ok,
            "error": self.error,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "est_rows": self.est_rows,
            "act_rows": self.act_rows,
            "slow": self.slow,
            "slow_ms": self.slow_ms,
        }
        record.update(self.counters)
        if spans:
            # Already JSON-safe: Span.to_dict scrubbed the tag values.
            record["spans"] = self.spans
        return record

    def format(self) -> str:
        """One table row (pair with :data:`REPORT_HEADER`)."""
        if self.est_rows is not None and self.act_rows is not None:
            rows_text = "%.0f/%d" % (self.est_rows, self.act_rows)
        else:
            rows_text = "-"
        counters = self.counters
        return "%-14s %-4s %9.3f %-3s %11s %7d %9d/%-9d %4d %s%s" % (
            self.request_id[:14],
            self.mode,
            self.elapsed_ms,
            "ok" if self.ok else "ERR",
            rows_text,
            counters["batches"],
            counters["pairs_tried"],
            counters["pairs_pruned"],
            counters["adaptive_corrections"],
            "SLOW " if self.slow else "",
            self.query.replace("\n", " ")[:40],
        )

    def __repr__(self) -> str:
        return "WideEvent(%r, ok=%s, %.3fms)" % (
            self.request_id,
            self.ok,
            self.elapsed_ms,
        )


REPORT_HEADER = "%-14s %-4s %9s %-3s %11s %7s %9s/%-9s %4s %s" % (
    "request",
    "mode",
    "ms",
    "ok",
    "est/act",
    "batch",
    "tried",
    "pruned",
    "corr",
    "query",
)


class RequestLog:
    """A bounded, thread-safe ring of :class:`WideEvent` records.

    One per session.  ``capacity`` bounds memory like the event
    journal's ring does; ``total`` keeps counting past evictions so
    ``:requests`` can say how many were dropped.
    """

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def append(self, event: WideEvent) -> WideEvent:
        with self._lock:
            self._events.append(event)
            self.total += 1
        return event

    def last(self, count: int = 10) -> List[WideEvent]:
        """The most recent ``count`` events, oldest first."""
        with self._lock:
            items = list(self._events)
        return items[-count:] if count > 0 else []

    def find(self, request_id: str) -> Optional[WideEvent]:
        """The retained event with this exact ``request_id`` (or None)."""
        with self._lock:
            for event in reversed(self._events):
                if event.request_id == request_id:
                    return event
        return None

    def format(self, count: int = 10) -> str:
        recent = self.last(count)
        if not recent:
            return "(no requests recorded)"
        lines = [REPORT_HEADER]
        lines.extend(event.format() for event in recent)
        with self._lock:
            dropped = self.total - len(self._events)
        if dropped > 0:
            lines.append("(%d older request(s) evicted)" % dropped)
        return "\n".join(lines)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        return "RequestLog(%d/%d, total=%d)" % (
            len(self),
            self.capacity,
            self.total,
        )
