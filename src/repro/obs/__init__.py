"""repro.obs — dependency-free observability for the kernel.

The flight recorder has four complementary instruments:

* :mod:`repro.obs.trace` — nestable wall-clock spans behind a
  process-global tracer that defaults to a no-op singleton (one
  attribute check when disabled);
* :mod:`repro.obs.metrics` — always-on, thread-safe named counters,
  gauges, and latency histograms with a JSON-able ``snapshot()``;
* :mod:`repro.obs.events` — a bounded, thread-safe structured event
  journal (severity, subsystem, payload) the tracer, query layer,
  kernel, and persistence layers publish into when enabled;
* :mod:`repro.obs.profile` — a deterministic execution profiler
  attributing wall time and kernel pair counts per plan operator.

:mod:`repro.obs.export` serializes spans, journal, and metrics to
JSONL and to Chrome ``chrome://tracing`` / Perfetto trace files, so any
benchmark or REPL session can be replayed visually.

The query layer (:func:`repro.core.query.explain_analyze`), the
persistence substrate (:class:`repro.persistence.store.LogStore`, the
intrinsic heap's commit, the replicating extern/intern path), the
generalized-relation hot spots, and the DBPL evaluator/REPL all record
here, so the ROADMAP's "fast as the hardware allows" goal is measurable
instead of asserted.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_metrics,
    reset_metrics,
)
from repro.obs.trace import (
    NOOP,
    NoOpTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
    span,
)
from repro.obs.events import (
    Event,
    EventJournal,
    NoOpJournal,
    publish,
)
from repro.obs.profile import (
    NoOpProfiler,
    OpProfile,
    Profiler,
    profile_report,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_metrics",
    "reset_metrics",
    "NOOP",
    "NoOpTracer",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "get_tracer",
    "set_tracer",
    "span",
    "Event",
    "EventJournal",
    "NoOpJournal",
    "publish",
    "NoOpProfiler",
    "OpProfile",
    "Profiler",
    "profile_report",
]
