"""repro.obs — dependency-free tracing and metrics for the kernel.

Two complementary instruments:

* :mod:`repro.obs.trace` — nestable wall-clock spans behind a
  process-global tracer that defaults to a no-op singleton (one
  attribute check when disabled);
* :mod:`repro.obs.metrics` — always-on named counters and latency
  histograms with a JSON-able ``snapshot()``.

The query layer (:func:`repro.core.query.explain_analyze`), the
persistence substrate (:class:`repro.persistence.store.LogStore`, the
intrinsic heap's commit, the replicating extern/intern path), the
generalized-relation hot spots, and the DBPL evaluator/REPL all record
here, so the ROADMAP's "fast as the hardware allows" goal is measurable
instead of asserted.
"""

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_metrics,
    reset_metrics,
)
from repro.obs.trace import (
    NOOP,
    NoOpTracer,
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    set_tracer,
    span,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_metrics",
    "reset_metrics",
    "NOOP",
    "NoOpTracer",
    "Span",
    "Tracer",
    "disable",
    "enable",
    "get_tracer",
    "set_tracer",
    "span",
]
