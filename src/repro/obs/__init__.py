"""repro.obs — dependency-free observability for the kernel.

The flight recorder has four complementary instruments:

* :mod:`repro.obs.trace` — nestable wall-clock spans behind a
  process-global tracer that defaults to a no-op singleton (one
  attribute check when disabled);
* :mod:`repro.obs.metrics` — always-on, thread-safe named counters,
  gauges, and latency histograms with a JSON-able ``snapshot()``;
* :mod:`repro.obs.events` — a bounded, thread-safe structured event
  journal (severity, subsystem, payload) the tracer, query layer,
  kernel, and persistence layers publish into when enabled;
* :mod:`repro.obs.profile` — a deterministic execution profiler
  attributing wall time and kernel pair counts per plan operator.

Above the recorder sits the *monitoring* layer:

* :mod:`repro.obs.monitor` — windowed time-series rollups over the
  metrics registry (counter rates, gauge levels, latency quantiles per
  horizon), health probes with ok/degraded/failing verdicts, and
  OpenMetrics v1 text exposition for external scrapers;
* :mod:`repro.obs.slowlog` — a bounded ring capturing every query that
  exceeded a wall-time threshold, with plan summary, estimate drift,
  pair counts, and exact request-id correlation;
* :mod:`repro.obs.wide` — one wide event per completed session
  request (query, outcome, wall time, watched-counter deltas, the
  harvested span trees), kept in a bounded per-session ring — the
  canonical record distributed tracing and ``:requests`` read.

:mod:`repro.obs.export` serializes spans, journal, and metrics to
JSONL and to Chrome ``chrome://tracing`` / Perfetto trace files, so any
benchmark or REPL session can be replayed visually.

The query layer (:func:`repro.core.query.explain_analyze`), the
persistence substrate (:class:`repro.persistence.store.LogStore`, the
intrinsic heap's commit, the replicating extern/intern path), the
generalized-relation hot spots, and the DBPL evaluator/REPL all record
here, so the ROADMAP's "fast as the hardware allows" goal is measurable
instead of asserted.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_metrics,
    reset_metrics,
)
from repro.obs.trace import (
    NOOP,
    NoOpTracer,
    Span,
    Tracer,
    current_request_id,
    disable,
    enable,
    get_tracer,
    set_request_id,
    set_tracer,
    span,
)
from repro.obs.events import (
    Event,
    EventJournal,
    NoOpJournal,
    publish,
)
from repro.obs.profile import (
    NoOpProfiler,
    OpProfile,
    Profiler,
    profile_report,
)
from repro.obs.monitor import (
    HealthProbe,
    NoOpMonitor,
    ProbeResult,
    TimeSeriesRegistry,
    Window,
    default_probes,
    format_health,
    health_report,
    overall_verdict,
    parse_openmetrics,
    render_openmetrics,
    write_metrics_snapshot,
)
from repro.obs.slowlog import (
    NoOpSlowLog,
    SlowLog,
    SlowQueryEntry,
    slowlog_report,
)
from repro.obs.wide import (
    RequestLog,
    WideEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_metrics",
    "reset_metrics",
    "NOOP",
    "NoOpTracer",
    "Span",
    "Tracer",
    "current_request_id",
    "disable",
    "enable",
    "get_tracer",
    "set_request_id",
    "set_tracer",
    "span",
    "Event",
    "EventJournal",
    "NoOpJournal",
    "publish",
    "NoOpProfiler",
    "OpProfile",
    "Profiler",
    "profile_report",
    "HealthProbe",
    "NoOpMonitor",
    "ProbeResult",
    "TimeSeriesRegistry",
    "Window",
    "default_probes",
    "format_health",
    "health_report",
    "overall_verdict",
    "parse_openmetrics",
    "render_openmetrics",
    "write_metrics_snapshot",
    "NoOpSlowLog",
    "SlowLog",
    "SlowQueryEntry",
    "slowlog_report",
    "RequestLog",
    "WideEvent",
]
