"""Signature-partitioned cochain kernel: fast reduction, probes, and join.

The naive implementations of the relation layer compare *all pairs*:
cochain reduction is O(n²) ``leq`` calls, the generalized join tries
|L|·|R| ``try_join`` pairs, and every ``insert``/``admits``/``matching``
scans the whole member list.  This module exploits two structural facts
about the value domain of :mod:`repro.core.orders`:

1. **Signatures.**  ``r ⊑ s`` between partial records requires
   ``labels(r) ⊆ labels(s)``, so members partitioned by their defined
   label set (the *signature*) only ever need comparing across
   subset-related signatures.  The number of distinct signatures is
   typically tiny next to the number of members, so whole partitions are
   skipped wholesale.

2. **Ground atoms.**  An atom is only ⊑ an equal atom.  For the labels
   on which *every* member of a partition carries an atom (the
   partition's *atomic labels*), any ⊑ or join partner must carry equal
   atoms on the shared atomic labels.  Hash-bucketing a partition by its
   atomic-label values therefore prunes, in O(1), every pair that
   disagrees on a shared ground atom — a generalization of the flat hash
   join to arbitrary partial records.  Pairs with conflicting atoms on
   shared labels are never materialized.

On fully flat data the join kernel degenerates to exactly the classical
hash join; on nested or mixed data it falls back to pairwise checks
*within* matching buckets only, so results are always identical to the
naive oracle (property-tested in ``tests/core/test_kernel.py``).

Pruning is observable: the join kernel reports how many of the |L|·|R|
logical pairs were never tried, which the relation layer publishes as
``relation.join.pairs_pruned``; :func:`reduce_to_maximal` counts its
partitions under ``relation.reduce.groups``.

:class:`SignatureIndex` packages the same partition/bucket structure as
a reusable probe index for the point queries (``admits``, ``insert``
survivor collection, ``matching``, relation-level ``leq``), which an
immutable :class:`~repro.core.relation.GeneralizedRelation` builds
lazily once and reuses across queries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core import cpo
from repro.core.orders import Atom, PartialRecord, Value, leq, try_join
from repro.obs import metrics as _metrics

Signature = FrozenSet[str]
_BucketKey = Tuple[Value, ...]


def _partition(
    values: Iterable[Value],
) -> Tuple[Set[Atom], Dict[Signature, Set[PartialRecord]], List[Value]]:
    """Split values into deduped atoms, records grouped by signature, and
    anything else (unknown :class:`Value` subclasses, handled naively)."""
    atoms: Set[Atom] = set()
    groups: Dict[Signature, Set[PartialRecord]] = {}
    others: List[Value] = []
    for value in values:
        if isinstance(value, PartialRecord):
            group = groups.get(value.label_set)
            if group is None:
                group = groups[value.label_set] = set()
            group.add(value)
        elif isinstance(value, Atom):
            atoms.add(value)
        else:
            others.append(value)
    return atoms, groups, others


def _atomic_labels(
    signature: Signature, members: Iterable[PartialRecord]
) -> Signature:
    """The labels on which *every* member carries an atom.

    Ground members (the common case in relational workloads) contribute
    all their labels without a per-field scan.
    """
    labels = signature
    for member in members:
        if member.is_ground:
            continue
        labels = frozenset(
            label for label in labels if isinstance(member.get(label), Atom)
        )
        if not labels:
            break
    return labels


def _bucket(
    members: Iterable[PartialRecord], key_labels: Tuple[str, ...]
) -> Dict[_BucketKey, List[PartialRecord]]:
    """Hash members by their (atomic) values on ``key_labels``."""
    buckets: Dict[_BucketKey, List[PartialRecord]] = {}
    for member in members:
        key = tuple(member.get(label) for label in key_labels)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = buckets[key] = []
        bucket.append(member)
    return buckets


def _intra_group_maximal(
    signature: Signature,
    members: Set[PartialRecord],
    atomic: Signature,
) -> List[PartialRecord]:
    """Maximal elements *within* one signature group.

    Same-signature records are only comparable through nested fields:
    when the group is uniformly atomic (``atomic == signature``) distinct
    members are pairwise incomparable and deduplication is the whole
    reduction.  Otherwise members are bucketed by their shared atomic
    labels — cross-bucket pairs disagree on a ground atom, hence are
    incomparable — and only bucket-mates meet the pairwise oracle.
    """
    if len(members) <= 1 or atomic == signature:
        return list(members)
    reduced: List[PartialRecord] = []
    for bucket in _bucket(members, tuple(sorted(atomic))).values():
        if len(bucket) == 1:
            reduced.extend(bucket)
        else:
            reduced.extend(cpo.maximal_elements(bucket, leq))
    return reduced


class SignatureIndex:
    """A probe index over one cochain's members.

    Partitions members by signature, remembers each partition's atomic
    labels, and lazily builds hash buckets per (signature, probe-label)
    pair.  All point queries — "is any member above/below this value?",
    "which members dominate it?" — touch only subset-related partitions
    and, within them, only the hash bucket matching the probe's ground
    atoms.

    Unknown :class:`Value` subclasses force the naive linear scan
    (``_naive``), preserving semantics for exotic domains.
    """

    __slots__ = ("atoms", "groups", "_atomic", "_buckets", "_naive")

    def __init__(self, members: Iterable[Value]):
        members = list(members)
        self.atoms, self.groups, others = _partition(members)
        self._naive: Optional[Tuple[Value, ...]] = (
            tuple(members) if others else None
        )
        self._atomic: Dict[Signature, Signature] = {}
        self._buckets: Dict[
            Tuple[Signature, Tuple[str, ...]],
            Dict[_BucketKey, List[PartialRecord]],
        ] = {}

    # -- cached per-partition structure --------------------------------------

    def atomic_labels(self, signature: Signature) -> Signature:
        found = self._atomic.get(signature)
        if found is None:
            found = self._atomic[signature] = _atomic_labels(
                signature, self.groups[signature]
            )
        return found

    def bucket(
        self, signature: Signature, key_labels: Tuple[str, ...]
    ) -> Dict[_BucketKey, List[PartialRecord]]:
        cache_key = (signature, key_labels)
        found = self._buckets.get(cache_key)
        if found is None:
            found = self._buckets[cache_key] = _bucket(
                self.groups[signature], key_labels
            )
        return found

    # -- probe helpers --------------------------------------------------------

    def _candidates_above(self, value: PartialRecord, signature: Signature):
        """Members of ``signature`` (⊇ value's) that *could* dominate ``value``.

        A dominator must carry atoms equal to ``value``'s on every label
        where the partition is uniformly atomic; if ``value`` is nested on
        such a label no member of the partition can dominate it at all.
        """
        atomic = self.atomic_labels(signature)
        key_labels: List[str] = []
        key: List[Value] = []
        for label in sorted(value.label_set & atomic):
            field = value.get(label)
            if not isinstance(field, Atom):
                return ()
            key_labels.append(label)
            key.append(field)
        return self.bucket(signature, tuple(key_labels)).get(tuple(key), ())

    def _candidates_below(self, value: PartialRecord, signature: Signature):
        """Members of ``signature`` (⊆ value's) that *could* lie below ``value``.

        A member below ``value`` has atoms on the partition's atomic
        labels, which ``value`` must match exactly; if ``value`` is nested
        there, no member of the partition lies below it.
        """
        atomic = self.atomic_labels(signature)
        key_labels = tuple(sorted(atomic))
        key: List[Value] = []
        for label in key_labels:
            field = value.get(label)
            if not isinstance(field, Atom):
                return ()
            key.append(field)
        return self.bucket(signature, key_labels).get(tuple(key), ())

    # -- point queries --------------------------------------------------------

    def any_above(self, value: Value) -> bool:
        """Is some member ``m`` with ``value ⊑ m`` present?"""
        if self._naive is not None:
            return any(leq(value, member) for member in self._naive)
        if isinstance(value, Atom):
            return value in self.atoms
        if not isinstance(value, PartialRecord):
            return False
        for signature in self.groups:
            if value.label_set <= signature and any(
                value.leq(candidate)
                for candidate in self._candidates_above(value, signature)
            ):
                return True
        return False

    def members_above(self, value: Value) -> List[Value]:
        """All members ``m`` with ``value ⊑ m`` (dominators of ``value``)."""
        if self._naive is not None:
            return [m for m in self._naive if leq(value, m)]
        if isinstance(value, Atom):
            return [value] if value in self.atoms else []
        if not isinstance(value, PartialRecord):
            return []
        found: List[Value] = []
        for signature in self.groups:
            if value.label_set <= signature:
                found.extend(
                    candidate
                    for candidate in self._candidates_above(value, signature)
                    if value.leq(candidate)
                )
        return found

    def any_below(self, value: Value) -> bool:
        """Is some member ``m`` with ``m ⊑ value`` present?"""
        if self._naive is not None:
            return any(leq(member, value) for member in self._naive)
        if isinstance(value, Atom):
            return value in self.atoms
        if not isinstance(value, PartialRecord):
            return False
        for signature in self.groups:
            if signature <= value.label_set and any(
                candidate.leq(value)
                for candidate in self._candidates_below(value, signature)
            ):
                return True
        return False

    def members_below(self, value: Value) -> List[Value]:
        """All members ``m`` with ``m ⊑ value`` (dominated by ``value``)."""
        if self._naive is not None:
            return [m for m in self._naive if leq(m, value)]
        if isinstance(value, Atom):
            return [value] if value in self.atoms else []
        if not isinstance(value, PartialRecord):
            return []
        found: List[Value] = []
        for signature in self.groups:
            if signature <= value.label_set:
                found.extend(
                    candidate
                    for candidate in self._candidates_below(value, signature)
                    if candidate.leq(value)
                )
        return found


# ---------------------------------------------------------------------------
# Cochain reduction
# ---------------------------------------------------------------------------


def reduce_to_maximal(values: Iterable[Value]) -> List[Value]:
    """The maximal elements of ``values`` — the partitioned reduction.

    Agrees exactly (as a set) with
    ``cpo.maximal_elements(values, leq)``; the all-pairs oracle remains
    in :mod:`repro.core.cpo` and is what the property suite checks this
    against.  Atoms survive deduplication untouched (they are never
    comparable to records or to distinct atoms); each record partition is
    reduced internally, then survivors are checked only against the
    partitions whose signature strictly contains theirs, probing hash
    buckets keyed by the ground atoms shared with the candidate
    dominator partition.
    """
    values = list(values)
    atoms, groups, others = _partition(values)
    if others:
        return cpo.maximal_elements(values, leq)

    registry = _metrics.REGISTRY
    registry.counter("relation.reduce").inc()
    registry.counter("relation.reduce.groups").inc(len(groups))

    index = SignatureIndex(())
    index.atoms = atoms
    index.groups = {}
    reduced_groups: Dict[Signature, List[PartialRecord]] = {}
    for signature, members in groups.items():
        atomic = _atomic_labels(signature, members)
        index._atomic[signature] = atomic
        survivors = _intra_group_maximal(signature, members, atomic)
        reduced_groups[signature] = survivors
        index.groups[signature] = set(survivors)

    out: List[Value] = list(atoms)
    for signature, survivors in reduced_groups.items():
        dominators = [
            other for other in reduced_groups if signature < other
        ]
        if not dominators:
            out.extend(survivors)
            continue
        for record in survivors:
            if not any(
                any(
                    record.leq(candidate)
                    for candidate in index._candidates_above(record, other)
                )
                for other in dominators
            ):
                out.append(record)
    return out


def reduce_to_minimal(values: Iterable[Value]) -> List[Value]:
    """The minimal elements of ``values`` — the dual partitioned reduction.

    Agrees exactly (as a set) with ``cpo.minimal_elements(values, leq)``.
    A record is eliminated when some *distinct* record below it exists,
    so partitions are checked against the partitions whose signature is
    strictly contained in theirs (plus bucket-mates within their own
    partition when nesting makes same-signature comparisons possible).
    """
    values = list(values)
    atoms, groups, others = _partition(values)
    if others:
        return cpo.minimal_elements(values, leq)

    index = SignatureIndex(())
    index.atoms = atoms
    index.groups = {}
    reduced_groups: Dict[Signature, List[PartialRecord]] = {}
    for signature, members in groups.items():
        atomic = _atomic_labels(signature, members)
        index._atomic[signature] = atomic
        if len(members) <= 1 or atomic == signature:
            survivors = list(members)
        else:
            survivors = []
            for bucket in _bucket(members, tuple(sorted(atomic))).values():
                if len(bucket) == 1:
                    survivors.extend(bucket)
                else:
                    survivors.extend(cpo.minimal_elements(bucket, leq))
        reduced_groups[signature] = survivors
        index.groups[signature] = set(survivors)

    out: List[Value] = list(atoms)
    for signature, survivors in reduced_groups.items():
        dominated = [other for other in reduced_groups if other < signature]
        if not dominated:
            out.extend(survivors)
            continue
        for record in survivors:
            if not any(
                any(
                    candidate.leq(record)
                    for candidate in index._candidates_below(record, other)
                )
                for other in dominated
            ):
                out.append(record)
    return out


# ---------------------------------------------------------------------------
# The generalized join kernel
# ---------------------------------------------------------------------------


def join_pairs(
    left_values: Sequence[Value], right_values: Sequence[Value]
) -> Tuple[List[Value], int]:
    """All consistent pairwise joins, with hash-bucket pruning.

    Returns ``(joined, tried)`` where ``joined`` holds the object-level
    join of every consistent (left, right) pair — *not yet reduced* to a
    cochain — and ``tried`` counts the pairs actually materialized and
    checked.  ``len(left) * len(right) - tried`` pairs were pruned: they
    disagree on a shared ground atom (or cross the atom/record divide),
    so no consistency check was ever run for them.

    For each pair of signature partitions the probe key is the shared
    labels on which *both* partitions are uniformly atomic; on flat 1NF
    operands that key is the full set of common attributes and the
    kernel is exactly the classical hash join.
    """
    atoms_l, groups_l, others_l = _partition(left_values)
    atoms_r, groups_r, others_r = _partition(right_values)
    if others_l or others_r:
        joined_naive: List[Value] = []
        tried = 0
        for mine in left_values:
            for theirs in right_values:
                tried += 1
                combined = try_join(mine, theirs)
                if combined is not None:
                    joined_naive.append(combined)
        return joined_naive, tried

    joined: List[Value] = list(atoms_l & atoms_r)
    tried = len(joined)  # equal-atom pairs are the only atom pairs checked

    atomic_l = {
        signature: _atomic_labels(signature, members)
        for signature, members in groups_l.items()
    }
    atomic_r = {
        signature: _atomic_labels(signature, members)
        for signature, members in groups_r.items()
    }
    bucket_cache: Dict[
        Tuple[Signature, Tuple[str, ...]],
        Dict[_BucketKey, List[PartialRecord]],
    ] = {}

    for sig_l, members_l in groups_l.items():
        for sig_r, members_r in groups_r.items():
            key_labels = tuple(
                sorted(sig_l & sig_r & atomic_l[sig_l] & atomic_r[sig_r])
            )
            if not key_labels:
                # No shared uniformly-ground label: nothing to hash on.
                for mine in members_l:
                    for theirs in members_r:
                        tried += 1
                        combined = try_join(mine, theirs)
                        if combined is not None:
                            joined.append(combined)
                continue
            cache_key = (sig_r, key_labels)
            buckets = bucket_cache.get(cache_key)
            if buckets is None:
                buckets = bucket_cache[cache_key] = _bucket(
                    members_r, key_labels
                )
            for mine in members_l:
                key = tuple(mine.get(label) for label in key_labels)
                for theirs in buckets.get(key, ()):
                    tried += 1
                    combined = try_join(mine, theirs)
                    if combined is not None:
                        joined.append(combined)
    return joined, tried
