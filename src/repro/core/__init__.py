"""Core formal machinery of the reproduction.

This package implements the paper's "Inheritance on Values" section:

* :mod:`repro.core.orders` — the information ordering ``⊑`` on partial
  values (atoms and partial records), with join ``⊔`` and meet ``⊓``;
* :mod:`repro.core.cpo` — generic partial-order utilities (antichains,
  bounds, order-theoretic law checks) used by tests and by the relation
  layer;
* :mod:`repro.core.relation` — generalized relations (cochains of
  mutually incomparable objects) and the generalized natural join of the
  paper's Figure 1;
* :mod:`repro.core.flat` — the classic flat 1NF relational algebra used
  as a baseline;
* :mod:`repro.core.fd` — functional dependencies and keys over
  generalized relations.
"""

from repro.core.orders import (
    Atom,
    PartialRecord,
    Value,
    atom,
    consistent,
    from_python,
    join,
    leq,
    lt,
    meet,
    record,
    to_python,
    try_join,
)
from repro.core.relation import GeneralizedRelation
from repro.core.flat import FlatRelation
from repro.core.fd import FunctionalDependency, Key
from repro.core.index import Catalog, SortedIndex
from repro.core.query import optimize, scan

__all__ = [
    "Atom",
    "PartialRecord",
    "Value",
    "atom",
    "consistent",
    "from_python",
    "join",
    "leq",
    "lt",
    "meet",
    "record",
    "to_python",
    "try_join",
    "GeneralizedRelation",
    "FlatRelation",
    "FunctionalDependency",
    "Key",
    "optimize",
    "scan",
    "Catalog",
    "SortedIndex",
]
