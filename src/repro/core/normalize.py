"""Relational design theory over functional dependencies.

The paper points to [Bune86]: the domain-theoretic treatment of
relations "allows us [to] derive the basic results of the theory of
functional dependencies".  This module supplies those basic results in
executable form — the machinery a database programming language's
schema designer needs on top of :mod:`repro.core.fd`:

* projection of a dependency set onto a sub-schema;
* BCNF: violation detection and lossless decomposition;
* 3NF: detection and the synthesis algorithm (via minimal cover);
* the chase test for lossless joins;
* dependency preservation of a decomposition.

All algorithms are the textbook ones, written for the modest schema
sizes of examples and tests (several are exponential in attribute
count by nature).
"""

from __future__ import annotations

from itertools import combinations
from typing import FrozenSet, Iterable, List, Sequence

from repro.core.fd import (
    FunctionalDependency,
    candidate_keys,
    closure,
    implies,
    minimal_cover,
)

Attributes = FrozenSet[str]


def project_fds(
    dependencies: Iterable[FunctionalDependency], attributes: Iterable[str]
) -> List[FunctionalDependency]:
    """The projection of a dependency set onto ``attributes``.

    Standard construction: for every subset X of the target attributes,
    emit ``X → (X+ ∩ attributes)``; non-trivial results only, then
    reduce to a minimal cover.  Exponential in ``len(attributes)``.
    """
    target = frozenset(attributes)
    fds = list(dependencies)
    projected: List[FunctionalDependency] = []
    members = sorted(target)
    for size in range(1, len(members) + 1):
        for subset in combinations(members, size):
            lhs = frozenset(subset)
            rhs = closure(lhs, fds) & target - lhs
            if rhs:
                projected.append(FunctionalDependency(lhs, rhs))
    return minimal_cover(projected)


def is_superkey(
    candidate: Iterable[str],
    attributes: Iterable[str],
    dependencies: Iterable[FunctionalDependency],
) -> bool:
    """Does ``candidate`` functionally determine every attribute?"""
    return closure(candidate, dependencies) >= frozenset(attributes)


def bcnf_violations(
    attributes: Iterable[str],
    dependencies: Iterable[FunctionalDependency],
) -> List[FunctionalDependency]:
    """The non-trivial dependencies whose left side is not a superkey."""
    universe = frozenset(attributes)
    fds = list(dependencies)
    violations = []
    for fd in fds:
        if fd.is_trivial():
            continue
        if not is_superkey(fd.lhs, universe, fds):
            violations.append(fd)
    return violations


def is_bcnf(
    attributes: Iterable[str],
    dependencies: Iterable[FunctionalDependency],
) -> bool:
    """Boyce–Codd normal form: every determinant is a superkey."""
    return not bcnf_violations(attributes, dependencies)


def bcnf_decompose(
    attributes: Iterable[str],
    dependencies: Iterable[FunctionalDependency],
) -> List[Attributes]:
    """A lossless BCNF decomposition (the classic recursive algorithm).

    Splits on a violating ``X → Y`` into ``X+`` and ``X ∪ (R − X+)``,
    projecting the dependencies into each half.  The result is always
    lossless; dependency preservation is not guaranteed (check it with
    :func:`preserves_dependencies`).
    """
    universe = frozenset(attributes)
    fds = list(dependencies)
    violations = bcnf_violations(universe, fds)
    if not violations:
        return [universe]
    offender = violations[0]
    left = closure(offender.lhs, fds)
    right = frozenset(offender.lhs) | (universe - left)
    pieces: List[Attributes] = []
    for piece in (left & universe, right):
        pieces.extend(bcnf_decompose(piece, project_fds(fds, piece)))
    # Drop pieces subsumed by others (can arise from overlapping splits).
    reduced: List[Attributes] = []
    for piece in sorted(pieces, key=len, reverse=True):
        if not any(piece <= kept for kept in reduced):
            reduced.append(piece)
    return reduced


def is_3nf(
    attributes: Iterable[str],
    dependencies: Iterable[FunctionalDependency],
) -> bool:
    """Third normal form: every violating RHS attribute is prime.

    For each non-trivial ``X → A`` with X not a superkey, A must belong
    to some candidate key.
    """
    universe = frozenset(attributes)
    fds = list(dependencies)
    prime = frozenset().union(*candidate_keys(universe, fds)) if universe else frozenset()
    for fd in fds:
        if fd.is_trivial() or is_superkey(fd.lhs, universe, fds):
            continue
        for attribute in fd.rhs - fd.lhs:
            if attribute not in prime:
                return False
    return True


def synthesize_3nf(
    attributes: Iterable[str],
    dependencies: Iterable[FunctionalDependency],
) -> List[Attributes]:
    """Bernstein's 3NF synthesis: schemas from a minimal cover.

    Groups cover dependencies by left-hand side into schemas, adds a
    candidate-key schema when none contains one, and drops schemas
    contained in others.  The result is lossless and
    dependency-preserving by construction.
    """
    universe = frozenset(attributes)
    fds = list(dependencies)
    cover = minimal_cover(fds)
    grouped = {}
    for fd in cover:
        grouped.setdefault(fd.lhs, set()).update(fd.rhs)
    schemas: List[Attributes] = [
        frozenset(lhs | rhs) for lhs, rhs in grouped.items()
    ]
    # Attributes mentioned in no dependency still need a home.
    mentioned = frozenset().union(*schemas) if schemas else frozenset()
    orphans = universe - mentioned
    if orphans:
        schemas.append(orphans)
    # Ensure some schema contains a candidate key of the whole relation.
    keys = candidate_keys(universe, fds)
    if not any(any(key <= schema for key in keys) for schema in schemas):
        schemas.append(keys[0])
    # Remove schemas contained in others.
    reduced: List[Attributes] = []
    for schema in sorted(schemas, key=len, reverse=True):
        if not any(schema <= kept for kept in reduced):
            reduced.append(schema)
    return reduced


def is_lossless(
    attributes: Iterable[str],
    dependencies: Iterable[FunctionalDependency],
    decomposition: Sequence[Iterable[str]],
) -> bool:
    """The chase test for a lossless join.

    Builds the tableau with one row per decomposition piece
    (distinguished symbols on the piece's attributes), chases the
    dependencies to fixpoint, and succeeds iff some row becomes all
    distinguished.
    """
    universe = tuple(sorted(frozenset(attributes)))
    pieces = [frozenset(piece) for piece in decomposition]
    fds = list(dependencies)

    # Symbols: 0 = distinguished; (i, a) = subscripted variable.
    tableau: List[dict] = []
    for i, piece in enumerate(pieces):
        row = {}
        for attribute in universe:
            row[attribute] = 0 if attribute in piece else (i, attribute)
        tableau.append(row)

    changed = True
    while changed:
        changed = False
        for fd in fds:
            for i, first in enumerate(tableau):
                for second in tableau[i + 1:]:
                    if any(first[a] != second[a] for a in fd.lhs):
                        continue
                    for attribute in fd.rhs:
                        a_val, b_val = first[attribute], second[attribute]
                        if a_val == b_val:
                            continue
                        # Equate: prefer the distinguished symbol, else
                        # the lexicographically smaller variable.
                        keep = (
                            0
                            if 0 in (a_val, b_val)
                            else min(a_val, b_val, key=repr)
                        )
                        drop = b_val if keep == a_val else a_val
                        for row in tableau:
                            if row[attribute] == drop:
                                row[attribute] = keep
                        changed = True
    return any(
        all(row[attribute] == 0 for attribute in universe) for row in tableau
    )


def preserves_dependencies(
    dependencies: Iterable[FunctionalDependency],
    decomposition: Sequence[Iterable[str]],
) -> bool:
    """Is every original dependency implied by the projections' union?"""
    fds = list(dependencies)
    union: List[FunctionalDependency] = []
    for piece in decomposition:
        union.extend(project_fds(fds, piece))
    return all(implies(union, fd) for fd in fds)
