"""Generalized relations: cochains of partial objects, and their join.

The paper: "We shall call a set of objects R a (generalized) relation if
whenever o1, o2 ∈ R then neither o1 ⊑ o2 nor o2 ⊑ o1 hold (sets with this
property are called cochains in the jargon of lattice theory)."

Insertion therefore *subsumes*: an object already dominated by a member is
not admitted, and an object dominating members replaces them.  Relations
are ordered by

    R ⊑ R'  iff  for every object o' in R' there is an o in R with o ⊑ o'

("every object in R' is more informative than some object in R"), and the
join under this ordering generalizes the natural join of flat relations —
the paper's Figure 1.  Projection restricts every member to a label set
and re-reduces to a cochain.

:class:`GeneralizedRelation` is immutable; every operation returns a new
relation.  A thin mutable façade (:class:`RelationBuilder`) is provided
for bulk loading in benchmarks.

Hot paths run on the signature-partitioned cochain kernel
(:mod:`repro.core.kernel`): reduction, join, and the subsumption probes
partition members by defined-label set and hash-bucket by shared ground
atoms, so only subset-related, atom-compatible pairs are ever compared.
Semantics are unchanged — the property suite pins every operation to the
naive all-pairs oracle over :mod:`repro.core.cpo`.
"""

from __future__ import annotations

import bisect as _bisect
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core import cpo
from repro.core import kernel as _kernel
from repro.core.orders import PartialRecord, Value, from_python, leq
from repro.errors import RelationError
from repro.obs import events as _events
from repro.obs import metrics as _metrics
from repro.obs import profile as _profile


def _sort_key(value: Value) -> str:
    """The deterministic member order: the (cached) ``repr`` string.

    :class:`~repro.core.orders.PartialRecord` interns its ``repr`` at
    first use, so sorting a cochain costs one string build per *distinct*
    record over its lifetime instead of one per reduction.
    """
    return repr(value)


class GeneralizedRelation:
    """An immutable cochain of mutually incomparable partial objects.

    Construct from any iterable of :class:`Value` (or plain Python dicts,
    which are converted); comparable inputs are reduced so that only the
    maximal (most informative) ones survive::

        >>> r = GeneralizedRelation([{'Name': 'J Doe'},
        ...                          {'Name': 'J Doe', 'Dept': 'Sales'}])
        >>> len(r)
        1
    """

    __slots__ = ("_objects", "_index")

    def __init__(self, objects: Iterable[object] = ()):
        values = [from_python(o) for o in objects]
        reduced = _kernel.reduce_to_maximal(values)
        # Deterministic iteration order: sort by (cached) repr.  Objects
        # are heterogeneous partial records, so no natural key exists.
        self._objects: Tuple[Value, ...] = tuple(sorted(reduced, key=_sort_key))
        self._index: Optional[_kernel.SignatureIndex] = None

    def _sig_index(self) -> _kernel.SignatureIndex:
        """The lazily-built signature/bucket probe index over the members.

        The relation is immutable, so the index is built at most once and
        shared by every subsequent ``admits``/``insert``/``matching``/
        ``leq`` probe against this relation.
        """
        index = self._index
        if index is None:
            index = self._index = _kernel.SignatureIndex(self._objects)
        return index

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Value]:
        return iter(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj: object) -> bool:
        value = from_python(obj)
        return value in self._objects

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedRelation):
            return NotImplemented
        return set(self._objects) == set(other._objects)

    def __hash__(self) -> int:
        return hash(frozenset(self._objects))

    def __repr__(self) -> str:
        inner = ",\n ".join(repr(o) for o in self._objects)
        return "GeneralizedRelation(\n %s\n)" % inner if self._objects else (
            "GeneralizedRelation()"
        )

    @property
    def objects(self) -> Tuple[Value, ...]:
        """The member objects, in deterministic order."""
        return self._objects

    # -- membership-with-subsumption -------------------------------------------

    def admits(self, obj: object) -> bool:
        """Would inserting ``obj`` change the relation?

        ``False`` when some member already carries at least as much
        information as ``obj``.  Probes the signature index: only members
        whose signature contains ``obj``'s — and, within those, only the
        hash bucket agreeing with ``obj``'s ground atoms — are examined.
        """
        value = from_python(obj)
        return not self._sig_index().any_above(value)

    def subsumed_by(self, obj: object) -> Tuple[Value, ...]:
        """The members that inserting ``obj`` would subsume (replace)."""
        value = from_python(obj)
        dominated = [
            m for m in self._sig_index().members_below(value) if m != value
        ]
        return tuple(sorted(dominated, key=_sort_key))

    def insert(self, obj: object) -> "GeneralizedRelation":
        """Insert with subsumption, returning the new relation.

        "We will not admit an object o into a relation R if there is
        already an object in R which contains as much information as o,
        and if it is more informative than objects already in R, we will
        subsume those objects in R."

        Uses the signature index when this relation has already built one
        (repeated probes amortize it); on an index-less relation — the
        common case in an insert *stream*, where every step yields a
        fresh relation — a direct scan is cheaper than building an index
        for a single probe, and the ``leq`` signature fast path keeps the
        scan cheap.
        """
        _metrics.REGISTRY.counter("relation.insert").inc()
        value = from_python(obj)
        index = self._index
        if index is not None:
            if index.any_above(value):
                return self
            dominated = set(index.members_below(value))
        else:
            if any(leq(value, m) for m in self._objects):
                return self
            dominated = {m for m in self._objects if leq(m, value)}
        if dominated:
            survivors = [m for m in self._objects if m not in dominated]
        else:
            survivors = list(self._objects)
        # ``self._objects`` is sorted and removal preserves order, so the
        # new value bisects into place — no re-sort per insert.
        _bisect.insort(survivors, value, key=_sort_key)
        return _from_sorted_cochain(survivors)

    def remove(self, obj: object) -> "GeneralizedRelation":
        """Remove an exact member; raise :class:`RelationError` if absent."""
        value = from_python(obj)
        if value not in self._objects:
            raise RelationError("%r is not a member of the relation" % (value,))
        return _from_cochain([m for m in self._objects if m != value])

    # -- the ordering on relations ---------------------------------------------

    def leq(self, other: "GeneralizedRelation") -> bool:
        """``R ⊑ R'``: every object of ``other`` dominates one of ours.

        Each of ``other``'s objects is answered by one signature-index
        probe into this relation (subset signatures, matching bucket)
        instead of a scan of every member.
        """
        index = self._sig_index()
        return all(index.any_below(theirs) for theirs in other._objects)

    def __le__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedRelation):
            return NotImplemented
        return self.leq(other)

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedRelation):
            return NotImplemented
        return other.leq(self)

    # -- algebra -----------------------------------------------------------------

    def join(self, other: "GeneralizedRelation") -> "GeneralizedRelation":
        """The generalized natural join (the paper's Figure 1).

        Every pairwise-consistent combination contributes its object-level
        join; the result is reduced to its maximal elements so it is again
        a cochain.  On flat 1NF inputs this coincides with the classical
        natural join (see :mod:`repro.core.flat` and the E4 benchmark).

        Order-theoretically the result is an upper bound of both operands
        under ``⊑`` (each member dominates a member of each operand); the
        paper's sources ([AitK84], [Bans86]) work in lattices where it is
        the least one, but over arbitrary cochains least upper bounds need
        not exist, so we claim (and test) only the bound property.

        Evaluation is the signature-partitioned hash-bucket kernel
        (:func:`repro.core.kernel.join_pairs`): pairs that disagree on a
        shared ground atom are pruned without a consistency check, which
        ``relation.join.pairs_pruned`` counts against the logical
        ``relation.join.pairs`` total.
        """
        registry = _metrics.REGISTRY
        registry.counter("relation.join").inc()
        pairs = len(self._objects) * len(other._objects)
        registry.counter("relation.join.pairs").inc(pairs)
        profiler = _profile.CURRENT
        if profiler.enabled:
            started = profiler.clock()
            joined, tried = _kernel.join_pairs(self._objects, other._objects)
            profiler.record(
                "relation.join",
                profiler.clock() - started,
                rows_out=len(joined),
                pairs_tried=tried,
                pairs_pruned=pairs - tried,
            )
        else:
            joined, tried = _kernel.join_pairs(self._objects, other._objects)
        registry.counter("relation.join.pairs_tried").inc(tried)
        registry.counter("relation.join.pairs_pruned").inc(pairs - tried)
        return _from_values(joined)

    def meet(self, other: "GeneralizedRelation") -> "GeneralizedRelation":
        """The greatest lower bound under ``⊑``.

        ``R ⊓ R'`` must lie below both: every object of either operand
        must dominate one of its members.  The greatest such cochain is
        the *minimal*-element reduction of ``R ∪ R'`` (note: minimal, not
        maximal — keeping a dominating member instead of the dominated one
        would leave the dominated object with nothing below it).
        """
        reduced = _kernel.reduce_to_minimal(self._objects + other._objects)
        return _from_cochain(reduced)

    def project(self, labels: Iterable[str]) -> "GeneralizedRelation":
        """Restrict every object to ``labels`` and re-reduce to a cochain.

        Objects undefined on all of ``labels`` project to the empty
        record, which is then subsumed by any non-empty projection.
        """
        wanted = tuple(labels)
        projected = []
        for member in self._objects:
            if isinstance(member, PartialRecord):
                projected.append(member.restrict(wanted))
            else:
                raise RelationError(
                    "cannot project non-record object %r" % (member,)
                )
        return GeneralizedRelation(projected)

    def select(self, predicate) -> "GeneralizedRelation":
        """Keep the members satisfying ``predicate(value) -> bool``."""
        return _from_cochain([m for m in self._objects if predicate(m)])

    def matching(self, pattern: object) -> "GeneralizedRelation":
        """Keep the members at least as informative as ``pattern``.

        This is the paper's "join of this relation with a relation R to
        extract all the objects" idiom specialized to a single pattern:
        ``r.matching({'Dept': 'Sales'})`` keeps exactly the objects that
        refine the pattern.  One signature-index probe: only members whose
        signature contains the pattern's, in the bucket matching its
        ground atoms, are tested.
        """
        wanted = from_python(pattern)
        return _from_cochain(self._sig_index().members_above(wanted))

    # -- invariant check -----------------------------------------------------------

    def check_cochain(self) -> None:
        """Raise :class:`RelationError` unless members are incomparable.

        The constructor maintains this invariant; the check exists for
        tests and for defensive verification after bulk operations.
        """
        if not cpo.is_antichain(self._objects, leq):
            raise RelationError("relation invariant violated: not a cochain")


def _from_cochain(values: Sequence[Value]) -> GeneralizedRelation:
    """Internal fast path: build from values already forming a cochain."""
    return _from_sorted_cochain(sorted(values, key=_sort_key))


def _from_sorted_cochain(values: Sequence[Value]) -> GeneralizedRelation:
    """Innermost fast path: a cochain already in ``_sort_key`` order."""
    relation = GeneralizedRelation.__new__(GeneralizedRelation)
    relation._objects = tuple(values)
    relation._index = None
    return relation


def _from_values(values: Sequence[Value]) -> GeneralizedRelation:
    """Build from domain values, reducing — skips ``from_python``."""
    return _from_cochain(_kernel.reduce_to_maximal(values))


class RelationBuilder:
    """Mutable accumulator for bulk-loading a :class:`GeneralizedRelation`.

    Collects objects and performs a single cochain reduction on
    :meth:`build`, avoiding the quadratic per-insert cost of repeated
    immutable inserts.  The reduction itself runs per signature
    partition (:func:`repro.core.kernel.reduce_to_maximal`), so bulk
    loads scale with partition/bucket sizes, not the square of the batch.
    Used by the workload generators and benchmarks.
    """

    def __init__(self) -> None:
        self._pending: List[Value] = []

    def add(self, obj: object) -> "RelationBuilder":
        """Queue an object for insertion; returns self for chaining."""
        self._pending.append(from_python(obj))
        return self

    def add_all(self, objects: Iterable[object]) -> "RelationBuilder":
        """Queue many objects for insertion; returns self for chaining."""
        for obj in objects:
            self._pending.append(from_python(obj))
        return self

    def __len__(self) -> int:
        return len(self._pending)

    def build(self) -> GeneralizedRelation:
        """Reduce the queued objects to a cochain and freeze them."""
        return GeneralizedRelation(self._pending)


def flat_schema_of(relation: GeneralizedRelation) -> Optional[Tuple[str, ...]]:
    """The schema of a relation that happens to be flat, else ``None``.

    A relation is *flat* when every member is a record defined on the
    same labels with atom values only — i.e. it is a classical 1NF
    relation wearing generalized clothes.
    """
    from repro.core.orders import Atom

    schema: Optional[Tuple[str, ...]] = None
    for member in relation:
        if not isinstance(member, PartialRecord):
            return None
        labels = member.labels
        if schema is None:
            schema = labels
        elif labels != schema:
            return None
        for __, field in member.items():
            if not isinstance(field, Atom):
                return None
    return schema


def join_with_fastpath(
    left: GeneralizedRelation, right: GeneralizedRelation
) -> GeneralizedRelation:
    """The generalized join, routed through the hash join when possible.

    When both operands are flat (see :func:`flat_schema_of`) the result
    equals the classical natural join, so this computes it with
    :meth:`~repro.core.flat.FlatRelation.natural_join` — a hash join —
    and converts back.  An *empty* operand short-circuits to the empty
    result (the join enumerates no pairs) and counts as a fast-path hit
    — it never pays for the generic path.  Otherwise it falls back to
    the generic join, itself now the signature-partitioned bucket kernel.
    The E4 ablation quantifies the gap; results are always identical
    (tested).

    Fast-path coverage is measurable: every call increments either
    ``relation.join_fastpath.hit`` or ``relation.join_fastpath.miss`` in
    the global metrics registry.
    """
    from repro.core.flat import FlatRelation

    if not left or not right:
        _metrics.REGISTRY.counter("relation.join_fastpath.hit").inc()
        if _events.CURRENT.enabled:
            _events.CURRENT.publish(
                "DEBUG", "kernel", "fastpath_hit",
                reason="empty_operand", left=len(left), right=len(right),
            )
        return GeneralizedRelation()
    left_schema = flat_schema_of(left)
    right_schema = flat_schema_of(right)
    if left_schema is not None and right_schema is not None:
        _metrics.REGISTRY.counter("relation.join_fastpath.hit").inc()
        if _events.CURRENT.enabled:
            _events.CURRENT.publish(
                "DEBUG", "kernel", "fastpath_hit",
                reason="flat_operands", left=len(left), right=len(right),
            )
        flat_left = FlatRelation.from_generalized(left, left_schema)
        flat_right = FlatRelation.from_generalized(right, right_schema)
        profiler = _profile.CURRENT
        if profiler.enabled:
            # The hash join is still the generalized join semantically, so
            # its work accumulates under the same "relation.join" label as
            # the partitioned kernel's, with pair deltas read from the
            # flat counters it advances.
            registry = _metrics.REGISTRY
            tried_before = registry.counter("flat.join.pairs_tried").value
            pruned_before = registry.counter("flat.join.pairs_pruned").value
            started = profiler.clock()
            joined = flat_left.natural_join(flat_right)
            profiler.record(
                "relation.join",
                profiler.clock() - started,
                rows_out=len(joined),
                pairs_tried=(
                    registry.counter("flat.join.pairs_tried").value
                    - tried_before
                ),
                pairs_pruned=(
                    registry.counter("flat.join.pairs_pruned").value
                    - pruned_before
                ),
            )
        else:
            joined = flat_left.natural_join(flat_right)
        return joined.to_generalized()
    _metrics.REGISTRY.counter("relation.join_fastpath.miss").inc()
    if _events.CURRENT.enabled:
        _events.CURRENT.publish(
            "DEBUG", "kernel", "fastpath_miss",
            left=len(left), right=len(right),
        )
    return left.join(right)


def incremental_insert_all(
    relation: Optional[GeneralizedRelation], objects: Iterable[object]
) -> GeneralizedRelation:
    """Insert objects one at a time (the slow, per-insert-subsumption path).

    Exists so the E5 benchmark can contrast per-insert subsumption with
    :class:`RelationBuilder`'s bulk reduction; both yield the same
    relation.
    """
    current = relation if relation is not None else GeneralizedRelation()
    for obj in objects:
        current = current.insert(obj)
    return current
