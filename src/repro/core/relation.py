"""Generalized relations: cochains of partial objects, and their join.

The paper: "We shall call a set of objects R a (generalized) relation if
whenever o1, o2 ∈ R then neither o1 ⊑ o2 nor o2 ⊑ o1 hold (sets with this
property are called cochains in the jargon of lattice theory)."

Insertion therefore *subsumes*: an object already dominated by a member is
not admitted, and an object dominating members replaces them.  Relations
are ordered by

    R ⊑ R'  iff  for every object o' in R' there is an o in R with o ⊑ o'

("every object in R' is more informative than some object in R"), and the
join under this ordering generalizes the natural join of flat relations —
the paper's Figure 1.  Projection restricts every member to a label set
and re-reduces to a cochain.

:class:`GeneralizedRelation` is immutable; every operation returns a new
relation.  A thin mutable façade (:class:`RelationBuilder`) is provided
for bulk loading in benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core import cpo
from repro.core.orders import PartialRecord, Value, from_python, leq, try_join
from repro.errors import RelationError
from repro.obs import metrics as _metrics


class GeneralizedRelation:
    """An immutable cochain of mutually incomparable partial objects.

    Construct from any iterable of :class:`Value` (or plain Python dicts,
    which are converted); comparable inputs are reduced so that only the
    maximal (most informative) ones survive::

        >>> r = GeneralizedRelation([{'Name': 'J Doe'},
        ...                          {'Name': 'J Doe', 'Dept': 'Sales'}])
        >>> len(r)
        1
    """

    __slots__ = ("_objects",)

    def __init__(self, objects: Iterable[object] = ()):
        values = [from_python(o) for o in objects]
        reduced = cpo.maximal_elements(values, leq)
        # Deterministic iteration order: sort by repr.  Objects are
        # heterogeneous partial records, so no natural key exists.
        self._objects: Tuple[Value, ...] = tuple(sorted(reduced, key=repr))

    # -- container protocol ---------------------------------------------------

    def __iter__(self) -> Iterator[Value]:
        return iter(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, obj: object) -> bool:
        value = from_python(obj)
        return value in self._objects

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedRelation):
            return NotImplemented
        return set(self._objects) == set(other._objects)

    def __hash__(self) -> int:
        return hash(frozenset(self._objects))

    def __repr__(self) -> str:
        inner = ",\n ".join(repr(o) for o in self._objects)
        return "GeneralizedRelation(\n %s\n)" % inner if self._objects else (
            "GeneralizedRelation()"
        )

    @property
    def objects(self) -> Tuple[Value, ...]:
        """The member objects, in deterministic order."""
        return self._objects

    # -- membership-with-subsumption -------------------------------------------

    def admits(self, obj: object) -> bool:
        """Would inserting ``obj`` change the relation?

        ``False`` when some member already carries at least as much
        information as ``obj``.
        """
        value = from_python(obj)
        return not any(leq(value, member) for member in self._objects)

    def subsumed_by(self, obj: object) -> Tuple[Value, ...]:
        """The members that inserting ``obj`` would subsume (replace)."""
        value = from_python(obj)
        return tuple(m for m in self._objects if leq(m, value) and m != value)

    def insert(self, obj: object) -> "GeneralizedRelation":
        """Insert with subsumption, returning the new relation.

        "We will not admit an object o into a relation R if there is
        already an object in R which contains as much information as o,
        and if it is more informative than objects already in R, we will
        subsume those objects in R."
        """
        _metrics.REGISTRY.counter("relation.insert").inc()
        value = from_python(obj)
        if not self.admits(value):
            return self
        survivors = [m for m in self._objects if not leq(m, value)]
        survivors.append(value)
        return _from_cochain(survivors)

    def remove(self, obj: object) -> "GeneralizedRelation":
        """Remove an exact member; raise :class:`RelationError` if absent."""
        value = from_python(obj)
        if value not in self._objects:
            raise RelationError("%r is not a member of the relation" % (value,))
        return _from_cochain([m for m in self._objects if m != value])

    # -- the ordering on relations ---------------------------------------------

    def leq(self, other: "GeneralizedRelation") -> bool:
        """``R ⊑ R'``: every object of ``other`` dominates one of ours."""
        return all(
            any(leq(mine, theirs) for mine in self._objects)
            for theirs in other._objects
        )

    def __le__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedRelation):
            return NotImplemented
        return self.leq(other)

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, GeneralizedRelation):
            return NotImplemented
        return other.leq(self)

    # -- algebra -----------------------------------------------------------------

    def join(self, other: "GeneralizedRelation") -> "GeneralizedRelation":
        """The generalized natural join (the paper's Figure 1).

        Every pairwise-consistent combination contributes its object-level
        join; the result is reduced to its maximal elements so it is again
        a cochain.  On flat 1NF inputs this coincides with the classical
        natural join (see :mod:`repro.core.flat` and the E4 benchmark).

        Order-theoretically the result is an upper bound of both operands
        under ``⊑`` (each member dominates a member of each operand); the
        paper's sources ([AitK84], [Bans86]) work in lattices where it is
        the least one, but over arbitrary cochains least upper bounds need
        not exist, so we claim (and test) only the bound property.
        """
        registry = _metrics.REGISTRY
        registry.counter("relation.join").inc()
        registry.counter("relation.join.pairs").inc(
            len(self._objects) * len(other._objects)
        )
        joined: List[Value] = []
        for mine in self._objects:
            for theirs in other._objects:
                combined = try_join(mine, theirs)
                if combined is not None:
                    joined.append(combined)
        return GeneralizedRelation(joined)

    def meet(self, other: "GeneralizedRelation") -> "GeneralizedRelation":
        """The greatest lower bound under ``⊑``.

        ``R ⊓ R'`` must lie below both: every object of either operand
        must dominate one of its members.  The greatest such cochain is
        the *minimal*-element reduction of ``R ∪ R'`` (note: minimal, not
        maximal — keeping a dominating member instead of the dominated one
        would leave the dominated object with nothing below it).
        """
        reduced = cpo.minimal_elements(self._objects + other._objects, leq)
        return _from_cochain(reduced)

    def project(self, labels: Iterable[str]) -> "GeneralizedRelation":
        """Restrict every object to ``labels`` and re-reduce to a cochain.

        Objects undefined on all of ``labels`` project to the empty
        record, which is then subsumed by any non-empty projection.
        """
        wanted = tuple(labels)
        projected = []
        for member in self._objects:
            if isinstance(member, PartialRecord):
                projected.append(member.restrict(wanted))
            else:
                raise RelationError(
                    "cannot project non-record object %r" % (member,)
                )
        return GeneralizedRelation(projected)

    def select(self, predicate) -> "GeneralizedRelation":
        """Keep the members satisfying ``predicate(value) -> bool``."""
        return _from_cochain([m for m in self._objects if predicate(m)])

    def matching(self, pattern: object) -> "GeneralizedRelation":
        """Keep the members at least as informative as ``pattern``.

        This is the paper's "join of this relation with a relation R to
        extract all the objects" idiom specialized to a single pattern:
        ``r.matching({'Dept': 'Sales'})`` keeps exactly the objects that
        refine the pattern.
        """
        wanted = from_python(pattern)
        return _from_cochain([m for m in self._objects if leq(wanted, m)])

    # -- invariant check -----------------------------------------------------------

    def check_cochain(self) -> None:
        """Raise :class:`RelationError` unless members are incomparable.

        The constructor maintains this invariant; the check exists for
        tests and for defensive verification after bulk operations.
        """
        if not cpo.is_antichain(self._objects, leq):
            raise RelationError("relation invariant violated: not a cochain")


def _from_cochain(values: Sequence[Value]) -> GeneralizedRelation:
    """Internal fast path: build from values already forming a cochain."""
    relation = GeneralizedRelation.__new__(GeneralizedRelation)
    relation._objects = tuple(sorted(values, key=repr))
    return relation


class RelationBuilder:
    """Mutable accumulator for bulk-loading a :class:`GeneralizedRelation`.

    Collects objects and performs a single cochain reduction on
    :meth:`build`, avoiding the quadratic per-insert cost of repeated
    immutable inserts.  Used by the workload generators and benchmarks.
    """

    def __init__(self) -> None:
        self._pending: List[Value] = []

    def add(self, obj: object) -> "RelationBuilder":
        """Queue an object for insertion; returns self for chaining."""
        self._pending.append(from_python(obj))
        return self

    def add_all(self, objects: Iterable[object]) -> "RelationBuilder":
        """Queue many objects for insertion; returns self for chaining."""
        for obj in objects:
            self._pending.append(from_python(obj))
        return self

    def __len__(self) -> int:
        return len(self._pending)

    def build(self) -> GeneralizedRelation:
        """Reduce the queued objects to a cochain and freeze them."""
        return GeneralizedRelation(self._pending)


def flat_schema_of(relation: GeneralizedRelation) -> Optional[Tuple[str, ...]]:
    """The schema of a relation that happens to be flat, else ``None``.

    A relation is *flat* when every member is a record defined on the
    same labels with atom values only — i.e. it is a classical 1NF
    relation wearing generalized clothes.
    """
    from repro.core.orders import Atom

    schema: Optional[Tuple[str, ...]] = None
    for member in relation:
        if not isinstance(member, PartialRecord):
            return None
        labels = member.labels
        if schema is None:
            schema = labels
        elif labels != schema:
            return None
        for __, field in member.items():
            if not isinstance(field, Atom):
                return None
    return schema


def join_with_fastpath(
    left: GeneralizedRelation, right: GeneralizedRelation
) -> GeneralizedRelation:
    """The generalized join, routed through the hash join when possible.

    When both operands are flat (see :func:`flat_schema_of`) the result
    equals the classical natural join, so this computes it with
    :meth:`~repro.core.flat.FlatRelation.natural_join` — a hash join —
    and converts back.  Otherwise it falls back to the generic pairwise
    join.  The E4 ablation quantifies the gap; results are always
    identical (tested).

    Fast-path coverage is measurable: every call increments either
    ``relation.join_fastpath.hit`` or ``relation.join_fastpath.miss`` in
    the global metrics registry.
    """
    from repro.core.flat import FlatRelation

    left_schema = flat_schema_of(left)
    right_schema = flat_schema_of(right)
    if left_schema is not None and right_schema is not None and left and right:
        _metrics.REGISTRY.counter("relation.join_fastpath.hit").inc()
        flat_left = FlatRelation.from_generalized(left, left_schema)
        flat_right = FlatRelation.from_generalized(right, right_schema)
        return flat_left.natural_join(flat_right).to_generalized()
    _metrics.REGISTRY.counter("relation.join_fastpath.miss").inc()
    return left.join(right)


def incremental_insert_all(
    relation: Optional[GeneralizedRelation], objects: Iterable[object]
) -> GeneralizedRelation:
    """Insert objects one at a time (the slow, per-insert-subsumption path).

    Exists so the E5 benchmark can contrast per-insert subsumption with
    :class:`RelationBuilder`'s bulk reduction; both yield the same
    relation.
    """
    current = relation if relation is not None else GeneralizedRelation()
    for obj in objects:
        current = current.insert(obj)
    return current
