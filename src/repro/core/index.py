"""Ordered secondary indexes over flat relations, and an indexed catalog.

The E1 experiment showed what an index buys a *heterogeneous* store;
this module is the flat-relation counterpart: a sorted attribute index
supporting equality and range lookups in logarithmic time, and a
:class:`Catalog` the query optimizer consults to turn sargable
selections over base tables into :class:`~repro.core.query.IndexScan`
nodes.

Indexes are built once over an immutable :class:`FlatRelation`; the
relational world here is value-oriented, so "updating" a relation means
binding a new one (and re-indexing), exactly like every other value.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.flat import FlatRelation
from repro.errors import RelationError
from repro.obs import metrics as _metrics
from repro.stats.collect import TableStats
from repro.stats.collect import analyze as _collect_stats


class SortedIndex:
    """A sorted index on one attribute of a flat relation.

    Supports ``lookup_eq`` and ``lookup_range`` (both ends optional,
    inclusive/exclusive), returning rows as attribute→value dicts.
    Mixed-type attribute values are ordered by (type name, value) so the
    sort is total even when ints and strings share a column.
    """

    __slots__ = ("_attribute", "_schema", "_keys", "_rows")

    def __init__(self, relation: FlatRelation, attribute: str):
        if attribute not in relation.schema:
            raise RelationError(
                "cannot index %r: not in schema %r"
                % (attribute, relation.schema)
            )
        self._attribute = attribute
        self._schema = relation.schema
        pairs = sorted(
            ((self._key(row[attribute]), row) for row in relation),
            key=lambda pair: pair[0],
        )
        self._keys = [key for key, __ in pairs]
        self._rows = [row for __, row in pairs]

    @staticmethod
    def _key(value) -> Tuple[str, object]:
        # bool sorts as its own type, not as int
        return (type(value).__name__, value)

    @property
    def attribute(self) -> str:
        """The indexed attribute."""
        return self._attribute

    def __len__(self) -> int:
        return len(self._rows)

    def lookup_eq(self, value) -> List[Dict[str, object]]:
        """All rows whose indexed attribute equals ``value``."""
        key = self._key(value)
        low = bisect_left(self._keys, key)
        high = bisect_right(self._keys, key)
        return [dict(row) for row in self._rows[low:high]]

    def lookup_range(
        self,
        low=None,
        high=None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> List[Dict[str, object]]:
        """All rows with the indexed attribute in the given range."""
        start = 0
        end = len(self._rows)
        if low is not None:
            key = self._key(low)
            start = (
                bisect_left(self._keys, key)
                if low_inclusive
                else bisect_right(self._keys, key)
            )
        if high is not None:
            key = self._key(high)
            end = (
                bisect_right(self._keys, key)
                if high_inclusive
                else bisect_left(self._keys, key)
            )
        return [dict(row) for row in self._rows[start:end]]

    def select(self, op: str, operand) -> FlatRelation:
        """Rows satisfying ``attribute <op> operand`` as a relation."""
        if op == "==":
            rows: Iterable = self.lookup_eq(operand)
        elif op == "<":
            rows = self.lookup_range(high=operand, high_inclusive=False)
        elif op == "<=":
            rows = self.lookup_range(high=operand)
        elif op == ">":
            rows = self.lookup_range(low=operand, low_inclusive=False)
        elif op == ">=":
            rows = self.lookup_range(low=operand)
        else:
            raise RelationError("index cannot answer operator %r" % op)
        return FlatRelation(self._schema, rows)


class Catalog:
    """Named relations plus their secondary indexes and statistics.

    Quacks like the plain ``Mapping[str, FlatRelation]`` the query
    executor expects, and additionally answers :meth:`index_on`, which
    the optimizer uses to plant :class:`~repro.core.query.IndexScan`
    nodes, and :meth:`stats_for`, which the cost model consults for
    measured selectivities.

    Every relation carries a *bind epoch* — a staleness counter bumped
    each time the name is rebound.  :meth:`analyze` stamps the collected
    :class:`~repro.stats.collect.TableStats` with the epoch of the
    moment, so :meth:`stats_stale` can tell whether the statistics still
    describe the current value.  With ``auto_analyze=True`` statistics
    are collected at registration time (and kept fresh on rebinds)
    without any explicit calls.

    ``reanalyze_threshold`` configures lazy re-analysis instead: when
    :func:`repro.core.query.optimize` plans over a relation whose
    statistics have gone stale by at least that many rebinds, it calls
    :meth:`analyze` for the name rather than silently costing the plan
    from stale histograms.  The default of 1 refreshes on any staleness;
    ``None`` disables the behavior (historical: stale stats are used
    as-is).  Names never analyzed are left alone either way — a catalog
    that opted out of statistics keeps the fixed-constant estimates.

    ``adaptive`` is the per-catalog escape hatch for adaptive
    selectivity estimation (:mod:`repro.stats.adaptive`): with the
    process-global store enabled, a catalog built with
    ``adaptive=False`` keeps purely static estimates — execution
    feedback is still *recorded*, just never applied to this catalog's
    plans.

    ``columnar`` is the matching escape hatch for vectorized execution
    (:mod:`repro.core.columnar`): with the process-global switch
    enabled, a catalog built with ``columnar=False`` keeps every plan
    row-at-a-time — the optimizer never plants ``ColumnarExec`` nodes
    over its relations.
    """

    def __init__(
        self,
        relations: Optional[Mapping[str, FlatRelation]] = None,
        auto_analyze: bool = False,
        reanalyze_threshold: Optional[int] = 1,
        adaptive: bool = True,
        columnar: bool = True,
    ):
        self._relations: Dict[str, FlatRelation] = {}
        self._indexes: Dict[Tuple[str, str], SortedIndex] = {}
        self._stats: Dict[str, TableStats] = {}
        self._epochs: Dict[str, int] = {}
        self._auto_analyze = auto_analyze
        self.reanalyze_threshold = reanalyze_threshold
        self.adaptive = adaptive
        self.columnar = columnar
        for name, relation in (relations or {}).items():
            self.bind(name, relation)

    def __getitem__(self, name: str) -> FlatRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    def __iter__(self):
        return iter(self._relations)

    def bind(self, name: str, relation: FlatRelation) -> None:
        """(Re)bind a relation; its old indexes are dropped.

        Bumps the name's bind epoch, which marks previously collected
        statistics stale (they are kept — a stale estimate still beats
        a constant — unless ``auto_analyze`` refreshes them here).
        """
        self._relations[name] = relation
        self._epochs[name] = self._epochs.get(name, -1) + 1
        for key in [k for k in self._indexes if k[0] == name]:
            del self._indexes[key]
        if self._auto_analyze:
            self.analyze(name)

    def create_index(self, name: str, attribute: str) -> SortedIndex:
        """Build (or rebuild) a sorted index on ``name.attribute``."""
        if name not in self._relations:
            raise RelationError("catalog has no relation %r" % name)
        index = SortedIndex(self._relations[name], attribute)
        self._indexes[(name, attribute)] = index
        return index

    def index_on(self, name: str, attribute: str) -> Optional[SortedIndex]:
        """The index for ``name.attribute``, if one was created."""
        return self._indexes.get((name, attribute))

    def indexes(self) -> List[Tuple[str, str]]:
        """The (relation, attribute) pairs currently indexed."""
        return sorted(self._indexes)

    # -- statistics ---------------------------------------------------------

    def analyze(self, name: str, **options) -> TableStats:
        """Collect and store statistics for ``name`` (see
        :func:`repro.stats.collect.analyze`)."""
        if name not in self._relations:
            raise RelationError("catalog has no relation %r" % name)
        stats = _collect_stats(
            self._relations[name],
            name=name,
            epoch=self._epochs.get(name, 0),
            **options,
        )
        self._stats[name] = stats
        _metrics.REGISTRY.gauge("stats.catalog.analyzed_tables").set(
            len(self._stats)
        )
        return stats

    def analyze_all(self, **options) -> Dict[str, TableStats]:
        """Collect statistics for every relation in the catalog."""
        return {name: self.analyze(name, **options) for name in sorted(self)}

    def stats_for(self, name: str) -> Optional[TableStats]:
        """The stored statistics for ``name`` (possibly stale), if any."""
        return self._stats.get(name)

    def stats_stale(self, name: str) -> bool:
        """Whether ``name`` was rebound since its statistics were taken.

        ``True`` also when no statistics exist — either way,
        :meth:`analyze` is due.
        """
        stats = self._stats.get(name)
        return stats is None or stats.epoch != self._epochs.get(name, 0)

    def bind_epoch(self, name: str) -> int:
        """The staleness counter for ``name`` (bumped by every bind)."""
        return self._epochs.get(name, 0)

    def stats_drift(self, name: str) -> Optional[int]:
        """How many rebinds ``name`` has seen since its statistics.

        ``None`` when the name was never analyzed (there is nothing to
        refresh — the caller opted out of statistics for it); ``0`` when
        the statistics are current.  The optimizer's auto re-analyze
        compares this against :attr:`reanalyze_threshold`.
        """
        stats = self._stats.get(name)
        if stats is None:
            return None
        return self._epochs.get(name, 0) - stats.epoch
