"""Classic flat (1NF) relational algebra.

The paper contrasts object-oriented databases with relational ones, whose
relations are *flat*: "We cannot store complex structures such as arrays
or other relations as values in a relation."  This module implements the
textbook algebra over flat relations — selection, projection, natural
join, union, difference, rename — both as a baseline for the generalized
relations of :mod:`repro.core.relation` (experiment E4 shows the
generalized join restricted to flat data *is* the natural join) and as
the substrate for the Pascal/R emulation in :mod:`repro.classes.pascal_r`.

A flat relation has a fixed schema (a tuple of attribute names) and a set
of total rows mapping every attribute to a scalar.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Iterator, Mapping, Tuple, Union

from repro.core.orders import AtomPayload, _ATOM_TYPES
from repro.core.relation import GeneralizedRelation
from repro.errors import SchemaMismatchError
from repro.obs import metrics as _metrics

Row = Tuple[AtomPayload, ...]
RowMapping = Mapping[str, AtomPayload]


class FlatRelation:
    """An immutable 1NF relation: a schema plus a set of total rows.

    Rows may be given as mappings or as tuples following the schema
    order.  Duplicate rows collapse (relations are sets)::

        >>> r = FlatRelation(('Name', 'Dept'),
        ...                  [{'Name': 'J Doe', 'Dept': 'Sales'}])
        >>> r.schema
        ('Name', 'Dept')
    """

    # ``__weakref__`` lets the columnar engine's scan-conversion cache
    # (:mod:`repro.core.columnar`) evict entries when a relation dies.
    __slots__ = ("_schema", "_rows", "__weakref__")

    def __init__(
        self,
        schema: Iterable[str],
        rows: Iterable[Union[Row, RowMapping]] = (),
    ):
        self._schema: Tuple[str, ...] = tuple(schema)
        if len(set(self._schema)) != len(self._schema):
            raise SchemaMismatchError(
                "duplicate attribute in schema %r" % (self._schema,)
            )
        normalized = set()
        for row in rows:
            normalized.add(self._normalize_row(row))
        self._rows: FrozenSet[Row] = frozenset(normalized)

    @classmethod
    def bulk_build(
        cls, schema: Iterable[str], rows: Iterable[Row]
    ) -> "FlatRelation":
        """Trusted bulk constructor: skip per-row normalization.

        ``rows`` must already be tuples of atoms in schema order — the
        shape workload generators and the columnar engine produce.  The
        per-row mapping/arity/atom checks of ``__init__`` are what
        dominate large-``n`` construction (the ``insert_stream`` row of
        ``BENCH_relation.json``); here rows go straight into the
        frozenset.  Duplicates still collapse; the schema is still
        checked (it is O(attributes), not O(rows)).
        """
        self = object.__new__(cls)
        self._schema = tuple(schema)
        if len(set(self._schema)) != len(self._schema):
            raise SchemaMismatchError(
                "duplicate attribute in schema %r" % (self._schema,)
            )
        self._rows = frozenset(rows)
        return self

    def _normalize_row(self, row: Union[Row, RowMapping]) -> Row:
        if isinstance(row, Mapping):
            missing = [a for a in self._schema if a not in row]
            if missing:
                raise SchemaMismatchError(
                    "row %r is missing attributes %r (flat rows are total)"
                    % (dict(row), missing)
                )
            extra = [a for a in row if a not in self._schema]
            if extra:
                raise SchemaMismatchError(
                    "row %r has attributes %r outside schema %r"
                    % (dict(row), extra, self._schema)
                )
            values = tuple(row[a] for a in self._schema)
        else:
            values = tuple(row)
            if len(values) != len(self._schema):
                raise SchemaMismatchError(
                    "row %r does not match schema %r" % (values, self._schema)
                )
        for value in values:
            if not isinstance(value, _ATOM_TYPES):
                raise SchemaMismatchError(
                    "flat relations hold scalars only; got %r (first-normal-form"
                    " condition)" % (value,)
                )
        return values

    # -- basic protocol -------------------------------------------------------

    @property
    def schema(self) -> Tuple[str, ...]:
        """The attribute names, in declaration order."""
        return self._schema

    @property
    def rows(self) -> FrozenSet[Row]:
        """The rows as tuples in schema order."""
        return self._rows

    def __iter__(self) -> Iterator[Dict[str, AtomPayload]]:
        """Iterate rows as attribute→value dictionaries."""
        for row in sorted(self._rows, key=repr):
            yield dict(zip(self._schema, row))

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: object) -> bool:
        if isinstance(row, (Mapping, tuple, list)):
            try:
                return self._normalize_row(row) in self._rows  # type: ignore[arg-type]
            except SchemaMismatchError:
                return False
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlatRelation):
            return NotImplemented
        if set(self._schema) != set(other._schema):
            return False
        # Compare as sets of attribute→value mappings, so attribute order
        # is irrelevant (relations are functions of attribute names).
        mine = {frozenset(zip(self._schema, row)) for row in self._rows}
        theirs = {frozenset(zip(other._schema, row)) for row in other._rows}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(
            (
                frozenset(self._schema),
                frozenset(
                    frozenset(zip(self._schema, row)) for row in self._rows
                ),
            )
        )

    def __repr__(self) -> str:
        return "FlatRelation(schema=%r, rows=%d)" % (self._schema, len(self._rows))

    # -- algebra ----------------------------------------------------------------

    def column(self, attribute: str) -> Tuple[AtomPayload, ...]:
        """Every row's value of ``attribute`` (duplicates preserved).

        The single-pass accessor the statistics collector
        (:mod:`repro.stats.collect`) scans; one value per row, in the
        same deterministic order as :meth:`__iter__`.
        """
        if attribute not in self._schema:
            raise SchemaMismatchError(
                "no column %r in schema %r" % (attribute, self._schema)
            )
        position = self._schema.index(attribute)
        return tuple(
            row[position] for row in sorted(self._rows, key=repr)
        )

    def select(self, predicate: Callable[[Dict[str, AtomPayload]], bool]) -> "FlatRelation":
        """Rows satisfying ``predicate`` (given attribute→value dicts)."""
        kept = [row for row in self._rows if predicate(dict(zip(self._schema, row)))]
        return FlatRelation(self._schema, kept)

    def project(self, attributes: Iterable[str]) -> "FlatRelation":
        """Project onto ``attributes`` (must all be in the schema)."""
        wanted = tuple(attributes)
        missing = [a for a in wanted if a not in self._schema]
        if missing:
            raise SchemaMismatchError(
                "cannot project onto %r: not in schema %r" % (missing, self._schema)
            )
        indexes = [self._schema.index(a) for a in wanted]
        rows = {tuple(row[i] for i in indexes) for row in self._rows}
        return FlatRelation(wanted, rows)

    def rename(self, renaming: Mapping[str, str]) -> "FlatRelation":
        """Rename attributes; unmentioned attributes keep their names."""
        new_schema = tuple(renaming.get(a, a) for a in self._schema)
        return FlatRelation(new_schema, self._rows)

    def union(self, other: "FlatRelation") -> "FlatRelation":
        """Set union; schemas must contain the same attributes."""
        self._require_same_schema(other, "union")
        other_rows = {self._reorder(other, row) for row in other._rows}
        return FlatRelation(self._schema, set(self._rows) | other_rows)

    def difference(self, other: "FlatRelation") -> "FlatRelation":
        """Set difference; schemas must contain the same attributes."""
        self._require_same_schema(other, "difference")
        other_rows = {self._reorder(other, row) for row in other._rows}
        return FlatRelation(self._schema, set(self._rows) - other_rows)

    def intersect(self, other: "FlatRelation") -> "FlatRelation":
        """Set intersection; schemas must contain the same attributes."""
        self._require_same_schema(other, "intersection")
        other_rows = {self._reorder(other, row) for row in other._rows}
        return FlatRelation(self._schema, set(self._rows) & other_rows)

    def natural_join(self, other: "FlatRelation") -> "FlatRelation":
        """The classical natural join: agree on shared attributes.

        Uses a hash join on the common attributes.  With no common
        attribute this degenerates to the Cartesian product, as usual.

        Pair work is observable like the generalized kernel's:
        ``flat.join.pairs_tried`` counts the bucket-matched pairs the
        join materialized, ``flat.join.pairs_pruned`` the rest of the
        |L|·|R| logical pairs the hash partitioning never touched —
        which is what EXPLAIN ANALYZE and the profiler attribute to
        individual Join nodes.
        """
        common = [a for a in self._schema if a in other._schema]
        result_schema = self._schema + tuple(
            a for a in other._schema if a not in common
        )
        by_key: Dict[Tuple[AtomPayload, ...], list] = {}
        other_common_idx = [other._schema.index(a) for a in common]
        other_rest_idx = [
            i for i, a in enumerate(other._schema) if a not in common
        ]
        for row in other._rows:
            key = tuple(row[i] for i in other_common_idx)
            by_key.setdefault(key, []).append(
                tuple(row[i] for i in other_rest_idx)
            )
        my_common_idx = [self._schema.index(a) for a in common]
        joined = set()
        tried = 0
        for row in self._rows:
            key = tuple(row[i] for i in my_common_idx)
            matches = by_key.get(key)
            if matches:
                tried += len(matches)
                for rest in matches:
                    joined.add(row + rest)
        registry = _metrics.REGISTRY
        registry.counter("flat.join.pairs_tried").inc(tried)
        registry.counter("flat.join.pairs_pruned").inc(
            len(self._rows) * len(other._rows) - tried
        )
        return FlatRelation(result_schema, joined)

    # -- bridges to the generalized world ------------------------------------------

    def to_generalized(self) -> GeneralizedRelation:
        """View this flat relation as a generalized relation of total records.

        Distinct total rows over one schema with atom values are pairwise
        incomparable, so the rows already form a cochain and no reduction
        pass is needed — this is what keeps the generalized-join flat
        fast path's conversions linear.
        """
        from repro.core.orders import Atom, PartialRecord
        from repro.core.relation import _from_cochain

        return _from_cochain(
            [
                PartialRecord(
                    {a: Atom(v) for a, v in zip(self._schema, row)}
                )
                for row in self._rows
            ]
        )

    @classmethod
    def from_generalized(
        cls, relation: GeneralizedRelation, schema: Iterable[str]
    ) -> "FlatRelation":
        """Flatten a generalized relation whose members are total over ``schema``.

        Raises :class:`SchemaMismatchError` when a member is partial or
        nested — flat relations cannot represent those, which is the
        paper's point (c): "Relations are flat."
        """
        from repro.core.orders import Atom, PartialRecord

        schema = tuple(schema)
        rows = []
        for member in relation:
            if not isinstance(member, PartialRecord):
                raise SchemaMismatchError("member %r is not a record" % (member,))
            if set(member.labels) != set(schema):
                raise SchemaMismatchError(
                    "member %r is not total over schema %r" % (member, schema)
                )
            row = []
            for attribute in schema:
                value = member[attribute]
                if not isinstance(value, Atom):
                    raise SchemaMismatchError(
                        "member %r is nested at %r; flat relations are"
                        " first-normal-form" % (member, attribute)
                    )
                row.append(value.payload)
            rows.append(tuple(row))
        return cls(schema, rows)

    # -- helpers -----------------------------------------------------------------

    def _require_same_schema(self, other: "FlatRelation", op: str) -> None:
        if set(self._schema) != set(other._schema):
            raise SchemaMismatchError(
                "%s requires equal schemas; got %r and %r"
                % (op, self._schema, other._schema)
            )

    def _reorder(self, other: "FlatRelation", row: Row) -> Row:
        """Reorder one of ``other``'s rows into this relation's schema order."""
        mapping = dict(zip(other._schema, row))
        return tuple(mapping[a] for a in self._schema)
