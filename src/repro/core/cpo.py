"""Generic partial-order utilities.

The paper appeals to standard order theory: objects form a partial order
under ``⊑``; relations are *cochains* (sets of mutually incomparable
elements, "antichains" in modern usage); consistent sets have least upper
bounds.  This module provides those notions generically over any elements
exposing a ``leq`` predicate, so they can be reused by the relation layer,
the type layer (types are ordered by subtyping), and the test suite's
law-checking helpers.

All functions take an explicit ``leq`` argument rather than relying on
rich comparisons, so they work for both the value order and the subtype
order without the two having to share a base class.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, TypeVar

T = TypeVar("T")
Leq = Callable[[T, T], bool]


def is_antichain(elements: Sequence[T], leq: Leq) -> bool:
    """Return ``True`` iff no two distinct elements are comparable.

    The paper calls such sets *cochains*; a generalized relation must be
    one.  Quadratic, intended for checks and tests.
    """
    for i, a in enumerate(elements):
        for b in elements[i + 1:]:
            if leq(a, b) or leq(b, a):
                return False
    return True


def is_chain(elements: Sequence[T], leq: Leq) -> bool:
    """Return ``True`` iff every two elements are comparable."""
    for i, a in enumerate(elements):
        for b in elements[i + 1:]:
            if not (leq(a, b) or leq(b, a)):
                return False
    return True


def maximal_elements(elements: Iterable[T], leq: Leq) -> List[T]:
    """The maximal elements: those strictly below no other element.

    Duplicates (elements ``x, y`` with ``x ⊑ y`` and ``y ⊑ x``) are kept
    once.  The result is an antichain and the largest one dominated by the
    input — exactly the reduction the relation layer applies after a
    generalized join.

    This is the generic all-pairs algorithm, quadratic in the input.  It
    doubles as the oracle the property suite checks the fast path
    against: relation hot paths use the signature-partitioned kernel
    (:func:`repro.core.kernel.reduce_to_maximal`), which produces the
    same set while only comparing subset-related, bucket-compatible
    members — and which delegates back here *within* each hash bucket.
    """
    kept: List[T] = []
    for candidate in elements:
        dominated = False
        survivors: List[T] = []
        for existing in kept:
            if leq(candidate, existing):
                dominated = True
                survivors = kept
                break
            if not leq(existing, candidate):
                survivors.append(existing)
        if not dominated:
            survivors.append(candidate)
            kept = survivors
    return kept


def minimal_elements(elements: Iterable[T], leq: Leq) -> List[T]:
    """The minimal elements: those strictly above no other element."""
    return maximal_elements(elements, lambda a, b: leq(b, a))


def upper_bounds(elements: Sequence[T], candidates: Iterable[T], leq: Leq) -> List[T]:
    """Those ``candidates`` that dominate every element of ``elements``."""
    return [c for c in candidates if all(leq(e, c) for e in elements)]


def lower_bounds(elements: Sequence[T], candidates: Iterable[T], leq: Leq) -> List[T]:
    """Those ``candidates`` dominated by every element of ``elements``."""
    return [c for c in candidates if all(leq(c, e) for e in elements)]


def least(elements: Sequence[T], leq: Leq) -> Optional[T]:
    """The least element of ``elements``, or ``None`` if there is none."""
    for candidate in elements:
        if all(leq(candidate, other) for other in elements):
            return candidate
    return None


def greatest(elements: Sequence[T], leq: Leq) -> Optional[T]:
    """The greatest element of ``elements``, or ``None`` if there is none."""
    return least(elements, lambda a, b: leq(b, a))


def is_least_upper_bound(
    bound: T, elements: Sequence[T], candidates: Iterable[T], leq: Leq
) -> bool:
    """Check that ``bound`` is the lub of ``elements`` among ``candidates``.

    Used by the property-based tests to verify that ``join`` really
    produces least upper bounds: ``bound`` must dominate every element and
    be dominated by every other upper bound drawn from ``candidates``.
    """
    if not all(leq(e, bound) for e in elements):
        return False
    for other in upper_bounds(elements, candidates, leq):
        if not leq(bound, other):
            return False
    return True


# ---------------------------------------------------------------------------
# Law checks (used by tests; kept here so laws are stated once)
# ---------------------------------------------------------------------------


def check_partial_order(elements: Sequence[T], leq: Leq) -> List[str]:
    """Return the list of partial-order law violations among ``elements``.

    Checks reflexivity, antisymmetry (up to ``==``), and transitivity on
    the given sample.  An empty list means no violation was observed.
    Cubic in the sample size; for tests only.
    """
    violations: List[str] = []
    for a in elements:
        if not leq(a, a):
            violations.append("not reflexive at %r" % (a,))
    for a in elements:
        for b in elements:
            if leq(a, b) and leq(b, a) and a != b:
                violations.append("antisymmetry fails on %r, %r" % (a, b))
    for a in elements:
        for b in elements:
            if not leq(a, b):
                continue
            for c in elements:
                if leq(b, c) and not leq(a, c):
                    violations.append(
                        "transitivity fails on %r ⊑ %r ⊑ %r" % (a, b, c)
                    )
    return violations


def check_join_laws(
    pairs: Sequence[Tuple[T, T]],
    try_join: Callable[[T, T], Optional[T]],
    leq: Leq,
) -> List[str]:
    """Return violations of the join laws on the given sample pairs.

    For every pair with a join: the join dominates both arguments and is
    commutative; joining an element with itself is the identity.
    """
    violations: List[str] = []
    for a, b in pairs:
        ab = try_join(a, b)
        ba = try_join(b, a)
        if (ab is None) != (ba is None):
            violations.append("consistency not symmetric on %r, %r" % (a, b))
            continue
        if ab is None:
            continue
        if ab != ba:
            violations.append("join not commutative on %r, %r" % (a, b))
        if not (leq(a, ab) and leq(b, ab)):
            violations.append("join not an upper bound on %r, %r" % (a, b))
    for a, __ in pairs:
        aa = try_join(a, a)
        if aa != a:
            violations.append("join not idempotent on %r" % (a,))
    return violations
