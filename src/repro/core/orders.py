"""The information ordering on partial values.

The paper ("Inheritance on Values") treats database objects as *partial
records* ordered by information content::

    o1 = {Name = 'J Doe', Address = {City = 'Austin'}}
    o2 = {Name = 'J Doe', Address = {City = 'Austin'}, Emp_no = 1234}
    o3 = {Name = 'J Doe', Address = {City = 'Austin', Zip = 78759}}

``o1 ⊑ o2`` and ``o1 ⊑ o3``: a better-defined record either adds new
fields or better-defines an existing field.  Two consistent records have a
least upper bound, the *join* ``⊔`` which merges their information; records
that disagree on a common field (``{Name='J Doe'}`` vs ``{Name='K Smith'}``)
have no join.

Following [AitK84] and [Bune86], the domain has two kinds of values:

* :class:`Atom` — a maximal, fully-defined scalar.  Atoms form a flat
  order: ``Atom(a) ⊑ Atom(b)`` iff ``a == b``.
* :class:`PartialRecord` — a partial function from field labels to values.
  ``r ⊑ s`` iff every field of ``r`` is present in ``s`` with a
  ``⊑``-greater value.  The empty record ``{}`` is the least record.

Atoms and records are never comparable with each other, so the domain is a
disjoint union of a flat part and a record part; within the record part
every consistent pair has a least upper bound (the domain of records is a
bounded-complete partial order).

All values are immutable and hashable, so they can live in sets and serve
as dictionary keys — which the relation layer relies on.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Mapping, Optional, Tuple, Union

from repro.errors import InconsistentJoinError, NoMeetError, NotAValueError

AtomPayload = Union[int, float, str, bool]

_ATOM_TYPES = (int, float, str, bool)


class Value:
    """Abstract base class of all domain values.

    Rich comparisons implement the information ordering: ``a <= b`` means
    "``b`` is at least as informative as ``a``".  Incomparable values
    compare ``False`` in both directions, as is usual for partial orders.
    """

    __slots__ = ()

    def leq(self, other: "Value") -> bool:
        """Return ``True`` iff ``self ⊑ other``."""
        raise NotImplementedError

    def join(self, other: "Value") -> "Value":
        """Return the least upper bound ``self ⊔ other``.

        Raises :class:`InconsistentJoinError` when no upper bound exists.
        """
        return _join(self, other, ())

    def try_join(self, other: "Value") -> Optional["Value"]:
        """Return ``self ⊔ other``, or ``None`` when inconsistent."""
        try:
            return _join(self, other, ())
        except InconsistentJoinError:
            return None

    def meet(self, other: "Value") -> "Value":
        """Return the greatest lower bound ``self ⊓ other``.

        Raises :class:`NoMeetError` when the two values have no common
        lower bound (an atom against a record, or two distinct atoms —
        the flat atom order has no bottom element).
        """
        result = _meet(self, other)
        if result is None:
            raise NoMeetError("no common lower bound of %r and %r" % (self, other))
        return result

    def consistent(self, other: "Value") -> bool:
        """Return ``True`` iff ``self`` and ``other`` have an upper bound."""
        return self.try_join(other) is not None

    # Rich comparisons spell the information order.
    def __le__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return self.leq(other)

    def __ge__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return other.leq(self)

    def __lt__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return self.leq(other) and self != other

    def __gt__(self, other: object) -> bool:
        if not isinstance(other, Value):
            return NotImplemented
        return other.leq(self) and self != other


class Atom(Value):
    """A fully-defined scalar value (int, float, str, or bool).

    Atoms are maximal: the only atom below ``Atom(x)`` is itself.  Distinct
    atoms are inconsistent — there is no value "better than" both
    ``'J Doe'`` and ``'K Smith'``.
    """

    __slots__ = ("_payload",)

    def __init__(self, payload: AtomPayload):
        if not isinstance(payload, _ATOM_TYPES):
            raise NotAValueError(
                "atom payload must be int, float, str or bool, not %r"
                % type(payload).__name__
            )
        self._payload = payload

    @property
    def payload(self) -> AtomPayload:
        """The wrapped Python scalar."""
        return self._payload

    def leq(self, other: Value) -> bool:
        """Flat order: only an equal atom is above an atom."""
        return isinstance(other, Atom) and _atoms_equal(self._payload, other._payload)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Atom) and _atoms_equal(self._payload, other._payload)

    def __hash__(self) -> int:
        # bool hashes like int in Python; fold in a bool flag so that
        # Atom(True) and Atom(1) — which we treat as distinct — differ.
        # Only the flag, not the type name: Atom(1) == Atom(1.0) (numeric
        # comparison, matching the Float ≥ Int coercion), so their hashes
        # must coincide too — hash(1) == hash(1.0) makes this free, and
        # the relation kernel's hash buckets rely on it.
        return hash((Atom, isinstance(self._payload, bool), self._payload))

    def __repr__(self) -> str:
        return "Atom(%r)" % (self._payload,)


def _atoms_equal(a: AtomPayload, b: AtomPayload) -> bool:
    """Payload equality that keeps bool and int apart.

    Python's ``True == 1`` would otherwise make ``Atom(True)`` and
    ``Atom(1)`` one value; the type system downstream keeps Bool and Int
    distinct, so the value domain must as well.  Int and float payloads
    are compared numerically, matching the Float ≥ Int coercion the type
    layer performs.
    """
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool) and a == b
    if isinstance(a, str) or isinstance(b, str):
        return isinstance(a, str) and isinstance(b, str) and a == b
    return a == b


class PartialRecord(Value):
    """An immutable partial function from field labels to values.

    The fields mapping is copied and frozen at construction.  Iteration
    order is the sorted label order so that ``repr`` is deterministic.

    Construction precomputes the structural facts the relation kernel
    (:mod:`repro.core.kernel`) consults on every comparison: a frozen
    label set (the record's *signature*), a by-label dict for O(1) field
    lookup, the hash, and whether the record is *ground* (every field an
    atom).  ``repr`` — the relation layer's deterministic sort key — is
    computed once and cached.
    """

    __slots__ = ("_fields", "_by_label", "_label_set", "_ground", "_hash", "_repr")

    def __init__(self, fields: Mapping[str, Value] = ()):
        items = dict(fields)
        for label, value in items.items():
            if not isinstance(label, str):
                raise NotAValueError("field label must be str, not %r" % (label,))
            if not isinstance(value, Value):
                raise NotAValueError(
                    "field %r must map to a Value, not %r" % (label, value)
                )
        self._fields: Tuple[Tuple[str, Value], ...] = tuple(
            sorted(items.items(), key=lambda kv: kv[0])
        )
        self._by_label: dict = dict(self._fields)
        self._label_set: FrozenSet[str] = frozenset(self._by_label)
        self._ground: bool = all(
            isinstance(value, Atom) for value in self._by_label.values()
        )
        self._hash = hash((PartialRecord, self._fields))
        self._repr: Optional[str] = None

    # -- mapping-like access ------------------------------------------------

    @property
    def labels(self) -> Tuple[str, ...]:
        """The defined field labels, in sorted order."""
        return tuple(label for label, __ in self._fields)

    @property
    def label_set(self) -> FrozenSet[str]:
        """The defined field labels as a frozen set (the *signature*).

        ``r ⊑ s`` can only hold when ``r.label_set <= s.label_set``, which
        is what lets the relation kernel partition cochains by signature
        and skip comparisons across unrelated signatures entirely.
        """
        return self._label_set

    @property
    def is_ground(self) -> bool:
        """``True`` when every field value is an :class:`Atom`.

        Two distinct ground records with the same signature are always
        incomparable (atoms form a flat order), so cochain reduction on
        ground same-signature groups is pure deduplication.
        """
        return self._ground

    def __iter__(self) -> Iterator[str]:
        return (label for label, __ in self._fields)

    def __len__(self) -> int:
        return len(self._fields)

    def __contains__(self, label: object) -> bool:
        return label in self._by_label

    def __getitem__(self, label: str) -> Value:
        return self._by_label[label]

    def get(self, label: str, default: Optional[Value] = None) -> Optional[Value]:
        """Return the value at ``label``, or ``default`` when undefined."""
        return self._by_label.get(label, default)

    def items(self) -> Tuple[Tuple[str, Value], ...]:
        """The (label, value) pairs in sorted label order."""
        return self._fields

    # -- derived records ----------------------------------------------------

    def with_field(self, label: str, value: Value) -> "PartialRecord":
        """A copy of this record with ``label`` (re)defined to ``value``."""
        fields = dict(self._fields)
        fields[label] = value
        return PartialRecord(fields)

    def without_field(self, label: str) -> "PartialRecord":
        """A copy of this record with ``label`` undefined."""
        fields = {name: value for name, value in self._fields if name != label}
        return PartialRecord(fields)

    def restrict(self, labels) -> "PartialRecord":
        """The restriction of this partial function to ``labels``.

        Labels on which the record is undefined are silently dropped —
        restriction of a partial function can only lose information.
        """
        wanted = set(labels)
        return PartialRecord(
            {name: value for name, value in self._fields if name in wanted}
        )

    # -- the information order ----------------------------------------------

    def leq(self, other: Value) -> bool:
        """Every field present here must be present and ⊒ in ``other``."""
        if not isinstance(other, PartialRecord):
            return False
        if not self._label_set <= other._label_set:
            return False
        other_by_label = other._by_label
        for label, value in self._fields:
            if not value.leq(other_by_label[label]):
                return False
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PartialRecord) and self._fields == other._fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        if self._repr is None:
            inner = ", ".join(
                "%s=%r" % (label, value) for label, value in self._fields
            )
            self._repr = "{%s}" % inner
        return self._repr


EMPTY_RECORD = PartialRecord()
"""The least record ``{}`` — the bottom of the record part of the domain."""


# ---------------------------------------------------------------------------
# Join and meet
# ---------------------------------------------------------------------------


def _join(a: Value, b: Value, path: Tuple[str, ...]) -> Value:
    """Least upper bound with a field path threaded through for errors."""
    if isinstance(a, Atom) and isinstance(b, Atom):
        if _atoms_equal(a.payload, b.payload):
            return a
        raise InconsistentJoinError(a, b, path)
    if isinstance(a, PartialRecord) and isinstance(b, PartialRecord):
        fields = dict(a.items())
        for label, b_value in b.items():
            a_value = fields.get(label)
            if a_value is None:
                fields[label] = b_value
            else:
                fields[label] = _join(a_value, b_value, path + (label,))
        return PartialRecord(fields)
    raise InconsistentJoinError(a, b, path)


def _meet(a: Value, b: Value) -> Optional[Value]:
    """Greatest lower bound, or ``None`` when no lower bound exists.

    Within records a meet always exists (drop disagreeing fields, recurse
    on agreeing ones); across the atom/record divide, or between distinct
    atoms, nothing lies below both.
    """
    if isinstance(a, Atom) and isinstance(b, Atom):
        return a if _atoms_equal(a.payload, b.payload) else None
    if isinstance(a, PartialRecord) and isinstance(b, PartialRecord):
        fields = {}
        for label, a_value in a.items():
            b_value = b.get(label)
            if b_value is None:
                continue
            lower = _meet(a_value, b_value)
            if lower is not None:
                fields[label] = lower
        return PartialRecord(fields)
    return None


# ---------------------------------------------------------------------------
# Module-level functional API
# ---------------------------------------------------------------------------


def leq(a: Value, b: Value) -> bool:
    """Return ``True`` iff ``a ⊑ b`` (``b`` is at least as informative)."""
    return a.leq(b)


def lt(a: Value, b: Value) -> bool:
    """Return ``True`` iff ``a ⊑ b`` and ``a != b``."""
    return a.leq(b) and a != b


def join(a: Value, b: Value) -> Value:
    """Return ``a ⊔ b`` or raise :class:`InconsistentJoinError`."""
    return _join(a, b, ())


def try_join(a: Value, b: Value) -> Optional[Value]:
    """Return ``a ⊔ b``, or ``None`` when the two are inconsistent."""
    return a.try_join(b)


def meet(a: Value, b: Value) -> Value:
    """Return ``a ⊓ b`` or raise :class:`NoMeetError`."""
    return a.meet(b)


def consistent(a: Value, b: Value) -> bool:
    """Return ``True`` iff ``a`` and ``b`` have a common upper bound."""
    return a.consistent(b)


# ---------------------------------------------------------------------------
# Conversion to and from plain Python data
# ---------------------------------------------------------------------------


def atom(payload: AtomPayload) -> Atom:
    """Wrap a Python scalar as an :class:`Atom`."""
    return Atom(payload)


def record(**fields) -> PartialRecord:
    """Build a :class:`PartialRecord` from keyword arguments.

    Values may be plain Python scalars, dicts, or already-built
    :class:`Value` instances::

        >>> record(Name='J Doe', Address={'City': 'Austin'})
        {Address={City=Atom('Austin')}, Name=Atom('J Doe')}
    """
    return PartialRecord({label: from_python(value) for label, value in fields.items()})


def from_python(data: object) -> Value:
    """Convert nested Python scalars/dicts into a domain :class:`Value`.

    ``Value`` instances pass through unchanged; scalars become atoms;
    mappings become partial records (recursively).  Anything else raises
    :class:`NotAValueError`.
    """
    if isinstance(data, Value):
        return data
    if isinstance(data, _ATOM_TYPES):
        return Atom(data)
    if isinstance(data, Mapping):
        return PartialRecord({label: from_python(value) for label, value in data.items()})
    raise NotAValueError("cannot convert %r to a domain value" % (data,))


def to_python(value: Value) -> object:
    """Convert a domain value back to nested Python scalars and dicts."""
    if isinstance(value, Atom):
        return value.payload
    if isinstance(value, PartialRecord):
        return {label: to_python(field) for label, field in value.items()}
    raise NotAValueError("cannot convert %r to Python data" % (value,))
